#pragma once

/**
 * @file
 * The sanitizer harness.
 *
 * The sanitizers themselves are implemented where real ones live: the
 * compile-time half as instrumentation inserted during lowering
 * (UBSan checks, ASan redzone layout) and the run-time half inside
 * the VM (shadow memory, quarantine, poison propagation), both gated
 * by CompilerConfig::sanitizer. This module provides the evaluation-
 * facing API used by the Juliet harness and the fuzzer comparison:
 * build the three sanitizer binaries of a program and ask whether a
 * given input makes any of them report.
 *
 * Fidelity notes (deliberate blind spots, matching the real tools as
 * characterized in the paper):
 *  - MSan reports only *meaningful use* of uninitialized values
 *    (branches, dereferenced addresses, division); printing an
 *    uninitialized value is not reported (paper, Listing 4).
 *  - None of the three checks cross-object pointer relations
 *    (CWE-469), evaluation-order conflicts, or memcpy overlap.
 *  - ASan redzones are finite: sufficiently far OOB accesses can
 *    land in another valid object.
 */

#include <memory>
#include <string>
#include <vector>

#include "compiler/compiler.hh"
#include "compiler/config.hh"
#include "refinterp/refinterp.hh"
#include "support/bytes.hh"
#include "vm/vm.hh"

namespace compdiff::sanitizers
{

/** The sanitizer-enabled configuration used for evaluation builds
 *  (clang -O1 -fsanitize=..., the common fuzzing setup). */
compiler::CompilerConfig sanitizerConfig(compiler::Sanitizer which);

/**
 * Maps one sanitizer report onto the certifying interpreter's UB
 * taxonomy (refinterp::UbKind) by its kind string. Returns false for
 * report kinds outside that taxonomy — the allocator-state reports
 * ("double-free", "invalid-free") describe heap-API misuse, not a UB
 * class the reference interpreter certifies.
 */
bool reportUbKind(const vm::SanReport &report, refinterp::UbKind *kind);

/** Outcome of running one sanitizer binary on one input. */
struct SanitizerVerdict
{
    /** True when the sanitizer produced at least one report. */
    bool fired = false;
    vm::ExecutionResult result;

    /** Kind string of the first report ("" when silent). */
    const std::string &firstReportKind() const;

    /**
     * UB class of the first report. False when the sanitizer was
     * silent or the first report has no UbKind mapping (see
     * reportUbKind); *kind is untouched in that case.
     */
    bool firstUbKind(refinterp::UbKind *kind) const;
};

/**
 * Compiles and holds the ASan/UBSan/MSan binaries of one program.
 */
class SanitizerRunner
{
  public:
    /**
     * @param program Analyzed program; must outlive the runner.
     * @param limits  Per-execution limits for the sanitized runs.
     */
    explicit SanitizerRunner(const minic::Program &program,
                             vm::VmLimits limits = {});

    /** Run one sanitizer binary on an input. */
    SanitizerVerdict check(compiler::Sanitizer which,
                           const support::Bytes &input) const;

    /** True when any of the three sanitizers reports on the input. */
    bool anyFires(const support::Bytes &input) const;

    /** All reports from all three sanitizers on the input. */
    std::vector<vm::SanReport>
    allReports(const support::Bytes &input) const;

  private:
    struct Binary
    {
        compiler::CompilerConfig config;
        bytecode::Module module;
    };

    const Binary &binaryFor(compiler::Sanitizer which) const;

    vm::VmLimits limits_;
    std::vector<Binary> binaries_;
};

} // namespace compdiff::sanitizers
