#include "sanitizers/sanitizers.hh"

#include "support/logging.hh"

namespace compdiff::sanitizers
{

using compiler::CompilerConfig;
using compiler::OptLevel;
using compiler::Sanitizer;
using compiler::Vendor;

CompilerConfig
sanitizerConfig(Sanitizer which)
{
    return {Vendor::Clang, OptLevel::O1, which};
}

bool
reportUbKind(const vm::SanReport &report, refinterp::UbKind *kind)
{
    using refinterp::UbKind;

    // UBSan and MSan name the violated rule directly.
    if (report.kind == "signed-integer-overflow") {
        *kind = UbKind::SignedOverflow;
        return true;
    }
    if (report.kind == "division-by-zero") {
        *kind = UbKind::DivideByZero;
        return true;
    }
    if (report.kind == "shift-out-of-bounds") {
        *kind = UbKind::OversizedShift;
        return true;
    }
    if (report.kind == "null-pointer-dereference") {
        *kind = UbKind::NullDeref;
        return true;
    }
    if (report.kind == "use-of-uninitialized-value") {
        *kind = UbKind::UninitRead;
        return true;
    }

    // Allocator-state reports are heap-API misuse, not a certified
    // UB access class.
    if (report.kind == "double-free" || report.kind == "invalid-free")
        return false;

    // Every remaining ASan kind ("heap-buffer-overflow",
    // "heap-use-after-free", "stack-buffer-overflow", ...) names an
    // access outside a live object.
    if (report.tool == vm::SanReport::Tool::ASan) {
        *kind = UbKind::OutOfBounds;
        return true;
    }
    return false;
}

const std::string &
SanitizerVerdict::firstReportKind() const
{
    static const std::string empty;
    return result.sanReports.empty() ? empty
                                     : result.sanReports.front().kind;
}

bool
SanitizerVerdict::firstUbKind(refinterp::UbKind *kind) const
{
    if (result.sanReports.empty())
        return false;
    return reportUbKind(result.sanReports.front(), kind);
}

SanitizerRunner::SanitizerRunner(const minic::Program &program,
                                 vm::VmLimits limits)
    : limits_(limits)
{
    compiler::Compiler comp(program);
    for (Sanitizer which :
         {Sanitizer::ASan, Sanitizer::UBSan, Sanitizer::MSan}) {
        const CompilerConfig config = sanitizerConfig(which);
        binaries_.push_back({config, comp.compile(config)});
    }
}

const SanitizerRunner::Binary &
SanitizerRunner::binaryFor(Sanitizer which) const
{
    for (const auto &binary : binaries_)
        if (binary.config.sanitizer == which)
            return binary;
    support::panic("unknown sanitizer requested");
}

SanitizerVerdict
SanitizerRunner::check(Sanitizer which,
                       const support::Bytes &input) const
{
    const Binary &binary = binaryFor(which);
    vm::Vm machine(binary.module, binary.config, limits_);
    SanitizerVerdict verdict;
    verdict.result = machine.run(input);
    verdict.fired = verdict.result.sanitizerFired();
    return verdict;
}

bool
SanitizerRunner::anyFires(const support::Bytes &input) const
{
    for (Sanitizer which :
         {Sanitizer::ASan, Sanitizer::UBSan, Sanitizer::MSan}) {
        if (check(which, input).fired)
            return true;
    }
    return false;
}

std::vector<vm::SanReport>
SanitizerRunner::allReports(const support::Bytes &input) const
{
    std::vector<vm::SanReport> reports;
    for (Sanitizer which :
         {Sanitizer::ASan, Sanitizer::UBSan, Sanitizer::MSan}) {
        auto verdict = check(which, input);
        reports.insert(reports.end(),
                       verdict.result.sanReports.begin(),
                       verdict.result.sanReports.end());
    }
    return reports;
}

} // namespace compdiff::sanitizers
