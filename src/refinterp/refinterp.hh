#pragma once

/**
 * @file
 * A direct AST tree-walking reference interpreter for MiniC.
 *
 * RefInterpreter is the oracle-diversity backend (DESIGN.md §7): it
 * executes the *original* sema-annotated AST with none of the
 * simulated-compiler machinery — no lowering, no bytecode, no
 * optimization passes, no Traits-derived codegen choices. Where the
 * C standard leaves an implementation a choice, the interpreter picks
 * one fixed, neutral answer (declaration-order layout, left-to-right
 * argument evaluation, zero-filled fresh memory, plain libm); where
 * the standard pins the behavior down, it computes exactly the value
 * the simulated pipeline produces — so a UB-free program runs
 * byte-identically under both backends, and any disagreement is
 * either undefined behavior in the program or a defect in one of the
 * backends (the shared-fate blind spot the paper's oracle cannot see
 * with a single execution engine).
 *
 * The interpreter reuses the VM's segmented AddressSpace/Heap model
 * (with its own segment bases, distinct from every simulated
 * configuration) and reports results in the same vm::ExecutionResult
 * currency, so the differential engine can compare observations
 * across backends without translation.
 */

#include <cstdint>
#include <memory>

#include "compiler/config.hh"
#include "minic/ast.hh"
#include "support/bytes.hh"
#include "vm/result.hh"
#include "vm/vm.hh"

namespace compdiff::refinterp
{

/**
 * The fixed, neutral traits the interpreter runs under: declaration
 * order, no padding, zero fills, forward memcpy, plain pow(), glibc-
 * style free() checks, and segment bases distinct from every
 * simulated configuration (so cross-backend address leaks diverge).
 * Only the runtime half (memory layout, heap policy) is consulted;
 * there is no codegen to configure.
 */
const compiler::Traits &refTraits();

/**
 * Executes a MiniC program by walking its AST.
 *
 * Mirrors vm::Vm's reuse contract: construction precomputes the
 * layouts (globals, rodata, per-function frames) once; run() is const
 * and keeps all per-run state on its own stack, so one interpreter
 * serves many inputs (the forkserver analog). setMaxInstructions()
 * is an unsynchronized write, exactly like Vm's — callers serialize
 * budget changes against runs.
 */
class RefInterpreter
{
  public:
    /**
     * @param program Analyzed program (must outlive the interpreter).
     * @param limits  Per-execution resource limits; maxInstructions
     *                counts evaluation steps (the timeout analog).
     */
    explicit RefInterpreter(const minic::Program &program,
                            vm::VmLimits limits = {});
    ~RefInterpreter();

    /**
     * Run `main` on one input.
     *
     * @param input The fuzz input visible through input_* builtins.
     * @param nonce Per-execution value returned by time_stamp().
     */
    vm::ExecutionResult run(const support::Bytes &input,
                            std::uint64_t nonce = 0) const;

    /** Raise the step budget (RQ6 timeout re-examination). */
    void setMaxInstructions(std::uint64_t budget)
    {
        limits_.maxInstructions = budget;
    }

    const vm::VmLimits &limits() const { return limits_; }

    struct Layout; ///< Opaque precomputed layout (see refinterp.cc).

  private:
    const minic::Program &program_;
    vm::VmLimits limits_;
    std::unique_ptr<const Layout> layout_;
};

} // namespace compdiff::refinterp
