#pragma once

/**
 * @file
 * A direct AST tree-walking reference interpreter for MiniC.
 *
 * RefInterpreter is the oracle-diversity backend (DESIGN.md §7): it
 * executes the *original* sema-annotated AST with none of the
 * simulated-compiler machinery — no lowering, no bytecode, no
 * optimization passes, no Traits-derived codegen choices. Where the
 * C standard leaves an implementation a choice, the interpreter picks
 * one fixed, neutral answer (declaration-order layout, left-to-right
 * argument evaluation, zero-filled fresh memory, plain libm); where
 * the standard pins the behavior down, it computes exactly the value
 * the simulated pipeline produces — so a UB-free program runs
 * byte-identically under both backends, and any disagreement is
 * either undefined behavior in the program or a defect in one of the
 * backends (the shared-fate blind spot the paper's oracle cannot see
 * with a single execution engine).
 *
 * The interpreter reuses the VM's segmented AddressSpace/Heap model
 * (with its own segment bases, distinct from every simulated
 * configuration) and reports results in the same vm::ExecutionResult
 * currency, so the differential engine can compare observations
 * across backends without translation.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compiler/config.hh"
#include "minic/ast.hh"
#include "support/bytes.hh"
#include "vm/result.hh"
#include "vm/vm.hh"

namespace compdiff::refinterp
{

/**
 * The UB classes the certifying interpreter detects — exactly the
 * classes the simulated pipeline exploits (DESIGN.md §14). The enum
 * order is the order kinds appear in signatures and reports; names
 * from ubKindName() are part of the on-disk signature format.
 */
enum class UbKind
{
    SignedOverflow, ///< signed +,-,*,/ overflow (incl. INT_MIN/-1, -INT_MIN)
    DivideByZero,   ///< integer division or remainder by zero
    OversizedShift, ///< shift count negative or >= bit width
    NullDeref,      ///< access through (near-)null pointer
    OutOfBounds,    ///< access outside every live object
    UninitRead,     ///< read of never-stored stack/heap bytes
};

/** Stable kind name ("signed-overflow", ...); signature currency. */
const char *ubKindName(UbKind kind);

/**
 * One certified UB occurrence: what happened, where, and with which
 * operand values. Certificates are evidence — the certifying run's
 * observable result is bit-identical to a plain run(); detection is
 * entirely out-of-band.
 */
struct UbCertificate
{
    UbKind kind = UbKind::SignedOverflow;
    /** Enclosing function at the UB site. */
    std::string function;
    /** Source line of the offending statement/expression. */
    std::uint32_t line = 0;
    /** Operand rendering ("2147483647 + 1", "addr 0x2800040 size 4"). */
    std::string detail;

    /** One-line rendering ("signed-overflow @ main:7: 2147483647 + 1"). */
    std::string str() const;
};

/** What RefInterpreter::certify() observed for one input. */
struct CertifiedRun
{
    /** Byte-identical to what run() returns for the same input. */
    vm::ExecutionResult result;
    /**
     * Certified UB occurrences in execution order (capped at
     * kMaxCertificates; classification only consults the first).
     * Empty together with a clean exit certifies UB-freedom.
     */
    std::vector<UbCertificate> certificates;

    static constexpr std::size_t kMaxCertificates = 32;
};

/**
 * The fixed, neutral traits the interpreter runs under: declaration
 * order, no padding, zero fills, forward memcpy, plain pow(), glibc-
 * style free() checks, and segment bases distinct from every
 * simulated configuration (so cross-backend address leaks diverge).
 * Only the runtime half (memory layout, heap policy) is consulted;
 * there is no codegen to configure.
 */
const compiler::Traits &refTraits();

/**
 * Executes a MiniC program by walking its AST.
 *
 * Mirrors vm::Vm's reuse contract: construction precomputes the
 * layouts (globals, rodata, per-function frames) once; run() is const
 * and keeps all per-run state on its own stack, so one interpreter
 * serves many inputs (the forkserver analog). setMaxInstructions()
 * is an unsynchronized write, exactly like Vm's — callers serialize
 * budget changes against runs.
 */
class RefInterpreter
{
  public:
    /**
     * @param program Analyzed program (must outlive the interpreter).
     * @param limits  Per-execution resource limits; maxInstructions
     *                counts evaluation steps (the timeout analog).
     */
    explicit RefInterpreter(const minic::Program &program,
                            vm::VmLimits limits = {});
    ~RefInterpreter();

    /**
     * Run `main` on one input.
     *
     * @param input The fuzz input visible through input_* builtins.
     * @param nonce Per-execution value returned by time_stamp().
     */
    vm::ExecutionResult run(const support::Bytes &input,
                            std::uint64_t nonce = 0) const;

    /**
     * Run `main` in UB-certifying mode: the same execution as run()
     * — the returned result is bit-identical — plus object-granular
     * bounds tracking, byte-level initialization shadow, and operand
     * checks that certify each UB occurrence the simulated pipeline
     * could exploit. Deterministic: a pure function of (program,
     * input, nonce), independent of threads or wall clock.
     */
    CertifiedRun certify(const support::Bytes &input,
                         std::uint64_t nonce = 0) const;

    /** Raise the step budget (RQ6 timeout re-examination). */
    void setMaxInstructions(std::uint64_t budget)
    {
        limits_.maxInstructions = budget;
    }

    const vm::VmLimits &limits() const { return limits_; }

    struct Layout; ///< Opaque precomputed layout (see refinterp.cc).

  private:
    const minic::Program &program_;
    vm::VmLimits limits_;
    std::unique_ptr<const Layout> layout_;
};

} // namespace compdiff::refinterp
