#include "refinterp/refinterp.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstring>
#include <map>
#include <vector>

#include "support/logging.hh"
#include "support/strings.hh"
#include "vm/memory.hh"

namespace compdiff::refinterp
{

using namespace minic;
using support::Bytes;
using vm::Access;
using vm::ExecutionResult;
using vm::FreeOutcome;
using vm::Termination;
using vm::TrapKind;

namespace
{

std::uint64_t
alignUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) / align * align;
}

/** Value width in bytes used when storing a scalar type. */
std::uint64_t
scalarWidth(const Type *type)
{
    switch (type->kind()) {
      case TypeKind::Char: return 1;
      case TypeKind::Int:
      case TypeKind::UInt: return 4;
      default: return 8;
    }
}

bool
isSignedKind(const Type *type)
{
    switch (type->kind()) {
      case TypeKind::Char:
      case TypeKind::Int:
      case TypeKind::Long:
        return true;
      default:
        return false;
    }
}

double
asDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
asBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

std::int64_t
doubleToInt(double d)
{
    // x86 cvttsd2si behavior for out-of-range / NaN inputs — the
    // same rule the VM applies, because double->int conversion of a
    // representable value is defined and must agree across backends.
    if (!(d >= -9.2233720368547758e18 && d <= 9.2233720368547758e18))
        return INT64_MIN;
    return static_cast<std::int64_t>(d);
}

} // namespace

const compiler::Traits &
refTraits()
{
    static const compiler::Traits traits = [] {
        compiler::Traits t; // defaults are already neutral
        t.detectDoubleFreeTop = true;
        t.detectInvalidFree = true;
        // Own address-space corner, overlapping no simulated config.
        t.rodataBase = 0x00400000;
        t.globalsBase = 0x01400000;
        t.heapBase = 0x02800000;
        t.stackBase = 0x07fd0000;
        return t;
    }();
    return traits;
}

const char *
ubKindName(UbKind kind)
{
    switch (kind) {
      case UbKind::SignedOverflow: return "signed-overflow";
      case UbKind::DivideByZero: return "divide-by-zero";
      case UbKind::OversizedShift: return "oversized-shift";
      case UbKind::NullDeref: return "null-deref";
      case UbKind::OutOfBounds: return "out-of-bounds";
      case UbKind::UninitRead: return "uninit-read";
    }
    return "?";
}

std::string
UbCertificate::str() const
{
    return std::string(ubKindName(kind)) + " @ " + function + ":" +
           std::to_string(line) + ": " + detail;
}

/**
 * Precomputed, input-independent layout: the rodata image (interned
 * string literals), the globals segment, and per-function frame slot
 * offsets — all in declaration order with no padding.
 */
struct RefInterpreter::Layout
{
    std::vector<std::uint8_t> rodata;
    std::map<const StrLitExpr *, std::uint64_t> strOffset;

    std::vector<std::uint64_t> globalAddr; ///< globalId -> address
    std::vector<std::uint8_t> globalsImage;

    struct FrameLayout
    {
        std::vector<std::uint64_t> slotOffset; ///< by localId
        std::uint64_t frameSize = 16;
        std::vector<std::uint64_t> paramOffsets;
        std::vector<std::uint64_t> paramSizes;
    };
    std::vector<FrameLayout> frames; ///< by function index

    const FunctionDecl *mainFn = nullptr;

    std::uint64_t
    internString(const StrLitExpr &lit)
    {
        auto [it, inserted] =
            strOffset.emplace(&lit, rodata.size());
        if (inserted) {
            rodata.insert(rodata.end(), lit.bytes.begin(),
                          lit.bytes.end());
            rodata.push_back(0);
        }
        return it->second;
    }

    void
    internExpr(const Expr *expr)
    {
        if (!expr)
            return;
        switch (expr->kind()) {
          case ExprKind::IntLit:
          case ExprKind::FloatLit:
          case ExprKind::SizeOf:
            return;
          case ExprKind::StrLit:
            internString(static_cast<const StrLitExpr &>(*expr));
            return;
          case ExprKind::VarRef:
            return;
          case ExprKind::Unary:
            internExpr(
                static_cast<const UnaryExpr &>(*expr).operand.get());
            return;
          case ExprKind::Binary: {
            const auto &bin = static_cast<const BinaryExpr &>(*expr);
            internExpr(bin.lhs.get());
            internExpr(bin.rhs.get());
            return;
          }
          case ExprKind::Assign: {
            const auto &assign =
                static_cast<const AssignExpr &>(*expr);
            internExpr(assign.target.get());
            internExpr(assign.value.get());
            return;
          }
          case ExprKind::Cond: {
            const auto &cond = static_cast<const CondExpr &>(*expr);
            internExpr(cond.cond.get());
            internExpr(cond.thenExpr.get());
            internExpr(cond.elseExpr.get());
            return;
          }
          case ExprKind::Call: {
            const auto &call = static_cast<const CallExpr &>(*expr);
            for (const auto &arg : call.args)
                internExpr(arg.get());
            return;
          }
          case ExprKind::Index: {
            const auto &index = static_cast<const IndexExpr &>(*expr);
            internExpr(index.base.get());
            internExpr(index.index.get());
            return;
          }
          case ExprKind::Member:
            internExpr(
                static_cast<const MemberExpr &>(*expr).base.get());
            return;
          case ExprKind::Cast:
            internExpr(
                static_cast<const CastExpr &>(*expr).operand.get());
            return;
        }
    }

    void
    internStmt(const Stmt *stmt)
    {
        if (!stmt)
            return;
        switch (stmt->kind()) {
          case StmtKind::Block:
            for (const auto &s :
                 static_cast<const BlockStmt &>(*stmt).body)
                internStmt(s.get());
            return;
          case StmtKind::VarDecl:
            internExpr(
                static_cast<const VarDeclStmt &>(*stmt).init.get());
            return;
          case StmtKind::If: {
            const auto &if_stmt = static_cast<const IfStmt &>(*stmt);
            internExpr(if_stmt.cond.get());
            internStmt(if_stmt.thenStmt.get());
            internStmt(if_stmt.elseStmt.get());
            return;
          }
          case StmtKind::While: {
            const auto &w = static_cast<const WhileStmt &>(*stmt);
            internExpr(w.cond.get());
            internStmt(w.body.get());
            return;
          }
          case StmtKind::For: {
            const auto &f = static_cast<const ForStmt &>(*stmt);
            internStmt(f.init.get());
            internExpr(f.cond.get());
            internExpr(f.step.get());
            internStmt(f.body.get());
            return;
          }
          case StmtKind::Return:
            internExpr(
                static_cast<const ReturnStmt &>(*stmt).value.get());
            return;
          case StmtKind::Break:
          case StmtKind::Continue:
            return;
          case StmtKind::ExprStmt:
            internExpr(
                static_cast<const ExprStmt &>(*stmt).expr.get());
            return;
        }
    }
};

RefInterpreter::RefInterpreter(const Program &program,
                               vm::VmLimits limits)
    : program_(program), limits_(limits)
{
    auto layout = std::make_unique<Layout>();
    const compiler::Traits &traits = refTraits();

    // Globals: declaration order, no gaps, natural alignment.
    layout->globalAddr.resize(program.globals.size());
    std::uint64_t offset = 0;
    struct PendingInit
    {
        std::uint64_t at = 0;
        std::uint64_t word = 0;
        std::uint64_t size = 0;
    };
    std::vector<PendingInit> inits;
    for (const auto &decl : program.globals) {
        const std::uint64_t size =
            std::max<std::uint64_t>(decl->type->size(), 1);
        const std::uint64_t align =
            std::max<std::uint64_t>(decl->type->align(), 1);
        offset = alignUp(offset, align);
        layout->globalAddr[static_cast<std::size_t>(
            decl->globalId)] = traits.globalsBase + offset;
        if (decl->init) {
            PendingInit init;
            init.at = offset;
            switch (decl->init->kind()) {
              case ExprKind::IntLit:
                init.word = static_cast<std::uint64_t>(
                    static_cast<const IntLitExpr &>(*decl->init)
                        .value);
                init.size = scalarWidth(decl->type);
                inits.push_back(init);
                break;
              case ExprKind::FloatLit:
                init.word = asBits(
                    static_cast<const FloatLitExpr &>(*decl->init)
                        .value);
                init.size = 8;
                inits.push_back(init);
                break;
              case ExprKind::StrLit:
                init.word =
                    traits.rodataBase +
                    layout->internString(static_cast<const StrLitExpr &>(
                        *decl->init));
                init.size = 8;
                inits.push_back(init);
                break;
              default:
                break;
            }
        }
        offset += size;
    }
    layout->globalsImage.assign(
        std::max<std::uint64_t>(alignUp(offset, 16), 16), 0);
    for (const auto &init : inits) {
        std::memcpy(layout->globalsImage.data() + init.at,
                    &init.word, init.size);
    }

    // Frames: declaration order, no padding, 16-byte-aligned size.
    layout->frames.resize(program.functions.size());
    for (const auto &func : program.functions) {
        auto &frame =
            layout->frames[static_cast<std::size_t>(func->index)];
        frame.slotOffset.assign(func->locals.size(), 0);
        std::uint64_t at = 0;
        for (std::size_t id = 0; id < func->locals.size(); id++) {
            const Type *type = func->locals[id].type;
            at = alignUp(at,
                         std::max<std::uint64_t>(type->align(), 1));
            frame.slotOffset[id] = at;
            at += type->size();
        }
        frame.frameSize =
            std::max<std::uint64_t>(alignUp(at, 16), 16);
        for (const auto &param : func->params) {
            const auto id = static_cast<std::size_t>(param.localId);
            frame.paramOffsets.push_back(frame.slotOffset[id]);
            frame.paramSizes.push_back(
                scalarWidth(func->locals[id].type));
        }
        // String literals inside the body land in rodata up front.
        layout->internStmt(func->body.get());
        if (func->name == "main")
            layout->mainFn = func.get();
    }

    layout_ = std::move(layout);
}

RefInterpreter::~RefInterpreter() = default;

namespace
{

/**
 * Out-of-band UB detection state for one certifying run.
 *
 * The certifier shadows the evaluator's address space with the
 * object-granular view the C abstract machine has: which live object
 * (global declaration, active frame slot, live heap chunk, rodata
 * blob) an access belongs to, and which stack/heap bytes have ever
 * been stored. Every hook only *records* — nothing here feeds back
 * into evaluation, which is how certify() keeps its result
 * bit-identical to run().
 *
 * Precision notes (DESIGN.md §14): stores of any kind mark their
 * destination initialized, so memcpy cuts shadow propagation — a
 * deliberate under-approximation that can miss copied-uninit reads
 * but never certifies UB that is not there. The certificate list is
 * capped; classification only consults the first entry.
 */
class Certifier
{
  public:
    Certifier(const Program &program,
              const RefInterpreter::Layout &layout,
              const vm::VmLimits &limits)
    {
        const compiler::Traits &traits = refTraits();
        rodataLo_ = traits.rodataBase;
        rodataHi_ = traits.rodataBase + layout.rodata.size();
        globalsLo_ = traits.globalsBase;
        globalsHi_ = traits.globalsBase + layout.globalsImage.size();
        heapLo_ = traits.heapBase;
        heapHi_ = traits.heapBase + limits.heapSize;
        stackLo_ = traits.stackBase - limits.stackSize;
        stackHi_ = traits.stackBase;
        for (const auto &decl : program.globals) {
            const auto id = static_cast<std::size_t>(decl->globalId);
            globals_.push_back(
                {layout.globalAddr[id],
                 std::max<std::uint64_t>(decl->type->size(), 1)});
        }
        std::sort(globals_.begin(), globals_.end(),
                  [](const Region &a, const Region &b) {
                      return a.base < b.base;
                  });
        // Globals and rodata are initialized by definition (C zero-
        // fills statics); only stack and heap bytes carry a shadow.
        stackShadow_.assign(
            static_cast<std::size_t>(limits.stackSize), 0);
        heapShadow_.assign(
            static_cast<std::size_t>(limits.heapSize), 0);
    }

    std::vector<UbCertificate> &certificates()
    {
        return certs_;
    }

    // --- object lifetime -------------------------------------------
    void
    pushFrame(std::uint64_t fp, const FunctionDecl &func,
              const RefInterpreter::Layout::FrameLayout &frame)
    {
        frames_.push_back({fp, &func, &frame});
        markUninit(fp, frame.frameSize);
    }

    void
    popFrame()
    {
        if (!frames_.empty())
            frames_.pop_back();
    }

    void
    noteMalloc(std::uint64_t addr, std::uint64_t size)
    {
        heapChunks_[addr] = size;
        markUninit(addr, size);
    }

    void
    noteFree(std::uint64_t addr)
    {
        heapChunks_.erase(addr);
    }

    // --- memory hooks ----------------------------------------------
    /** Object-granular bounds check (NullDeref / OutOfBounds). */
    void
    checkAccess(std::uint64_t addr, std::uint64_t size,
                const std::string &func, std::uint32_t line)
    {
        if (full())
            return;
        if (addr + size < addr) {
            record(UbKind::OutOfBounds, func, line,
                   accessDetail(addr, size));
            return;
        }
        if (addr < 4096) {
            record(UbKind::NullDeref, func, line,
                   accessDetail(addr, size));
            return;
        }
        if (addr >= rodataLo_ && addr + size <= rodataHi_)
            return;
        if (addr >= globalsLo_ && addr < globalsHi_) {
            for (const Region &g : globals_) {
                if (addr >= g.base && addr + size <= g.base + g.size)
                    return;
            }
            record(UbKind::OutOfBounds, func, line,
                   accessDetail(addr, size));
            return;
        }
        if (addr >= heapLo_ && addr < heapHi_) {
            auto it = heapChunks_.upper_bound(addr);
            if (it != heapChunks_.begin()) {
                --it;
                if (addr + size <= it->first + it->second)
                    return;
            }
            record(UbKind::OutOfBounds, func, line,
                   accessDetail(addr, size));
            return;
        }
        if (addr >= stackLo_ && addr < stackHi_) {
            for (const ActiveFrame &f : frames_) {
                if (addr < f.fp ||
                    addr + size > f.fp + f.frame->frameSize)
                    continue;
                for (std::size_t id = 0;
                     id < f.func->locals.size(); id++) {
                    const std::uint64_t slot =
                        f.fp + f.frame->slotOffset[id];
                    const std::uint64_t slot_size =
                        std::max<std::uint64_t>(
                            f.func->locals[id].type->size(), 1);
                    if (addr >= slot &&
                        addr + size <= slot + slot_size)
                        return;
                }
            }
            record(UbKind::OutOfBounds, func, line,
                   accessDetail(addr, size));
            return;
        }
        record(UbKind::OutOfBounds, func, line,
               accessDetail(addr, size));
    }

    /** Meaningful read of possibly-never-stored bytes (UninitRead). */
    void
    checkInit(std::uint64_t addr, std::uint64_t size,
              const std::string &func, std::uint32_t line)
    {
        std::uint8_t *shadow = shadowFor(addr, size);
        if (!shadow)
            return;
        bool uninit = false;
        for (std::uint64_t i = 0; i < size; i++)
            uninit |= shadow[i] == 0;
        if (!uninit)
            return;
        record(UbKind::UninitRead, func, line,
               accessDetail(addr, size));
        // Certify each never-stored byte once, not once per read.
        markInit(addr, size);
    }

    /** Every store initializes its destination bytes. */
    void
    markInit(std::uint64_t addr, std::uint64_t size)
    {
        if (std::uint8_t *shadow = shadowFor(addr, size))
            std::memset(shadow, 1, static_cast<std::size_t>(size));
    }

    // --- operand hooks ---------------------------------------------
    /** Certify signed overflow / division UB for one integer op. */
    void
    checkIntOp(BinaryOp op, const Type *type, std::uint64_t a,
               std::uint64_t b, const std::string &func,
               std::uint32_t line)
    {
        if (full())
            return;
        const bool is_signed = isSignedKind(type);
        const bool narrow = type->is32OrNarrower();
        const auto sa = static_cast<std::int64_t>(a);
        const auto sb = static_cast<std::int64_t>(b);
        switch (op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul: {
            if (!is_signed)
                return;
            std::int64_t wide = 0;
            bool over = false;
            if (op == BinaryOp::Add)
                over = __builtin_add_overflow(sa, sb, &wide);
            else if (op == BinaryOp::Sub)
                over = __builtin_sub_overflow(sa, sb, &wide);
            else
                over = __builtin_mul_overflow(sa, sb, &wide);
            if (narrow)
                over = over || wide < INT32_MIN || wide > INT32_MAX;
            if (over)
                record(UbKind::SignedOverflow, func, line,
                       operandDetail(op, sa, sb));
            return;
          }
          case BinaryOp::Div:
          case BinaryOp::Rem: {
            if (is_signed ? sb == 0 : b == 0) {
                record(UbKind::DivideByZero, func, line,
                       operandDetail(op, sa, sb));
                return;
            }
            if (is_signed && sb == -1 &&
                sa == (narrow ? INT32_MIN : INT64_MIN)) {
                record(UbKind::SignedOverflow, func, line,
                       operandDetail(op, sa, sb));
            }
            return;
          }
          default:
            return;
        }
    }

    /** Certify an out-of-range shift count (OversizedShift). */
    void
    checkShift(std::uint64_t count, std::uint64_t width,
               const std::string &func, std::uint32_t line)
    {
        if (count < width || full())
            return;
        record(UbKind::OversizedShift, func, line,
               support::format("shift count %" PRId64
                               " on %" PRIu64 "-bit value",
                               static_cast<std::int64_t>(count),
                               width));
    }

    /** Certify negation overflow (-INT_MIN). */
    void
    checkNeg(std::uint64_t value, const Type *type,
             const std::string &func, std::uint32_t line)
    {
        if (!isSignedKind(type) || full())
            return;
        const auto sv = static_cast<std::int64_t>(value);
        if (sv == (type->is32OrNarrower() ? INT32_MIN : INT64_MIN))
            record(UbKind::SignedOverflow, func, line,
                   support::format("-(%" PRId64 ")", sv));
    }

  private:
    struct Region
    {
        std::uint64_t base = 0;
        std::uint64_t size = 0;
    };

    struct ActiveFrame
    {
        std::uint64_t fp = 0;
        const FunctionDecl *func = nullptr;
        const RefInterpreter::Layout::FrameLayout *frame = nullptr;
    };

    bool
    full() const
    {
        return certs_.size() >= CertifiedRun::kMaxCertificates;
    }

    void
    record(UbKind kind, const std::string &func, std::uint32_t line,
           std::string detail)
    {
        if (full())
            return;
        UbCertificate cert;
        cert.kind = kind;
        cert.function = func;
        cert.line = line;
        cert.detail = std::move(detail);
        certs_.push_back(std::move(cert));
    }

    /** Shadow bytes for [addr, addr+size), or nullptr when the range
     *  is not fully inside the stack or heap segment. */
    std::uint8_t *
    shadowFor(std::uint64_t addr, std::uint64_t size)
    {
        if (addr + size < addr)
            return nullptr;
        if (addr >= stackLo_ && addr + size <= stackHi_)
            return stackShadow_.data() + (addr - stackLo_);
        if (addr >= heapLo_ && addr + size <= heapHi_)
            return heapShadow_.data() + (addr - heapLo_);
        return nullptr;
    }

    void
    markUninit(std::uint64_t addr, std::uint64_t size)
    {
        if (std::uint8_t *shadow = shadowFor(addr, size))
            std::memset(shadow, 0, static_cast<std::size_t>(size));
    }

    static std::string
    accessDetail(std::uint64_t addr, std::uint64_t size)
    {
        return support::format("addr 0x%" PRIx64 " size %" PRIu64,
                               addr, size);
    }

    static std::string
    operandDetail(BinaryOp op, std::int64_t a, std::int64_t b)
    {
        const char *sym = "?";
        switch (op) {
          case BinaryOp::Add: sym = "+"; break;
          case BinaryOp::Sub: sym = "-"; break;
          case BinaryOp::Mul: sym = "*"; break;
          case BinaryOp::Div: sym = "/"; break;
          case BinaryOp::Rem: sym = "%"; break;
          default: break;
        }
        return support::format("%" PRId64 " %s %" PRId64, a, sym, b);
    }

    std::vector<UbCertificate> certs_;

    std::uint64_t rodataLo_ = 0, rodataHi_ = 0;
    std::uint64_t globalsLo_ = 0, globalsHi_ = 0;
    std::uint64_t heapLo_ = 0, heapHi_ = 0;
    std::uint64_t stackLo_ = 0, stackHi_ = 0;

    std::vector<Region> globals_;
    std::map<std::uint64_t, std::uint64_t> heapChunks_;
    std::vector<ActiveFrame> frames_;
    std::vector<std::uint8_t> stackShadow_;
    std::vector<std::uint8_t> heapShadow_;
};

/**
 * One run's evaluator. Everything lives on the run() stack; the
 * interpreter object itself stays read-only (thread-compatible the
 * same way vm::Vm::run is).
 */
class Interp
{
  public:
    Interp(const Program &program, const RefInterpreter::Layout &lo,
           const vm::VmLimits &limits, const Bytes &input,
           std::uint64_t nonce, Certifier *cert = nullptr)
        : program_(program), types_(*program.types), layout_(lo),
          limits_(limits), input_(input), nonce_(nonce), cert_(cert),
          space_(refTraits(), /*asan=*/false, /*msan=*/false,
                 limits.stackSize, limits.heapSize),
          heap_(space_, refTraits(), /*asan=*/false)
    {
        space_.setRodata(layout_.rodata);
        space_.setGlobalsSize(layout_.globalsImage.size());
        std::memcpy(space_.globals().data.data(),
                    layout_.globalsImage.data(),
                    layout_.globalsImage.size());
    }

    ExecutionResult
    run()
    {
        const compiler::Traits &traits = refTraits();
        if (!layout_.mainFn)
            support::fatal("program has no main()");
        const FunctionDecl &main_fn = *layout_.mainFn;
        const auto &frame = layout_.frames[
            static_cast<std::size_t>(main_fn.index)];

        const std::uint64_t stack_bottom =
            traits.stackBase - limits_.stackSize;
        const std::uint64_t sp = traits.stackBase;
        if (frame.frameSize > sp - stack_bottom) {
            finish(Termination::StackOverflow, 139, TrapKind::None);
            return std::move(res_);
        }
        fp_ = sp - frame.frameSize;
        curFunc_ = &main_fn;
        callDepth_ = 1;
        if (cert_)
            cert_->pushFrame(fp_, main_fn, frame);

        execStmt(*main_fn.body);
        if (running_) {
            std::uint64_t rv = 0;
            bool has_value = false;
            if (flow_ == Flow::Return) {
                rv = returnValue_;
                has_value = returnHasValue_;
            } else if (!main_fn.returnType->isVoid()) {
                // Falling off the end of a non-void function: the
                // fixed answer is the neutral undefined word (0).
                rv = refTraits().undefWord;
                has_value = true;
            }
            finish(Termination::Exit,
                   has_value ? static_cast<std::int32_t>(rv) : 0,
                   TrapKind::None);
        }
        return std::move(res_);
    }

  private:
    enum class Flow
    {
        Normal,
        Break,
        Continue,
        Return,
    };

    // --- termination / accounting ----------------------------------
    void
    finish(Termination term, int code, TrapKind trap)
    {
        res_.termination = term;
        res_.exitCode = code;
        res_.trap = trap;
        running_ = false;
    }

    /** One evaluation step; false once the budget is exhausted. */
    bool
    tick()
    {
        if (!running_)
            return false;
        if (res_.instructions++ >= limits_.maxInstructions) {
            finish(Termination::BudgetExhausted, 124, TrapKind::None);
            return false;
        }
        return true;
    }

    void
    emitOut(const std::string &text)
    {
        if (res_.output.size() < limits_.maxOutput)
            res_.output += text;
    }

    // --- memory ----------------------------------------------------
    bool
    loadRaw(std::uint64_t addr, std::uint64_t size,
            std::uint64_t &value)
    {
        if (cert_)
            cert_->checkAccess(addr, size, funcName(), curLine_);
        bool poisoned = false;
        if (space_.read(addr, size, value, poisoned) == Access::Ok)
            return true;
        finish(Termination::Trap, 139, TrapKind::Segv);
        return false;
    }

    bool
    storeRaw(std::uint64_t addr, std::uint64_t size,
             std::uint64_t value)
    {
        if (cert_) {
            cert_->checkAccess(addr, size, funcName(), curLine_);
            cert_->markInit(addr, size);
        }
        if (space_.write(addr, size, value, false) == Access::Ok)
            return true;
        finish(Termination::Trap, 139, TrapKind::Segv);
        return false;
    }

    std::uint64_t
    loadScalar(std::uint64_t addr, const Type *type)
    {
        switch (type->kind()) {
          case TypeKind::Char:
          case TypeKind::Int:
          case TypeKind::UInt:
          case TypeKind::Long:
          case TypeKind::ULong:
          case TypeKind::Pointer:
          case TypeKind::Double:
            break;
          default:
            support::panic("ref load of non-scalar type " +
                           type->str());
        }
        std::uint64_t raw = 0;
        const std::uint64_t width = scalarWidth(type);
        if (!loadRaw(addr, width, raw))
            return 0;
        if (cert_)
            cert_->checkInit(addr, width, funcName(), curLine_);
        switch (type->kind()) {
          case TypeKind::Char:
            return static_cast<std::uint64_t>(
                static_cast<std::int64_t>(
                    static_cast<std::int8_t>(raw)));
          case TypeKind::Int:
            return static_cast<std::uint64_t>(
                static_cast<std::int64_t>(
                    static_cast<std::int32_t>(raw)));
          default:
            return raw;
        }
    }

    void
    storeScalar(std::uint64_t addr, const Type *type,
                std::uint64_t value)
    {
        storeRaw(addr, scalarWidth(type), value);
    }

    // --- conversions (mirroring lowering's canonical rules) --------
    std::uint64_t
    narrowVal(std::uint64_t v, const Type *to) const
    {
        switch (to->kind()) {
          case TypeKind::Char:
            return static_cast<std::uint64_t>(
                static_cast<std::int64_t>(
                    static_cast<std::int8_t>(v)));
          case TypeKind::Int:
            return static_cast<std::uint64_t>(
                static_cast<std::int64_t>(
                    static_cast<std::int32_t>(v)));
          case TypeKind::UInt:
            return static_cast<std::uint32_t>(v);
          default:
            return v;
        }
    }

    std::uint64_t
    convertVal(std::uint64_t v, const Type *from,
               const Type *to) const
    {
        if (!from || !to || from == to)
            return v;
        if (to->isDouble()) {
            if (from->isDouble())
                return v;
            return isSignedKind(from)
                       ? asBits(static_cast<double>(
                             static_cast<std::int64_t>(v)))
                       : asBits(static_cast<double>(v));
        }
        if (from->isDouble())
            return narrowVal(static_cast<std::uint64_t>(
                                 doubleToInt(asDouble(v))),
                             to);
        if (from->isArray() || to->isArray() || from->isStruct() ||
            to->isStruct() || from->isVoid() || to->isVoid()) {
            return v; // decayed addresses / ignored
        }
        return narrowVal(v, to);
    }

    const Type *
    arithCommon(const Type *a, const Type *b) const
    {
        if (a->isDouble() || b->isDouble())
            return types_.doubleType();
        auto rank = [](const Type *t) {
            switch (t->kind()) {
              case TypeKind::ULong: return 4;
              case TypeKind::Long: return 3;
              case TypeKind::UInt: return 2;
              default: return 1;
            }
        };
        switch (std::max(rank(a), rank(b))) {
          case 4: return types_.ulongType();
          case 3: return types_.longType();
          case 2: return types_.uintType();
          default: return types_.intType();
        }
    }

    const Type *
    comparisonType(const Type *a, const Type *b) const
    {
        if (a->isPointer() || a->isArray() || b->isPointer() ||
            b->isArray()) {
            return nullptr; // raw unsigned 64-bit comparison
        }
        return arithCommon(a, b);
    }

    // --- integer ops with the VM's trap discipline -----------------
    std::uint64_t
    applyIntOp(BinaryOp op, const Type *type, std::uint64_t a,
               std::uint64_t b, bool widened)
    {
        if (cert_)
            cert_->checkIntOp(op, type, a, b, funcName(), curLine_);
        const bool is_signed = isSignedKind(type);
        std::uint64_t r = 0;
        switch (op) {
          case BinaryOp::Add: r = a + b; break;
          case BinaryOp::Sub: r = a - b; break;
          case BinaryOp::Mul: r = a * b; break;
          case BinaryOp::Div:
          case BinaryOp::Rem: {
            if (is_signed) {
                const auto sa = static_cast<std::int64_t>(a);
                const auto sb = static_cast<std::int64_t>(b);
                if (sb == 0 || (sa == INT64_MIN && sb == -1)) {
                    finish(Termination::Trap, 136, TrapKind::Fpe);
                    return 0;
                }
                r = static_cast<std::uint64_t>(
                    op == BinaryOp::Div ? sa / sb : sa % sb);
            } else {
                if (b == 0) {
                    finish(Termination::Trap, 136, TrapKind::Fpe);
                    return 0;
                }
                r = op == BinaryOp::Div ? a / b : a % b;
            }
            break;
          }
          case BinaryOp::BitAnd: r = a & b; break;
          case BinaryOp::BitOr: r = a | b; break;
          case BinaryOp::BitXor: r = a ^ b; break;
          default:
            support::panic("applyIntOp: unexpected operator");
        }
        return widened ? r : narrowVal(r, type);
    }

    std::uint64_t
    applyShift(BinaryOp op, const Type *type, std::uint64_t value,
               std::uint64_t count)
    {
        // MaskCount normalization: oversized counts wrap, exactly
        // like the MaskCount ShiftPolicy plus the VM's & 63.
        const std::uint64_t width = type->is32OrNarrower() ? 32 : 64;
        if (cert_)
            cert_->checkShift(count, width, funcName(), curLine_);
        if (count >= width)
            count &= width - 1;
        std::uint64_t r;
        if (op == BinaryOp::Shl) {
            r = value << (count & 63);
        } else if (isSignedKind(type)) {
            r = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(value) >> (count & 63));
        } else {
            r = value >> (count & 63);
        }
        return narrowVal(r, type);
    }

    // --- expressions -----------------------------------------------
    bool
    evalCondBool(const Expr &expr)
    {
        const std::uint64_t v = evalValue(expr);
        if (!running_)
            return false;
        if (expr.type && expr.type->isDouble())
            return asDouble(v) != 0.0;
        return v != 0;
    }

    std::uint64_t
    evalAddr(const Expr &expr)
    {
        if (!tick())
            return 0;
        if (cert_ && expr.loc().line)
            curLine_ = expr.loc().line;
        switch (expr.kind()) {
          case ExprKind::VarRef: {
            const auto &ref = static_cast<const VarRefExpr &>(expr);
            if (ref.isGlobal)
                return layout_.globalAddr[
                    static_cast<std::size_t>(ref.id)];
            return fp_ + frame().slotOffset[
                             static_cast<std::size_t>(ref.id)];
          }
          case ExprKind::Unary: {
            const auto &un = static_cast<const UnaryExpr &>(expr);
            if (un.op == UnaryOp::Deref)
                return evalValue(*un.operand);
            break;
          }
          case ExprKind::Index: {
            const auto &index = static_cast<const IndexExpr &>(expr);
            const std::uint64_t base =
                index.base->type->isArray() ? evalAddr(*index.base)
                                            : evalValue(*index.base);
            if (!running_)
                return 0;
            const std::uint64_t idx = evalValue(*index.index);
            const std::uint64_t elem =
                std::max<std::uint64_t>(expr.type->size(), 1);
            return base + idx * elem;
          }
          case ExprKind::Member: {
            const auto &member =
                static_cast<const MemberExpr &>(expr);
            const std::uint64_t base =
                member.isArrow ? evalValue(*member.base)
                               : evalAddr(*member.base);
            return base + member.fieldOffset;
          }
          default:
            break;
        }
        support::panic("ref evalAddr on non-lvalue expression");
        return 0;
    }

    std::uint64_t
    evalValue(const Expr &expr)
    {
        if (!tick())
            return 0;
        if (cert_ && expr.loc().line)
            curLine_ = expr.loc().line;
        switch (expr.kind()) {
          case ExprKind::IntLit: {
            const auto &lit = static_cast<const IntLitExpr &>(expr);
            std::int64_t value = lit.value;
            if (expr.type && expr.type->kind() == TypeKind::UInt)
                value = static_cast<std::uint32_t>(value);
            return static_cast<std::uint64_t>(value);
          }
          case ExprKind::FloatLit:
            return asBits(
                static_cast<const FloatLitExpr &>(expr).value);
          case ExprKind::StrLit: {
            const auto &lit = static_cast<const StrLitExpr &>(expr);
            auto it = layout_.strOffset.find(&lit);
            if (it == layout_.strOffset.end())
                support::panic("ref: string literal not interned");
            return refTraits().rodataBase + it->second;
          }
          case ExprKind::VarRef:
          case ExprKind::Index:
          case ExprKind::Member: {
            // Array- or struct-typed lvalues decay to their address.
            if (expr.type->isArray() || expr.type->isStruct())
                return evalAddr(expr);
            const std::uint64_t addr = evalAddr(expr);
            if (!running_)
                return 0;
            return loadScalar(addr, expr.type);
          }
          case ExprKind::Unary:
            return evalUnary(static_cast<const UnaryExpr &>(expr));
          case ExprKind::Binary:
            return evalBinary(static_cast<const BinaryExpr &>(expr));
          case ExprKind::Assign:
            return evalAssign(static_cast<const AssignExpr &>(expr));
          case ExprKind::Cond: {
            const auto &cond = static_cast<const CondExpr &>(expr);
            const bool taken = evalCondBool(*cond.cond);
            if (!running_)
                return 0;
            const Expr &arm =
                taken ? *cond.thenExpr : *cond.elseExpr;
            const std::uint64_t v = evalValue(arm);
            if (!running_)
                return 0;
            return convertVal(v, arm.type, expr.type);
          }
          case ExprKind::Call:
            return evalCall(static_cast<const CallExpr &>(expr));
          case ExprKind::Cast: {
            const auto &cast = static_cast<const CastExpr &>(expr);
            const std::uint64_t v = evalValue(*cast.operand);
            if (!running_)
                return 0;
            if (cast.target->isVoid())
                return 0; // value dropped
            return convertVal(v, cast.operand->type, cast.target);
          }
          case ExprKind::SizeOf:
            return static_cast<const SizeOfExpr &>(expr)
                .queried->size();
        }
        support::panic("ref: unhandled expression kind");
        return 0;
    }

    std::uint64_t
    evalUnary(const UnaryExpr &expr)
    {
        switch (expr.op) {
          case UnaryOp::Neg: {
            std::uint64_t v = evalValue(*expr.operand);
            if (!running_)
                return 0;
            v = convertVal(v, expr.operand->type, expr.type);
            if (expr.type->isDouble())
                return asBits(-asDouble(v));
            if (cert_) {
                curLine_ = expr.loc().line;
                cert_->checkNeg(v, expr.type, funcName(), curLine_);
            }
            return narrowVal(0 - v, expr.type);
          }
          case UnaryOp::BitNot: {
            std::uint64_t v = evalValue(*expr.operand);
            if (!running_)
                return 0;
            v = convertVal(v, expr.operand->type, expr.type);
            return narrowVal(~v, expr.type);
          }
          case UnaryOp::LogNot: {
            const std::uint64_t v = evalValue(*expr.operand);
            if (!running_)
                return 0;
            if (expr.operand->type->isDouble())
                return asDouble(v) == 0.0;
            return v == 0;
          }
          case UnaryOp::Deref: {
            if (expr.type->isArray() || expr.type->isStruct())
                return evalAddr(expr);
            const std::uint64_t addr = evalValue(*expr.operand);
            if (!running_)
                return 0;
            return loadScalar(addr, expr.type);
          }
          case UnaryOp::AddrOf:
            return evalAddr(*expr.operand);
        }
        return 0;
    }

    std::uint64_t
    evalBinary(const BinaryExpr &bin)
    {
        if (bin.op == BinaryOp::LogAnd ||
            bin.op == BinaryOp::LogOr) {
            const bool is_and = bin.op == BinaryOp::LogAnd;
            const bool l = evalCondBool(*bin.lhs);
            if (!running_)
                return 0;
            if (is_and && !l)
                return 0;
            if (!is_and && l)
                return 1;
            const bool r = evalCondBool(*bin.rhs);
            return r ? 1 : 0;
        }
        if (isComparison(bin.op))
            return evalComparison(bin);
        if (bin.op == BinaryOp::Shl || bin.op == BinaryOp::Shr) {
            std::uint64_t lv = evalValue(*bin.lhs);
            if (!running_)
                return 0;
            lv = convertVal(lv, bin.lhs->type, bin.type);
            const std::uint64_t count = evalValue(*bin.rhs);
            if (!running_)
                return 0;
            return applyShift(bin.op, bin.type, lv, count);
        }

        const Type *lt = bin.lhs->type;
        const Type *rt = bin.rhs->type;
        if (lt->isPointer() || lt->isArray() || rt->isPointer() ||
            rt->isArray()) {
            return evalPointerArith(bin);
        }

        if (bin.type->isDouble()) {
            std::uint64_t lv = evalValue(*bin.lhs);
            if (!running_)
                return 0;
            lv = convertVal(lv, lt, bin.type);
            std::uint64_t rv = evalValue(*bin.rhs);
            if (!running_)
                return 0;
            rv = convertVal(rv, rt, bin.type);
            const double a = asDouble(lv);
            const double b = asDouble(rv);
            switch (bin.op) {
              case BinaryOp::Add: return asBits(a + b);
              case BinaryOp::Sub: return asBits(a - b);
              case BinaryOp::Mul: return asBits(a * b);
              case BinaryOp::Div: return asBits(a / b);
              default:
                support::panic("ref: invalid double operator");
            }
        }

        std::uint64_t lv = evalValue(*bin.lhs);
        if (!running_)
            return 0;
        if (!bin.widenTo64)
            lv = convertVal(lv, lt, bin.type);
        std::uint64_t rv = evalValue(*bin.rhs);
        if (!running_)
            return 0;
        if (!bin.widenTo64)
            rv = convertVal(rv, rt, bin.type);
        return applyIntOp(bin.op, bin.type, lv, rv, bin.widenTo64);
    }

    std::uint64_t
    evalComparison(const BinaryExpr &bin)
    {
        const Type *common =
            comparisonType(bin.lhs->type, bin.rhs->type);
        std::uint64_t lv = evalValue(*bin.lhs);
        if (!running_)
            return 0;
        if (common)
            lv = convertVal(lv, bin.lhs->type, common);
        std::uint64_t rv = evalValue(*bin.rhs);
        if (!running_)
            return 0;
        if (common)
            rv = convertVal(rv, bin.rhs->type, common);

        if (common && common->isDouble()) {
            const double a = asDouble(lv);
            const double b = asDouble(rv);
            switch (bin.op) {
              case BinaryOp::Lt: return a < b;
              case BinaryOp::Le: return a <= b;
              case BinaryOp::Gt: return a > b;
              case BinaryOp::Ge: return a >= b;
              case BinaryOp::Eq: return a == b;
              case BinaryOp::Ne: return a != b;
              default: break;
            }
        }
        const bool is_signed = common && isSignedKind(common);
        const auto sa = static_cast<std::int64_t>(lv);
        const auto sb = static_cast<std::int64_t>(rv);
        switch (bin.op) {
          case BinaryOp::Lt: return is_signed ? sa < sb : lv < rv;
          case BinaryOp::Le: return is_signed ? sa <= sb : lv <= rv;
          case BinaryOp::Gt: return is_signed ? sa > sb : lv > rv;
          case BinaryOp::Ge: return is_signed ? sa >= sb : lv >= rv;
          case BinaryOp::Eq: return lv == rv;
          case BinaryOp::Ne: return lv != rv;
          default:
            support::panic("ref: not a comparison");
        }
        return 0;
    }

    std::uint64_t
    evalPointerArith(const BinaryExpr &bin)
    {
        const Type *lt = bin.lhs->type;
        const Type *rt = bin.rhs->type;
        const bool l_ptr = lt->isPointer() || lt->isArray();
        const bool r_ptr = rt->isPointer() || rt->isArray();

        auto elem_size = [](const Type *ptr) -> std::uint64_t {
            const Type *pointee =
                ptr->isArray() ? ptr->element() : ptr->pointee();
            return std::max<std::uint64_t>(pointee->size(), 1);
        };

        const std::uint64_t lv = evalValue(*bin.lhs);
        if (!running_)
            return 0;
        const std::uint64_t rv = evalValue(*bin.rhs);
        if (!running_)
            return 0;

        if (l_ptr && r_ptr) {
            // Pointer difference, scaled by the element size.
            const auto diff = static_cast<std::int64_t>(lv - rv);
            const auto es =
                static_cast<std::int64_t>(elem_size(lt));
            return static_cast<std::uint64_t>(diff / es);
        }
        const std::uint64_t ptr = l_ptr ? lv : rv;
        const std::uint64_t idx = l_ptr ? rv : lv;
        const std::uint64_t scaled =
            idx * elem_size(l_ptr ? lt : rt);
        return bin.op == BinaryOp::Add ? ptr + scaled : ptr - scaled;
    }

    std::uint64_t
    evalAssign(const AssignExpr &assign)
    {
        const Type *target_type = assign.target->type;

        if (assign.compoundOp) {
            // Address once; side effects in the target not repeated.
            const std::uint64_t addr = evalAddr(*assign.target);
            if (!running_)
                return 0;
            const std::uint64_t old =
                loadScalar(addr, target_type);
            if (!running_)
                return 0;

            std::uint64_t result = 0;
            if (target_type->isPointer()) {
                const std::uint64_t v = evalValue(*assign.value);
                if (!running_)
                    return 0;
                const std::uint64_t es = std::max<std::uint64_t>(
                    target_type->pointee()->size(), 1);
                result = *assign.compoundOp == BinaryOp::Add
                             ? old + v * es
                             : old - v * es;
            } else if (*assign.compoundOp == BinaryOp::Shl ||
                       *assign.compoundOp == BinaryOp::Shr) {
                const std::uint64_t count =
                    evalValue(*assign.value);
                if (!running_)
                    return 0;
                result = applyShift(*assign.compoundOp, target_type,
                                    old, count);
            } else if (target_type->isDouble() ||
                       assign.value->type->isDouble()) {
                const Type *op_type = types_.doubleType();
                const double a = asDouble(
                    convertVal(old, target_type, op_type));
                const std::uint64_t v = evalValue(*assign.value);
                if (!running_)
                    return 0;
                const double b = asDouble(
                    convertVal(v, assign.value->type, op_type));
                double r = 0;
                switch (*assign.compoundOp) {
                  case BinaryOp::Add: r = a + b; break;
                  case BinaryOp::Sub: r = a - b; break;
                  case BinaryOp::Mul: r = a * b; break;
                  case BinaryOp::Div: r = a / b; break;
                  default:
                    support::panic(
                        "ref: invalid double compound operator");
                }
                result =
                    convertVal(asBits(r), op_type, target_type);
            } else {
                const Type *op_type =
                    arithCommon(target_type, assign.value->type);
                const std::uint64_t a =
                    convertVal(old, target_type, op_type);
                const std::uint64_t v = evalValue(*assign.value);
                if (!running_)
                    return 0;
                const std::uint64_t b =
                    convertVal(v, assign.value->type, op_type);
                const std::uint64_t r = applyIntOp(
                    *assign.compoundOp, op_type, a, b, false);
                if (!running_)
                    return 0;
                result = convertVal(r, op_type, target_type);
            }
            storeScalar(addr, target_type, result);
            return result;
        }

        // Plain assignment: the reference order is address first,
        // value second (left-to-right, like the neutral call order).
        const std::uint64_t addr = evalAddr(*assign.target);
        if (!running_)
            return 0;
        std::uint64_t v = evalValue(*assign.value);
        if (!running_)
            return 0;
        v = convertVal(v, assign.value->type, target_type);
        storeScalar(addr, target_type, v);
        return v;
    }

    // --- calls -----------------------------------------------------
    const Type *
    builtinParamType(const CallExpr &call, std::size_t i) const
    {
        if (call.builtin != Builtin::None) {
            switch (call.builtin) {
              case Builtin::PrintInt:
              case Builtin::PrintChar:
              case Builtin::Exit:
              case Builtin::InputByte:
              case Builtin::Probe:
                return types_.intType();
              case Builtin::PrintUInt:
                return types_.uintType();
              case Builtin::PrintLong:
                return types_.longType();
              case Builtin::PrintHex:
                return types_.ulongType();
              case Builtin::PrintF:
              case Builtin::SqrtF:
              case Builtin::FloorF:
              case Builtin::PowF:
                return types_.doubleType();
              case Builtin::Malloc:
                return types_.longType();
              case Builtin::Memset:
                return i == 1   ? types_.intType()
                       : i == 2 ? types_.longType()
                                : nullptr;
              case Builtin::Memcpy:
                return i == 2 ? types_.longType() : nullptr;
              default:
                return nullptr; // pointer-typed; no conversion
            }
        }
        const auto &callee = *program_.functions[
            static_cast<std::size_t>(call.funcIndex)];
        if (i < callee.params.size()) {
            const Type *t = callee.params[i].type;
            return t->isArray() ? nullptr : t;
        }
        return nullptr;
    }

    std::uint64_t
    evalCall(const CallExpr &call)
    {
        // cur_line() resolves statically; the reference reading is
        // the call's own source line.
        if (call.builtin == Builtin::CurLine)
            return call.loc().line;

        // Left-to-right argument evaluation (the neutral order).
        std::vector<std::uint64_t> args;
        args.reserve(call.args.size());
        for (std::size_t i = 0; i < call.args.size(); i++) {
            std::uint64_t v = evalValue(*call.args[i]);
            if (!running_)
                return 0;
            if (const Type *want = builtinParamType(call, i)) {
                if (want->isScalar())
                    v = convertVal(v, call.args[i]->type, want);
            }
            args.push_back(v);
        }

        if (cert_ && call.loc().line)
            curLine_ = call.loc().line;
        if (call.builtin != Builtin::None)
            return evalBuiltin(call.builtin, args);

        const auto &callee = *program_.functions[
            static_cast<std::size_t>(call.funcIndex)];
        return callFunction(callee, args);
    }

    std::uint64_t
    callFunction(const FunctionDecl &callee,
                 const std::vector<std::uint64_t> &args)
    {
        const compiler::Traits &traits = refTraits();
        if (callDepth_ >= limits_.maxCallDepth) {
            finish(Termination::StackOverflow, 139, TrapKind::None);
            return 0;
        }
        const auto &frame = layout_.frames[
            static_cast<std::size_t>(callee.index)];
        const std::uint64_t stack_bottom =
            traits.stackBase - limits_.stackSize;
        const std::uint64_t sp = fp_;
        if (frame.frameSize > sp - stack_bottom) {
            finish(Termination::StackOverflow, 139, TrapKind::None);
            return 0;
        }
        const std::uint64_t new_fp = sp - frame.frameSize;
        // The callee frame becomes a live object (fresh bytes
        // uninitialized) before the param stores land in it.
        if (cert_)
            cert_->pushFrame(new_fp, callee, frame);
        // Extra arguments are dropped, missing ones leave the slot
        // uninitialized (CWE-685 semantics, same as the VM).
        const std::size_t stored =
            std::min(args.size(), callee.params.size());
        for (std::size_t i = 0; i < stored; i++) {
            if (!storeRaw(new_fp + frame.paramOffsets[i],
                          frame.paramSizes[i], args[i]))
                return 0;
        }

        const FunctionDecl *saved_func = curFunc_;
        const std::uint64_t saved_fp = fp_;
        curFunc_ = &callee;
        fp_ = new_fp;
        callDepth_++;
        flow_ = Flow::Normal;

        execStmt(*callee.body);

        std::uint64_t rv = 0;
        if (running_) {
            if (flow_ == Flow::Return) {
                rv = returnHasValue_ ? returnValue_ : 0;
            } else if (!callee.returnType->isVoid()) {
                rv = refTraits().undefWord;
            }
        }
        callDepth_--;
        curFunc_ = saved_func;
        fp_ = saved_fp;
        flow_ = Flow::Normal;
        if (cert_)
            cert_->popFrame();
        return rv;
    }

    std::uint64_t
    evalBuiltin(Builtin builtin,
                const std::vector<std::uint64_t> &args)
    {
        switch (builtin) {
          case Builtin::PrintInt:
            emitOut(std::to_string(
                static_cast<std::int32_t>(args[0])));
            return 0;
          case Builtin::PrintUInt:
            emitOut(std::to_string(
                static_cast<std::uint32_t>(args[0])));
            return 0;
          case Builtin::PrintLong:
            emitOut(std::to_string(
                static_cast<std::int64_t>(args[0])));
            return 0;
          case Builtin::PrintChar:
            if (res_.output.size() < limits_.maxOutput)
                res_.output.push_back(
                    static_cast<char>(args[0]));
            return 0;
          case Builtin::PrintHex:
            emitOut(support::format("%" PRIx64, args[0]));
            return 0;
          case Builtin::PrintPtr:
            emitOut(support::format("0x%" PRIx64, args[0]));
            return 0;
          case Builtin::PrintF:
            emitOut(support::format("%.17g", asDouble(args[0])));
            return 0;
          case Builtin::PrintStr: {
            const std::uint64_t addr = args[0];
            for (std::size_t n = 0; n < 65536; n++) {
                std::uint64_t byte = 0;
                if (!loadRaw(addr + n, 1, byte))
                    break;
                if (cert_)
                    cert_->checkInit(addr + n, 1, funcName(),
                                     curLine_);
                if ((byte & 0xff) == 0)
                    break;
                if (res_.output.size() < limits_.maxOutput)
                    res_.output.push_back(
                        static_cast<char>(byte));
            }
            return 0;
          }
          case Builtin::Newline:
            emitOut("\n");
            return 0;
          case Builtin::InputSize:
            return input_.size();
          case Builtin::InputByte: {
            const auto idx = static_cast<std::int64_t>(args[0]);
            if (idx >= 0 &&
                idx < static_cast<std::int64_t>(input_.size()))
                return input_[static_cast<std::size_t>(idx)];
            return static_cast<std::uint64_t>(-1);
          }
          case Builtin::ReadByte:
            if (inputCursor_ < input_.size())
                return input_[inputCursor_++];
            return static_cast<std::uint64_t>(-1);
          case Builtin::Malloc: {
            const auto n = static_cast<std::int64_t>(args[0]);
            if (n < 0)
                return 0;
            const std::uint64_t addr =
                heap_.allocate(static_cast<std::uint64_t>(n));
            if (cert_ && addr)
                cert_->noteMalloc(addr,
                                  static_cast<std::uint64_t>(n));
            return addr;
          }
          case Builtin::Free:
            if (cert_)
                cert_->noteFree(args[0]);
            switch (heap_.release(args[0])) {
              case FreeOutcome::Ok:
              case FreeOutcome::NullNoop:
              case FreeOutcome::DoubleFreeSilent:
              case FreeOutcome::InvalidFreeIgnored:
              case FreeOutcome::AsanDoubleFree:
              case FreeOutcome::AsanInvalidFree:
                break;
              case FreeOutcome::DoubleFreeAbort:
                emitOut("free(): double free detected\n");
                finish(Termination::RuntimeAbort, 134,
                       TrapKind::None);
                break;
              case FreeOutcome::InvalidFreeAbort:
                emitOut("free(): invalid pointer\n");
                finish(Termination::RuntimeAbort, 134,
                       TrapKind::None);
                break;
            }
            return 0;
          case Builtin::Memset: {
            const std::uint64_t dst = args[0];
            const std::uint64_t byte = args[1] & 0xff;
            const auto n = static_cast<std::int64_t>(args[2]);
            res_.instructions +=
                n > 0 ? static_cast<std::uint64_t>(n) : 0;
            for (std::int64_t i = 0; i < n && running_; i++)
                storeRaw(dst + static_cast<std::uint64_t>(i), 1,
                         byte);
            return 0;
          }
          case Builtin::Memcpy: {
            const std::uint64_t dst = args[0];
            const std::uint64_t src = args[1];
            const auto n = static_cast<std::int64_t>(args[2]);
            res_.instructions +=
                n > 0 ? static_cast<std::uint64_t>(n) : 0;
            // The reference copies forward (overlap is UB anyway).
            for (std::int64_t i = 0; i < n && running_; i++) {
                std::uint64_t byte = 0;
                if (!loadRaw(src + static_cast<std::uint64_t>(i), 1,
                             byte))
                    break;
                storeRaw(dst + static_cast<std::uint64_t>(i), 1,
                         byte);
            }
            return 0;
          }
          case Builtin::Strlen: {
            const std::uint64_t addr = args[0];
            std::uint64_t len = 0;
            for (; len < 65536 && running_; len++) {
                std::uint64_t byte = 0;
                if (!loadRaw(addr + len, 1, byte))
                    break;
                if (cert_)
                    cert_->checkInit(addr + len, 1, funcName(),
                                     curLine_);
                if ((byte & 0xff) == 0)
                    break;
            }
            return len;
          }
          case Builtin::Strcpy: {
            const std::uint64_t dst = args[0];
            const std::uint64_t src = args[1];
            for (std::uint64_t i = 0; i < 65536 && running_; i++) {
                std::uint64_t byte = 0;
                if (!loadRaw(src + i, 1, byte))
                    break;
                if (cert_)
                    cert_->checkInit(src + i, 1, funcName(),
                                     curLine_);
                if (!storeRaw(dst + i, 1, byte))
                    break;
                if ((byte & 0xff) == 0)
                    break;
            }
            return 0;
          }
          case Builtin::Strcmp: {
            const std::uint64_t a = args[0];
            const std::uint64_t b = args[1];
            std::int64_t cmp = 0;
            for (std::uint64_t i = 0; i < 65536 && running_; i++) {
                std::uint64_t ba = 0;
                std::uint64_t bb = 0;
                if (!loadRaw(a + i, 1, ba) ||
                    !loadRaw(b + i, 1, bb))
                    break;
                if (cert_) {
                    cert_->checkInit(a + i, 1, funcName(), curLine_);
                    cert_->checkInit(b + i, 1, funcName(), curLine_);
                }
                const auto ca = static_cast<std::uint8_t>(ba);
                const auto cb = static_cast<std::uint8_t>(bb);
                if (ca != cb) {
                    cmp = ca < cb ? -1 : 1;
                    break;
                }
                if (ca == 0)
                    break;
            }
            return static_cast<std::uint64_t>(cmp);
          }
          case Builtin::Exit:
            finish(Termination::Exit,
                   static_cast<std::int32_t>(args[0]),
                   TrapKind::None);
            return 0;
          case Builtin::Abort:
            finish(Termination::RuntimeAbort, 134, TrapKind::None);
            return 0;
          case Builtin::PowF:
            return asBits(
                std::pow(asDouble(args[0]), asDouble(args[1])));
          case Builtin::SqrtF:
            return asBits(std::sqrt(asDouble(args[0])));
          case Builtin::FloorF:
            return asBits(std::floor(asDouble(args[0])));
          case Builtin::TimeStamp:
            return nonce_;
          case Builtin::BadRand: {
            // The "uninitialized" heap byte is the zero fill here.
            const std::uint32_t raw =
                0x01010101u * refTraits().heapFill;
            return static_cast<std::uint64_t>(
                static_cast<std::int64_t>(
                    static_cast<std::int32_t>(raw & 0x7fffffff)));
          }
          case Builtin::Probe:
            res_.probes.push_back(
                static_cast<std::int32_t>(args[0]));
            return 0;
          case Builtin::CurLine:
          case Builtin::None:
            support::panic("ref: unexpected builtin call");
        }
        return 0;
    }

    // --- statements ------------------------------------------------
    void
    execStmt(const Stmt &stmt)
    {
        if (!tick())
            return;
        if (cert_ && stmt.loc().line)
            curLine_ = stmt.loc().line;
        switch (stmt.kind()) {
          case StmtKind::Block:
            for (const auto &s :
                 static_cast<const BlockStmt &>(stmt).body) {
                execStmt(*s);
                if (!running_ || flow_ != Flow::Normal)
                    return;
            }
            return;
          case StmtKind::VarDecl: {
            const auto &decl =
                static_cast<const VarDeclStmt &>(stmt);
            if (!decl.init)
                return; // storage stays as the stack fill left it
            const std::uint64_t addr =
                fp_ + frame().slotOffset[
                          static_cast<std::size_t>(decl.localId)];
            std::uint64_t v = evalValue(*decl.init);
            if (!running_)
                return;
            v = convertVal(v, decl.init->type, decl.declType);
            storeScalar(addr, decl.declType, v);
            return;
          }
          case StmtKind::If: {
            const auto &if_stmt = static_cast<const IfStmt &>(stmt);
            const bool taken = evalCondBool(*if_stmt.cond);
            if (!running_)
                return;
            if (taken)
                execStmt(*if_stmt.thenStmt);
            else if (if_stmt.elseStmt)
                execStmt(*if_stmt.elseStmt);
            return;
          }
          case StmtKind::While: {
            const auto &w = static_cast<const WhileStmt &>(stmt);
            while (running_) {
                if (!evalCondBool(*w.cond) || !running_)
                    return;
                execStmt(*w.body);
                if (flow_ == Flow::Break) {
                    flow_ = Flow::Normal;
                    return;
                }
                if (flow_ == Flow::Continue)
                    flow_ = Flow::Normal;
                if (flow_ == Flow::Return)
                    return;
            }
            return;
          }
          case StmtKind::For: {
            const auto &f = static_cast<const ForStmt &>(stmt);
            if (f.init) {
                execStmt(*f.init);
                if (!running_ || flow_ != Flow::Normal)
                    return;
            }
            while (running_) {
                if (f.cond) {
                    if (!evalCondBool(*f.cond) || !running_)
                        return;
                }
                execStmt(*f.body);
                if (flow_ == Flow::Break) {
                    flow_ = Flow::Normal;
                    return;
                }
                if (flow_ == Flow::Continue)
                    flow_ = Flow::Normal;
                if (flow_ == Flow::Return || !running_)
                    return;
                if (f.step)
                    evalValue(*f.step);
            }
            return;
          }
          case StmtKind::Return: {
            const auto &ret = static_cast<const ReturnStmt &>(stmt);
            if (curFunc_->returnType->isVoid()) {
                returnHasValue_ = false;
            } else if (ret.value) {
                std::uint64_t v = evalValue(*ret.value);
                if (!running_)
                    return;
                returnValue_ = convertVal(v, ret.value->type,
                                          curFunc_->returnType);
                returnHasValue_ = true;
            } else {
                returnValue_ = refTraits().undefWord;
                returnHasValue_ = true;
            }
            flow_ = Flow::Return;
            return;
          }
          case StmtKind::Break:
            flow_ = Flow::Break;
            return;
          case StmtKind::Continue:
            flow_ = Flow::Continue;
            return;
          case StmtKind::ExprStmt:
            evalValue(*static_cast<const ExprStmt &>(stmt).expr);
            return;
        }
        support::panic("ref: unhandled statement kind");
    }

    const RefInterpreter::Layout::FrameLayout &
    frame() const
    {
        return layout_.frames[
            static_cast<std::size_t>(curFunc_->index)];
    }

    const std::string &
    funcName() const
    {
        static const std::string kStartup = "<startup>";
        return curFunc_ ? curFunc_->name : kStartup;
    }

    const Program &program_;
    const TypeContext &types_;
    const RefInterpreter::Layout &layout_;
    const vm::VmLimits &limits_;
    const Bytes &input_;
    const std::uint64_t nonce_;
    Certifier *cert_ = nullptr;
    /** Source line of the node being evaluated (certifier only). */
    std::uint32_t curLine_ = 0;

    vm::AddressSpace space_;
    vm::Heap heap_;
    ExecutionResult res_;
    bool running_ = true;
    std::size_t inputCursor_ = 0;

    const FunctionDecl *curFunc_ = nullptr;
    std::uint64_t fp_ = 0;
    std::uint32_t callDepth_ = 0;
    Flow flow_ = Flow::Normal;
    std::uint64_t returnValue_ = 0;
    bool returnHasValue_ = false;
};

} // namespace

ExecutionResult
RefInterpreter::run(const Bytes &input, std::uint64_t nonce) const
{
    Interp interp(program_, *layout_, limits_, input, nonce);
    return interp.run();
}

CertifiedRun
RefInterpreter::certify(const Bytes &input, std::uint64_t nonce) const
{
    Certifier cert(program_, *layout_, limits_);
    Interp interp(program_, *layout_, limits_, input, nonce, &cert);
    CertifiedRun out;
    out.result = interp.run();
    out.certificates = std::move(cert.certificates());
    return out;
}

} // namespace compdiff::refinterp

