#pragma once

/**
 * @file
 * Small string utilities shared across modules.
 */

#include <string>
#include <string_view>
#include <vector>

namespace compdiff::support
{

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(std::string_view text, char delim);

/** Split into non-empty, whitespace-trimmed lines. */
std::vector<std::string> splitLines(std::string_view text);

/** Join pieces with a separator. */
std::string join(const std::vector<std::string> &pieces,
                 std::string_view sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view text);

/** True if text begins with prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True if text ends with suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/** True if needle occurs in haystack. */
bool contains(std::string_view haystack, std::string_view needle);

/** Replace every occurrence of a substring. */
std::string replaceAll(std::string text, std::string_view from,
                       std::string_view to);

/** Render an integer in lowercase hex with a 0x prefix. */
std::string toHex(std::uint64_t value);

/** Human-readable rendering of a byte count ("1.4M", "23K"). */
std::string humanCount(double value);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace compdiff::support
