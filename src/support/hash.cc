#include "support/hash.hh"

#include <cstring>

namespace compdiff::support
{

namespace
{

inline std::uint64_t
rotl64(std::uint64_t x, int r)
{
    return (x << r) | (x >> (64 - r));
}

inline std::uint64_t
getBlock64(const std::uint8_t *p, std::size_t i)
{
    std::uint64_t block;
    std::memcpy(&block, p + i * 8, sizeof(block));
    return block;
}

} // namespace

std::uint64_t
murmurMix64(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ULL;
    key ^= key >> 33;
    return key;
}

std::uint64_t
murmurHash64(const void *data, std::size_t len, std::uint64_t seed)
{
    // MurmurHash3_x64_128, reporting h1 only. Reference: Austin Appleby,
    // https://github.com/aappleby/smhasher (public domain).
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    const std::size_t nblocks = len / 16;

    std::uint64_t h1 = seed;
    std::uint64_t h2 = seed;

    const std::uint64_t c1 = 0x87c37b91114253d5ULL;
    const std::uint64_t c2 = 0x4cf5ad432745937fULL;

    for (std::size_t i = 0; i < nblocks; i++) {
        std::uint64_t k1 = getBlock64(bytes, i * 2 + 0);
        std::uint64_t k2 = getBlock64(bytes, i * 2 + 1);

        k1 *= c1; k1 = rotl64(k1, 31); k1 *= c2; h1 ^= k1;
        h1 = rotl64(h1, 27); h1 += h2; h1 = h1 * 5 + 0x52dce729;

        k2 *= c2; k2 = rotl64(k2, 33); k2 *= c1; h2 ^= k2;
        h2 = rotl64(h2, 31); h2 += h1; h2 = h2 * 5 + 0x38495ab5;
    }

    const std::uint8_t *tail = bytes + nblocks * 16;
    std::uint64_t k1 = 0;
    std::uint64_t k2 = 0;

    switch (len & 15) {
      case 15: k2 ^= std::uint64_t(tail[14]) << 48; [[fallthrough]];
      case 14: k2 ^= std::uint64_t(tail[13]) << 40; [[fallthrough]];
      case 13: k2 ^= std::uint64_t(tail[12]) << 32; [[fallthrough]];
      case 12: k2 ^= std::uint64_t(tail[11]) << 24; [[fallthrough]];
      case 11: k2 ^= std::uint64_t(tail[10]) << 16; [[fallthrough]];
      case 10: k2 ^= std::uint64_t(tail[9]) << 8; [[fallthrough]];
      case 9:
        k2 ^= std::uint64_t(tail[8]) << 0;
        k2 *= c2; k2 = rotl64(k2, 33); k2 *= c1; h2 ^= k2;
        [[fallthrough]];
      case 8: k1 ^= std::uint64_t(tail[7]) << 56; [[fallthrough]];
      case 7: k1 ^= std::uint64_t(tail[6]) << 48; [[fallthrough]];
      case 6: k1 ^= std::uint64_t(tail[5]) << 40; [[fallthrough]];
      case 5: k1 ^= std::uint64_t(tail[4]) << 32; [[fallthrough]];
      case 4: k1 ^= std::uint64_t(tail[3]) << 24; [[fallthrough]];
      case 3: k1 ^= std::uint64_t(tail[2]) << 16; [[fallthrough]];
      case 2: k1 ^= std::uint64_t(tail[1]) << 8; [[fallthrough]];
      case 1:
        k1 ^= std::uint64_t(tail[0]) << 0;
        k1 *= c1; k1 = rotl64(k1, 31); k1 *= c2; h1 ^= k1;
        break;
      default:
        break;
    }

    h1 ^= std::uint64_t(len);
    h2 ^= std::uint64_t(len);
    h1 += h2;
    h2 += h1;
    h1 = murmurMix64(h1);
    h2 = murmurMix64(h2);
    h1 += h2;

    return h1;
}

std::uint64_t
murmurHash64(std::string_view text, std::uint64_t seed)
{
    return murmurHash64(text.data(), text.size(), seed);
}

std::uint64_t
murmurHash64(const std::vector<std::uint8_t> &bytes, std::uint64_t seed)
{
    return murmurHash64(bytes.data(), bytes.size(), seed);
}

HashCombiner &
HashCombiner::add(std::uint64_t value)
{
    state_ = murmurMix64(state_ ^ murmurMix64(value));
    return *this;
}

HashCombiner &
HashCombiner::addBytes(const void *data, std::size_t len)
{
    return add(murmurHash64(data, len, state_));
}

HashCombiner &
HashCombiner::addString(std::string_view text)
{
    return addBytes(text.data(), text.size());
}

} // namespace compdiff::support
