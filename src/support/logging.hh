#pragma once

/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for unrecoverable
 * user-level errors (bad configuration, invalid arguments), warn() and
 * inform() are non-fatal notices.
 */

#include <stdexcept>
#include <string>

namespace compdiff::support
{

/** Exception thrown by panic(): an internal library bug. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Exception thrown by fatal(): an unrecoverable user error. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Report an internal invariant violation; never returns. */
[[noreturn]] void panic(const std::string &message);

/** Report an unrecoverable user error; never returns. */
[[noreturn]] void fatal(const std::string &message);

/** Emit a warning to stderr (does not stop execution). */
void warn(const std::string &message);

/** Emit an informational message to stderr. */
void inform(const std::string &message);

/** Globally silence warn()/inform() (used by quiet benchmark runs). */
void setQuiet(bool quiet);

/** Is warn()/inform() output currently silenced? */
bool isQuiet();

/**
 * Scoped setQuiet(): silences (or un-silences) notices for the
 * guard's lifetime and restores the previous state on destruction,
 * so nested quiet regions compose. All stderr notices in the library
 * go through warn()/inform(), which makes this guard sufficient to
 * keep a benchmark run silent.
 */
class QuietGuard
{
  public:
    explicit QuietGuard(bool quiet = true);
    ~QuietGuard();

    QuietGuard(const QuietGuard &) = delete;
    QuietGuard &operator=(const QuietGuard &) = delete;

  private:
    bool prev_;
};

} // namespace compdiff::support
