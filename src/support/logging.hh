#pragma once

/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for unrecoverable
 * user-level errors (bad configuration, invalid arguments), warn() and
 * inform() are non-fatal notices.
 */

#include <stdexcept>
#include <string>

namespace compdiff::support
{

/** Exception thrown by panic(): an internal library bug. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Exception thrown by fatal(): an unrecoverable user error. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Report an internal invariant violation; never returns. */
[[noreturn]] void panic(const std::string &message);

/** Report an unrecoverable user error; never returns. */
[[noreturn]] void fatal(const std::string &message);

/** Emit a warning to stderr (does not stop execution). */
void warn(const std::string &message);

/** Emit an informational message to stderr. */
void inform(const std::string &message);

/** Globally silence warn()/inform() (used by quiet benchmark runs). */
void setQuiet(bool quiet);

} // namespace compdiff::support
