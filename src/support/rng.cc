#include "support/rng.hh"

namespace compdiff::support
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &lane : s_)
        lane = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound <= 1)
        return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Rng::chance(std::uint64_t num, std::uint64_t den)
{
    return below(den) < num;
}

double
Rng::unit()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::size_t
Rng::index(std::size_t size)
{
    return static_cast<std::size_t>(below(size));
}

void
Rng::fill(std::vector<std::uint8_t> &bytes)
{
    for (auto &b : bytes)
        b = static_cast<std::uint8_t>(next());
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xA5A5A5A55A5A5A5AULL);
}

Rng::State
Rng::state() const
{
    return {s_[0], s_[1], s_[2], s_[3]};
}

void
Rng::setState(const State &state)
{
    for (std::size_t i = 0; i < state.size(); i++)
        s_[i] = state[i];
}

} // namespace compdiff::support
