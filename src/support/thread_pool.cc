#include "support/thread_pool.hh"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "support/logging.hh"

namespace compdiff::support
{

struct ThreadPool::Impl
{
    std::mutex mu;
    std::condition_variable wake;  ///< workers wait here for tasks
    std::condition_variable idle;  ///< waitIdle() waits here
    std::deque<std::function<void()>> queue;
    std::size_t running = 0; ///< tasks currently executing
    bool stopping = false;
    std::vector<std::thread> workers;

    void workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mu);
                wake.wait(lock, [&] {
                    return stopping || !queue.empty();
                });
                if (queue.empty())
                    return; // stopping and drained
                task = std::move(queue.front());
                queue.pop_front();
                running++;
            }
            task();
            {
                std::lock_guard<std::mutex> lock(mu);
                running--;
                if (queue.empty() && running == 0)
                    idle.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl())
{
    if (workers == 0)
        workers = hardwareWorkers();
    impl_->workers.reserve(workers);
    for (std::size_t i = 0; i < workers; i++)
        impl_->workers.emplace_back([this] { impl_->workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->stopping = true;
    }
    impl_->wake.notify_all();
    for (auto &worker : impl_->workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        if (impl_->stopping)
            support::panic("submit() on a stopping ThreadPool");
        impl_->queue.push_back(std::move(task));
    }
    impl_->wake.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->idle.wait(lock, [&] {
        return impl_->queue.empty() && impl_->running == 0;
    });
}

std::size_t
ThreadPool::workerCount() const
{
    return impl_->workers.size();
}

std::size_t
ThreadPool::hardwareWorkers()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

namespace
{

/**
 * Shared state of one runAll() batch. Heap-allocated and owned
 * jointly by the caller and every driver job: a driver may still be
 * exiting its claim loop after the last task completed and the
 * caller has already returned, so the state must outlive both.
 */
struct Batch
{
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> next{0}; ///< next task index to claim
    std::mutex mu;
    std::condition_variable done;
    std::size_t completed = 0;
    std::vector<std::exception_ptr> errors;

    explicit Batch(std::vector<std::function<void()>> t)
        : tasks(std::move(t)), errors(tasks.size())
    {}

    /** Claim-and-run until no task is left. */
    void drive()
    {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size())
                return;
            try {
                tasks[i]();
            } catch (...) {
                errors[i] = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(mu);
            if (++completed == tasks.size())
                done.notify_all();
        }
    }
};

} // namespace

void
ThreadPool::runAll(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    auto batch = std::make_shared<Batch>(std::move(tasks));

    // One driver per worker (capped at the batch size); the caller
    // drives too, so a busy or 0-sized pool cannot deadlock a batch.
    const std::size_t drivers =
        std::min(workerCount(), batch->tasks.size());
    for (std::size_t i = 0; i < drivers; i++)
        submit([batch] { batch->drive(); });
    batch->drive();

    {
        std::unique_lock<std::mutex> lock(batch->mu);
        batch->done.wait(lock, [&] {
            return batch->completed == batch->tasks.size();
        });
    }
    for (auto &error : batch->errors)
        if (error)
            std::rethrow_exception(error);
}

} // namespace compdiff::support
