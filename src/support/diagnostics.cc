#include "support/diagnostics.hh"

#include <sstream>

namespace compdiff::support
{

std::string
SourceLoc::str() const
{
    std::ostringstream os;
    os << line << ":" << column;
    return os.str();
}

std::string
Diagnostic::str() const
{
    std::ostringstream os;
    switch (severity) {
      case Severity::Note: os << "note"; break;
      case Severity::Warning: os << "warning"; break;
      case Severity::Error: os << "error"; break;
    }
    os << " at " << loc.str() << ": " << message;
    return os.str();
}

void
DiagnosticEngine::error(SourceLoc loc, std::string message)
{
    diags_.push_back({Severity::Error, loc, std::move(message)});
    errorCount_++;
}

void
DiagnosticEngine::warning(SourceLoc loc, std::string message)
{
    diags_.push_back({Severity::Warning, loc, std::move(message)});
}

void
DiagnosticEngine::note(SourceLoc loc, std::string message)
{
    diags_.push_back({Severity::Note, loc, std::move(message)});
}

std::string
DiagnosticEngine::str() const
{
    std::ostringstream os;
    for (const auto &d : diags_)
        os << d.str() << "\n";
    return os.str();
}

void
DiagnosticEngine::clear()
{
    diags_.clear();
    errorCount_ = 0;
}

} // namespace compdiff::support
