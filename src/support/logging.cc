#include "support/logging.hh"

#include <atomic>
#include <iostream>

namespace compdiff::support
{

namespace
{
std::atomic<bool> quietFlag{false};
} // namespace

void
panic(const std::string &message)
{
    throw PanicError("panic: " + message);
}

void
fatal(const std::string &message)
{
    throw FatalError("fatal: " + message);
}

void
warn(const std::string &message)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::cerr << "warn: " << message << "\n";
}

void
inform(const std::string &message)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::cerr << "info: " << message << "\n";
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

QuietGuard::QuietGuard(bool quiet) : prev_(isQuiet())
{
    setQuiet(quiet);
}

QuietGuard::~QuietGuard()
{
    setQuiet(prev_);
}

} // namespace compdiff::support
