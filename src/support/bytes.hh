#pragma once

/**
 * @file
 * Byte-buffer helpers for fuzz inputs and program outputs.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace compdiff::support
{

/** Convenience alias: a fuzz input / captured output is a byte vector. */
using Bytes = std::vector<std::uint8_t>;

/** Build a byte vector from a string's raw characters. */
Bytes toBytes(std::string_view text);

/** Interpret a byte vector as text (may contain NULs). */
std::string toString(const Bytes &bytes);

/** Classic side-by-side hexdump, 16 bytes per row. */
std::string hexDump(const Bytes &bytes, std::size_t max_rows = 16);

/** Read a little-endian u32 at offset; returns fallback if OOB. */
std::uint32_t readLE32(const Bytes &bytes, std::size_t offset,
                       std::uint32_t fallback = 0);

/** Read a little-endian u16 at offset; returns fallback if OOB. */
std::uint16_t readLE16(const Bytes &bytes, std::size_t offset,
                       std::uint16_t fallback = 0);

/** Append a little-endian u32. */
void appendLE32(Bytes &bytes, std::uint32_t value);

/** Append a little-endian u16. */
void appendLE16(Bytes &bytes, std::uint16_t value);

} // namespace compdiff::support
