#include "support/bytes.hh"

#include <cstdio>

namespace compdiff::support
{

Bytes
toBytes(std::string_view text)
{
    return Bytes(text.begin(), text.end());
}

std::string
toString(const Bytes &bytes)
{
    return std::string(bytes.begin(), bytes.end());
}

std::string
hexDump(const Bytes &bytes, std::size_t max_rows)
{
    std::string out;
    char buf[24];
    const std::size_t rows = (bytes.size() + 15) / 16;
    for (std::size_t row = 0; row < rows && row < max_rows; row++) {
        std::snprintf(buf, sizeof(buf), "%04zx  ", row * 16);
        out += buf;
        for (std::size_t col = 0; col < 16; col++) {
            const std::size_t i = row * 16 + col;
            if (i < bytes.size()) {
                std::snprintf(buf, sizeof(buf), "%02x ", bytes[i]);
                out += buf;
            } else {
                out += "   ";
            }
        }
        out += " |";
        for (std::size_t col = 0; col < 16; col++) {
            const std::size_t i = row * 16 + col;
            if (i >= bytes.size())
                break;
            const char c = static_cast<char>(bytes[i]);
            out += (c >= 0x20 && c < 0x7f) ? c : '.';
        }
        out += "|\n";
    }
    if (rows > max_rows)
        out += "...\n";
    return out;
}

std::uint32_t
readLE32(const Bytes &bytes, std::size_t offset, std::uint32_t fallback)
{
    if (offset + 4 > bytes.size())
        return fallback;
    return std::uint32_t(bytes[offset]) |
           (std::uint32_t(bytes[offset + 1]) << 8) |
           (std::uint32_t(bytes[offset + 2]) << 16) |
           (std::uint32_t(bytes[offset + 3]) << 24);
}

std::uint16_t
readLE16(const Bytes &bytes, std::size_t offset, std::uint16_t fallback)
{
    if (offset + 2 > bytes.size())
        return fallback;
    return static_cast<std::uint16_t>(
        std::uint16_t(bytes[offset]) |
        (std::uint16_t(bytes[offset + 1]) << 8));
}

void
appendLE32(Bytes &bytes, std::uint32_t value)
{
    bytes.push_back(static_cast<std::uint8_t>(value));
    bytes.push_back(static_cast<std::uint8_t>(value >> 8));
    bytes.push_back(static_cast<std::uint8_t>(value >> 16));
    bytes.push_back(static_cast<std::uint8_t>(value >> 24));
}

void
appendLE16(Bytes &bytes, std::uint16_t value)
{
    bytes.push_back(static_cast<std::uint8_t>(value));
    bytes.push_back(static_cast<std::uint8_t>(value >> 8));
}

} // namespace compdiff::support
