#pragma once

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in this repository (the fuzzer's mutation
 * engine, workload generators, layout jitter in vendor traits) draws
 * from these generators so that whole experiments are reproducible from
 * a single seed. We use SplitMix64 for seeding and Xoshiro256** as the
 * workhorse generator.
 */

#include <array>
#include <cstdint>
#include <vector>

namespace compdiff::support
{

/** SplitMix64 stepping function; also usable as a one-shot seeder. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * Xoshiro256** deterministic PRNG.
 *
 * Small, fast, and sufficient for fuzzing and synthetic workloads.
 * Not cryptographically secure (and does not need to be).
 */
class Rng
{
  public:
    /**
     * The full generator state (the four Xoshiro256** lanes).
     * Checkpoint/resume (src/session) serializes this: restoring a
     * saved state continues the exact stream the snapshot
     * interrupted.
     */
    using State = std::array<std::uint64_t, 4>;

    /** Construct from a 64-bit seed, expanded through SplitMix64. */
    explicit Rng(std::uint64_t seed = 0xC0FFEE123456789ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound) for bound >= 1. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform value in the inclusive range [lo, hi]. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial that succeeds with probability num/den. */
    bool chance(std::uint64_t num, std::uint64_t den);

    /** Uniform double in [0, 1). */
    double unit();

    /** Pick a uniformly random element index for a container size. */
    std::size_t index(std::size_t size);

    /** Fill a byte vector with random content. */
    void fill(std::vector<std::uint8_t> &bytes);

    /** Fork an independent child generator (stream split). */
    Rng split();

    /** Snapshot the generator state (for checkpointing). */
    State state() const;

    /** Restore a snapshot taken with state(). */
    void setState(const State &state);

  private:
    std::uint64_t s_[4];
};

} // namespace compdiff::support
