#pragma once

/**
 * @file
 * A fixed-size worker pool for the parallel execution layer.
 *
 * Design constraints (in order):
 *   1. Deterministic results: the pool schedules *where* tasks run,
 *      never *what* they compute. Batch helpers index every task, so
 *      callers write outputs to fixed slots and completion order is
 *      invisible.
 *   2. Simplicity over throughput tricks: one mutex-protected FIFO
 *      queue, no work stealing. Tasks here are whole VM executions
 *      (thousands of interpreted instructions each), so queue
 *      contention is noise.
 *   3. Graceful shutdown: the destructor drains every queued task
 *      before joining, so submitted work is never silently dropped.
 *
 * Exception discipline: a task that throws inside runAll() has its
 * exception captured and rethrown on the calling thread once the
 * whole batch has finished; when several tasks throw, the
 * lowest-indexed exception wins (deterministic). Tasks submitted via
 * submit() must not throw (enforced with a fatal diagnostic).
 */

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace compdiff::support
{

class ThreadPool
{
  public:
    /**
     * @param workers Number of worker threads; 0 selects
     *                hardwareWorkers(). A pool with `workers == 0`
     *                after resolution is impossible (minimum 1).
     */
    explicit ThreadPool(std::size_t workers = 0);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one fire-and-forget task (must not throw). */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void waitIdle();

    /**
     * Run every task to completion, blocking the caller.
     *
     * The calling thread participates in execution, so a pool is
     * never idle-blocked on itself and `runAll` on a 1-worker pool
     * still makes progress even while workers are busy elsewhere.
     * Tasks are claimed in index order; outputs should be written to
     * per-index slots for deterministic results.
     */
    void runAll(std::vector<std::function<void()>> tasks);

    std::size_t workerCount() const;

    /** std::thread::hardware_concurrency() with a floor of 1. */
    static std::size_t hardwareWorkers();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace compdiff::support
