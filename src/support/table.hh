#pragma once

/**
 * @file
 * Plain-text table rendering for the benchmark harnesses.
 *
 * Every bench binary reproduces one of the paper's tables or figures;
 * this helper keeps their textual output aligned and consistent.
 */

#include <string>
#include <vector>

namespace compdiff::support
{

/** Column alignment choice. */
enum class Align
{
    Left,
    Right,
};

/**
 * Accumulates rows of strings and renders an aligned ASCII table.
 */
class TextTable
{
  public:
    /** Set the header row (also defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Set per-column alignment; default is Left for every column. */
    void setAlign(std::vector<Align> align);

    /** Append a body row; must match the header column count. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the whole table, trailing newline included. */
    std::string str() const;

  private:
    std::vector<std::string> header_;
    std::vector<Align> align_;
    /** A row; empty vector encodes a separator. */
    std::vector<std::vector<std::string>> rows_;
};

/** Five-number summary of a sample (used by the figure benches). */
struct BoxStats
{
    double min = 0;
    double q1 = 0;
    double median = 0;
    double q3 = 0;
    double max = 0;
};

/** Compute a five-number summary; input need not be sorted. */
BoxStats boxStats(std::vector<double> values);

/**
 * Render a horizontal ASCII box-and-whisker strip for a value range.
 *
 * @param stats Five-number summary to draw.
 * @param lo    Left edge of the plotting scale.
 * @param hi    Right edge of the plotting scale.
 * @param width Character width of the strip.
 */
std::string asciiBox(const BoxStats &stats, double lo, double hi,
                     std::size_t width = 48);

} // namespace compdiff::support
