#pragma once

/**
 * @file
 * Hash functions used across CompDiff.
 *
 * The paper (Section 3.2, "Output examination") compares per-binary
 * output files by checksumming them with MurmurHash3, the hash function
 * AFL++ ships. We provide the same family here: the 64-bit finalizer,
 * the x64 128-bit variant (of which we expose the low 64 bits), and a
 * small incremental combiner for composing structured hashes.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace compdiff::support
{

/** MurmurHash3 64-bit finalizer (fmix64). Useful for integer mixing. */
std::uint64_t murmurMix64(std::uint64_t key);

/**
 * MurmurHash3 x64 128-bit over a byte range, truncated to 64 bits.
 *
 * This mirrors the checksum AFL++ (and thus CompDiff-AFL++) computes
 * over captured program output.
 *
 * @param data Pointer to the first byte.
 * @param len  Number of bytes.
 * @param seed Hash seed; distinct seeds give independent hash families.
 * @return Low 64 bits of the 128-bit MurmurHash3 digest.
 */
std::uint64_t murmurHash64(const void *data, std::size_t len,
                           std::uint64_t seed = 0);

/** Convenience overload hashing a string view. */
std::uint64_t murmurHash64(std::string_view text, std::uint64_t seed = 0);

/** Convenience overload hashing a byte vector. */
std::uint64_t murmurHash64(const std::vector<std::uint8_t> &bytes,
                           std::uint64_t seed = 0);

/**
 * Incremental hash combiner for structured data.
 *
 * Not a streaming MurmurHash (chunk boundaries are significant); used
 * where we need order-sensitive composition of already-hashed parts,
 * e.g. hashing (stdout, stderr, exit status) triples.
 */
class HashCombiner
{
  public:
    /** Create a combiner with an optional seed. */
    explicit HashCombiner(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {}

    /** Mix a 64-bit word into the running state. */
    HashCombiner &add(std::uint64_t value);

    /** Mix a byte range into the running state. */
    HashCombiner &addBytes(const void *data, std::size_t len);

    /** Mix a string into the running state. */
    HashCombiner &addString(std::string_view text);

    /** Final digest. */
    std::uint64_t digest() const { return murmurMix64(state_); }

  private:
    std::uint64_t state_;
};

} // namespace compdiff::support
