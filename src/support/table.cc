#include "support/table.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace compdiff::support
{

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::setAlign(std::vector<Align> align)
{
    align_ = std::move(align);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size())
        panic("TextTable row width mismatch");
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.push_back({});
}

std::string
TextTable::str() const
{
    const std::size_t cols =
        header_.empty() ? (rows_.empty() ? 0 : rows_[0].size())
                        : header_.size();
    std::vector<std::size_t> width(cols, 0);

    auto measure = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); c++)
            width[c] = std::max(width[c], row[c].size());
    };
    if (!header_.empty())
        measure(header_);
    for (const auto &row : rows_)
        if (!row.empty())
            measure(row);

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < cols; c++) {
            const std::string &cell = c < row.size() ? row[c] : "";
            const Align a =
                c < align_.size() ? align_[c] : Align::Left;
            const std::size_t pad = width[c] - cell.size();
            if (c)
                line += "  ";
            if (a == Align::Right)
                line += std::string(pad, ' ') + cell;
            else
                line += cell + std::string(pad, ' ');
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out;
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; c++)
        total += width[c] + (c ? 2 : 0);

    if (!header_.empty()) {
        out += renderRow(header_);
        out += std::string(total, '-') + "\n";
    }
    for (const auto &row : rows_) {
        if (row.empty())
            out += std::string(total, '-') + "\n";
        else
            out += renderRow(row);
    }
    return out;
}

BoxStats
boxStats(std::vector<double> values)
{
    BoxStats s;
    if (values.empty())
        return s;
    std::sort(values.begin(), values.end());
    auto quantile = [&](double q) {
        const double pos = q * (static_cast<double>(values.size()) - 1);
        const auto lo = static_cast<std::size_t>(std::floor(pos));
        const auto hi = static_cast<std::size_t>(std::ceil(pos));
        const double frac = pos - std::floor(pos);
        return values[lo] * (1 - frac) + values[hi] * frac;
    };
    s.min = values.front();
    s.q1 = quantile(0.25);
    s.median = quantile(0.5);
    s.q3 = quantile(0.75);
    s.max = values.back();
    return s;
}

std::string
asciiBox(const BoxStats &stats, double lo, double hi, std::size_t width)
{
    if (width < 4 || hi <= lo)
        return std::string(width, ' ');
    auto pos = [&](double v) {
        double t = (v - lo) / (hi - lo);
        t = std::clamp(t, 0.0, 1.0);
        return static_cast<std::size_t>(
            std::lround(t * static_cast<double>(width - 1)));
    };
    std::string strip(width, ' ');
    const std::size_t pmin = pos(stats.min);
    const std::size_t pq1 = pos(stats.q1);
    const std::size_t pmed = pos(stats.median);
    const std::size_t pq3 = pos(stats.q3);
    const std::size_t pmax = pos(stats.max);

    for (std::size_t i = pmin; i <= pq1; i++)
        strip[i] = '-';
    for (std::size_t i = pq1; i <= pq3; i++)
        strip[i] = '=';
    for (std::size_t i = pq3; i <= pmax; i++)
        strip[i] = '-';
    strip[pmin] = '|';
    strip[pmax] = '|';
    strip[pmed] = '#';
    return strip;
}

} // namespace compdiff::support
