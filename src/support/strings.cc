#include "support/strings.hh"

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace compdiff::support
{

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); i++) {
        if (i == text.size() || text[i] == delim) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(std::string_view text)
{
    std::vector<std::string> out;
    for (auto &line : split(text, '\n')) {
        auto t = trim(line);
        if (!t.empty())
            out.push_back(std::move(t));
    }
    return out;
}

std::string
join(const std::vector<std::string> &pieces, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < pieces.size(); i++) {
        if (i)
            out += sep;
        out += pieces[i];
    }
    return out;
}

std::string
trim(std::string_view text)
{
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])))
        b++;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])))
        e--;
    return std::string(text.substr(b, e - b));
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

bool
contains(std::string_view haystack, std::string_view needle)
{
    return haystack.find(needle) != std::string_view::npos;
}

std::string
replaceAll(std::string text, std::string_view from, std::string_view to)
{
    if (from.empty())
        return text;
    std::size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
        text.replace(pos, from.size(), to);
        pos += to.size();
    }
    return text;
}

std::string
toHex(std::uint64_t value)
{
    std::ostringstream os;
    os << "0x" << std::hex << value;
    return os.str();
}

std::string
humanCount(double value)
{
    char buf[32];
    if (value >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.1fM", value / 1e6);
    else if (value >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.0fK", value / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0,
                    '\0');
    if (needed > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    va_end(args2);
    return out;
}

} // namespace compdiff::support
