#pragma once

/**
 * @file
 * Source locations and compile-time diagnostics for the MiniC frontend.
 */

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace compdiff::support
{

/** A (line, column) position in a MiniC source buffer; 1-based. */
struct SourceLoc
{
    std::uint32_t line = 0;
    std::uint32_t column = 0;

    bool valid() const { return line != 0; }
    std::string str() const;

    bool operator==(const SourceLoc &) const = default;
};

/** Severity of a diagnostic. */
enum class Severity
{
    Note,
    Warning,
    Error,
};

/** One frontend diagnostic message. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    SourceLoc loc;
    std::string message;

    std::string str() const;
};

/**
 * Collects diagnostics during lexing, parsing, and semantic analysis.
 *
 * The frontend accumulates instead of throwing so that callers (e.g.
 * static analyzers, test harnesses) can inspect all problems at once.
 */
class DiagnosticEngine
{
  public:
    /** Record an error diagnostic. */
    void error(SourceLoc loc, std::string message);

    /** Record a warning diagnostic. */
    void warning(SourceLoc loc, std::string message);

    /** Record a note diagnostic. */
    void note(SourceLoc loc, std::string message);

    /** True if at least one error has been recorded. */
    bool hasErrors() const { return errorCount_ > 0; }

    /** Number of recorded errors. */
    std::size_t errorCount() const { return errorCount_; }

    /** All diagnostics, in emission order. */
    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    /** Render all diagnostics as one newline-separated string. */
    std::string str() const;

    /** Drop all recorded diagnostics. */
    void clear();

  private:
    std::vector<Diagnostic> diags_;
    std::size_t errorCount_ = 0;
};

/** Exception raised when a MiniC program fails to compile. */
class CompileError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

} // namespace compdiff::support
