#include "bytecode/insn.hh"

#include <cstring>
#include <sstream>

namespace compdiff::bytecode
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Block: return "block";
      case Op::PushI: return "push.i";
      case Op::PushF: return "push.f";
      case Op::PushUndef: return "push.undef";
      case Op::Dup: return "dup";
      case Op::Drop: return "drop";
      case Op::Swap: return "swap";
      case Op::Rot3: return "rot3";
      case Op::FrameAddr: return "frame.addr";
      case Op::GlobalAddr: return "global.addr";
      case Op::RodataAddr: return "rodata.addr";
      case Op::Ld8S: return "ld8.s";
      case Op::Ld8U: return "ld8.u";
      case Op::Ld32S: return "ld32.s";
      case Op::Ld32U: return "ld32.u";
      case Op::Ld64: return "ld64";
      case Op::LdF: return "ld.f";
      case Op::St8: return "st8";
      case Op::St32: return "st32";
      case Op::St64: return "st64";
      case Op::StF: return "st.f";
      case Op::AddI: return "add.i";
      case Op::SubI: return "sub.i";
      case Op::MulI: return "mul.i";
      case Op::DivS: return "div.s";
      case Op::RemS: return "rem.s";
      case Op::DivU: return "div.u";
      case Op::RemU: return "rem.u";
      case Op::Shl: return "shl";
      case Op::ShrS: return "shr.s";
      case Op::ShrU: return "shr.u";
      case Op::AndI: return "and";
      case Op::OrI: return "or";
      case Op::XorI: return "xor";
      case Op::NegI: return "neg.i";
      case Op::NotI: return "not.i";
      case Op::Trunc32S: return "trunc32.s";
      case Op::Trunc32U: return "trunc32.u";
      case Op::Trunc8S: return "trunc8.s";
      case Op::Trunc8U: return "trunc8.u";
      case Op::CmpLtS: return "cmplt.s";
      case Op::CmpLeS: return "cmple.s";
      case Op::CmpGtS: return "cmpgt.s";
      case Op::CmpGeS: return "cmpge.s";
      case Op::CmpLtU: return "cmplt.u";
      case Op::CmpLeU: return "cmple.u";
      case Op::CmpGtU: return "cmpgt.u";
      case Op::CmpGeU: return "cmpge.u";
      case Op::CmpEq: return "cmpeq";
      case Op::CmpNe: return "cmpne";
      case Op::CmpEqZ: return "cmpeqz";
      case Op::BoolVal: return "boolval";
      case Op::AddF: return "add.f";
      case Op::SubF: return "sub.f";
      case Op::MulF: return "mul.f";
      case Op::DivF: return "div.f";
      case Op::NegF: return "neg.f";
      case Op::CmpLtF: return "cmplt.f";
      case Op::CmpLeF: return "cmple.f";
      case Op::CmpGtF: return "cmpgt.f";
      case Op::CmpGeF: return "cmpge.f";
      case Op::CmpEqF: return "cmpeq.f";
      case Op::CmpNeF: return "cmpne.f";
      case Op::I2FS: return "i2f.s";
      case Op::I2FU: return "i2f.u";
      case Op::F2I: return "f2i";
      case Op::ShiftNorm32: return "shiftnorm32";
      case Op::ShiftNorm64: return "shiftnorm64";
      case Op::Jmp: return "jmp";
      case Op::JmpZ: return "jmpz";
      case Op::JmpNZ: return "jmpnz";
      case Op::Call: return "call";
      case Op::CallB: return "call.b";
      case Op::Ret: return "ret";
      case Op::Halt: return "halt";
      case Op::ChkOv32: return "chk.ov32";
      case Op::ChkDivS: return "chk.div";
      case Op::ChkShift32: return "chk.shift32";
      case Op::ChkShift64: return "chk.shift64";
      case Op::ChkNull: return "chk.null";
    }
    return "?";
}

std::string
Insn::str() const
{
    std::ostringstream os;
    os << opName(op);
    switch (op) {
      case Op::PushI:
      case Op::PushF:
        os << " " << imm;
        break;
      case Op::FrameAddr:
      case Op::GlobalAddr:
      case Op::RodataAddr:
      case Op::Jmp:
      case Op::JmpZ:
      case Op::JmpNZ:
      case Op::Block:
      case Op::Ret:
        os << " " << a;
        break;
      case Op::Call:
      case Op::CallB:
        os << " " << a << " argc=" << b
           << (imm ? " rtl" : " ltr");
        break;
      default:
        break;
    }
    return os.str();
}

std::int64_t
doubleToBits(double value)
{
    std::int64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

double
bitsToDouble(std::int64_t bits)
{
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

} // namespace compdiff::bytecode
