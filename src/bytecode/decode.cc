#include "bytecode/decode.hh"

#include <cstddef>

namespace compdiff::bytecode
{

// The base XOp block must mirror Op exactly so a non-fused
// instruction decodes with a plain value-preserving cast. Anchor the
// first, last, and a few interior opcodes; any insertion into Op
// without a matching COMPDIFF_XOP_BASE_LIST edit trips one of these.
static_assert(static_cast<int>(XOp::Nop) == static_cast<int>(Op::Nop));
static_assert(static_cast<int>(XOp::Block) ==
              static_cast<int>(Op::Block));
static_assert(static_cast<int>(XOp::St8) == static_cast<int>(Op::St8));
static_assert(static_cast<int>(XOp::CmpEqZ) ==
              static_cast<int>(Op::CmpEqZ));
static_assert(static_cast<int>(XOp::ShiftNorm64) ==
              static_cast<int>(Op::ShiftNorm64));
static_assert(static_cast<int>(XOp::Halt) ==
              static_cast<int>(Op::Halt));
static_assert(static_cast<int>(XOp::ChkNull) ==
              static_cast<int>(Op::ChkNull));

const char *xopName(XOp op)
{
    switch (op) {
#define COMPDIFF_X(name)                                               \
    case XOp::name:                                                    \
        return #name;
        COMPDIFF_XOP_BASE_LIST(COMPDIFF_X)
#undef COMPDIFF_X
#define COMPDIFF_X(name, base)                                         \
    case XOp::name:                                                    \
        return #name;
        COMPDIFF_XOP_PUSHI_FUSED_LIST(COMPDIFF_X)
#undef COMPDIFF_X
#define COMPDIFF_X(name, base, z)                                      \
    case XOp::name:                                                    \
        return #name;
        COMPDIFF_XOP_CMPJMP_FUSED_LIST(COMPDIFF_X)
#undef COMPDIFF_X
#define COMPDIFF_X(name, base)                                         \
    case XOp::name:                                                    \
        return #name;
        COMPDIFF_XOP_FRAMELD_FUSED_LIST(COMPDIFF_X)
#undef COMPDIFF_X
    case XOp::TrapEnd:
        return "TrapEnd";
    case XOp::Count_:
        break;
    }
    return "?";
}

namespace
{

/** The fused opcode for the pair (a, b), or Count_ when not fusable. */
XOp fuseOf(Op a, Op b)
{
    if (a == Op::PushI) {
        switch (b) {
#define COMPDIFF_X(name, base)                                         \
    case Op::base:                                                     \
        return XOp::name;
            COMPDIFF_XOP_PUSHI_FUSED_LIST(COMPDIFF_X)
#undef COMPDIFF_X
        default:
            return XOp::Count_;
        }
    }
    if (a == Op::FrameAddr) {
        switch (b) {
#define COMPDIFF_X(name, base)                                         \
    case Op::base:                                                     \
        return XOp::name;
            COMPDIFF_XOP_FRAMELD_FUSED_LIST(COMPDIFF_X)
#undef COMPDIFF_X
        default:
            return XOp::Count_;
        }
    }
#define COMPDIFF_X(name, cmp, z)                                       \
    if (a == Op::cmp && b == ((z) ? Op::JmpZ : Op::JmpNZ))             \
        return XOp::name;
    COMPDIFF_XOP_CMPJMP_FUSED_LIST(COMPDIFF_X)
#undef COMPDIFF_X
    return XOp::Count_;
}

bool isBranch(XOp op)
{
    switch (op) {
    case XOp::Jmp:
    case XOp::JmpZ:
    case XOp::JmpNZ:
#define COMPDIFF_X(name, cmp, z) case XOp::name:
        COMPDIFF_XOP_CMPJMP_FUSED_LIST(COMPDIFF_X)
#undef COMPDIFF_X
        return true;
    default:
        return false;
    }
}

DecodedFunction decodeFunction(const Function &fn, bool fuse)
{
    const std::vector<Insn> &code = fn.code;
    const std::size_t n = code.size();

    // Pass A: which original pcs are branch targets? A fused pair
    // must not hide an entry point: if pc t is a target, the decoded
    // stream needs an instruction that *starts* at t.
    std::vector<std::uint8_t> isTarget(n + 1, 0);
    for (const Insn &insn : code) {
        if (insn.op == Op::Jmp || insn.op == Op::JmpZ ||
            insn.op == Op::JmpNZ) {
            const std::int64_t t = insn.a;
            if (t >= 0 && t <= static_cast<std::int64_t>(n))
                isTarget[static_cast<std::size_t>(t)] = 1;
        }
    }

    // Pass B: emit, greedily folding Block markers into their
    // successor and fusing hot pairs. map[origPc] -> decoded index.
    DecodedFunction out;
    out.sourceInsns = n;
    out.code.reserve(n + 1);
    std::vector<std::int32_t> map(n + 1, -1);
    std::size_t i = 0;
    while (i < n) {
        const Insn *cur = &code[i];
        std::int32_t blk = -1;
        std::uint32_t blkLine = 0;
        if (fuse && cur->op == Op::Block && i + 1 < n &&
            !isTarget[i + 1] && code[i + 1].op != Op::Block) {
            blk = cur->a;
            blkLine = cur->line;
            map[i] = static_cast<std::int32_t>(out.code.size());
            i++;
            cur = &code[i];
        }
        XOp fused = XOp::Count_;
        if (fuse && i + 1 < n && !isTarget[i + 1])
            fused = fuseOf(cur->op, code[i + 1].op);
        XInsn x;
        x.blk = blk;
        x.blkLine = blkLine;
        if (fused != XOp::Count_) {
            const Insn &nxt = code[i + 1];
            x.op = fused;
            x.line = nxt.line; // the second insn reports/branches
            if (cur->op == Op::PushI)
                x.imm = cur->imm;
            else if (cur->op == Op::FrameAddr)
                x.a = cur->a; // frame slot offset
            else
                x.a = nxt.a; // original branch target; remapped below
            map[i] = map[i + 1] =
                static_cast<std::int32_t>(out.code.size());
            i += 2;
        } else {
            x.op = static_cast<XOp>(static_cast<std::uint8_t>(cur->op));
            x.a = cur->a;
            x.b = cur->b;
            x.imm = cur->imm;
            x.line = cur->line;
            map[i] = static_cast<std::int32_t>(out.code.size());
            i++;
        }
        out.code.push_back(x);
    }
    const std::int32_t sentinel =
        static_cast<std::int32_t>(out.code.size());
    XInsn end;
    end.op = XOp::TrapEnd;
    out.code.push_back(end);
    map[n] = sentinel;

    // Pass C: rewrite branch targets into decoded indices. Anything
    // outside [0, n] — malformed modules only — lands on the
    // sentinel, turning wild jumps into a deterministic trap.
    for (XInsn &x : out.code) {
        if (!isBranch(x.op))
            continue;
        const std::int64_t t = x.a;
        x.a = (t >= 0 && t <= static_cast<std::int64_t>(n) &&
               map[static_cast<std::size_t>(t)] >= 0)
                  ? map[static_cast<std::size_t>(t)]
                  : sentinel;
    }
    return out;
}

} // namespace

std::shared_ptr<const DecodedProgram> decodeModule(const Module &module,
                                                   DecodeOptions options)
{
    auto decoded = std::make_shared<DecodedProgram>();
    decoded->fused = options.fuse;
    decoded->functions.reserve(module.functions.size());
    for (const Function &fn : module.functions)
        decoded->functions.push_back(decodeFunction(fn, options.fuse));
    return decoded;
}

} // namespace compdiff::bytecode
