#pragma once

/**
 * @file
 * Pre-decoded threaded-code representation of a Module.
 *
 * The Vm's hot loop does not interpret `Insn` streams directly: a
 * one-time decode pass lowers each function into a flat array of
 * 32-byte `XInsn` records that the interpreter can dispatch on with
 * either a computed-goto jump table or a plain switch (see
 * src/vm/interp.inc). Decoding buys three things:
 *
 *  1. **Superinstruction fusion.** The two hottest pairs the MiniC
 *     lowering emits — `PushI` feeding an integer binary op, and an
 *     integer compare feeding a conditional branch — collapse into
 *     single fused opcodes, halving dispatch overhead on arithmetic-
 *     and branch-dense code.
 *  2. **Block folding.** A `Block` coverage marker is folded into its
 *     successor instruction (`XInsn::blk` / `blkLine`), so straight-
 *     line code pays one dispatch per *source* statement, not two.
 *  3. **Deterministic control flow off the end.** Every decoded
 *     function carries a trailing `TrapEnd` sentinel and all branch
 *     targets are remapped (out-of-range targets land on the
 *     sentinel), so a malformed module traps deterministically
 *     instead of indexing past `code.end()`.
 *
 * Fusion never changes observable behavior: a pair is only fused when
 * the second instruction is not a jump target (so every entry point
 * of the original stream still exists in the decoded stream), and the
 * interpreter replicates the original per-instruction budget checks
 * inside fused handlers (see the determinism argument in DESIGN.md
 * §13). Decoding is pure: the same Module always produces the same
 * DecodedProgram.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "bytecode/module.hh"

namespace compdiff::bytecode
{

/**
 * Base opcodes, one per `Op`, in the *same order* (so a non-fused
 * instruction decodes with a plain cast; static_asserts in decode.cc
 * pin the correspondence).
 */
#define COMPDIFF_XOP_BASE_LIST(X)                                      \
    X(Nop) X(Block) X(PushI) X(PushF) X(PushUndef)                     \
    X(Dup) X(Drop) X(Swap) X(Rot3)                                     \
    X(FrameAddr) X(GlobalAddr) X(RodataAddr)                           \
    X(Ld8S) X(Ld8U) X(Ld32S) X(Ld32U) X(Ld64) X(LdF)                   \
    X(St8) X(St32) X(St64) X(StF)                                      \
    X(AddI) X(SubI) X(MulI) X(DivS) X(RemS) X(DivU) X(RemU)            \
    X(Shl) X(ShrS) X(ShrU) X(AndI) X(OrI) X(XorI) X(NegI) X(NotI)      \
    X(Trunc32S) X(Trunc32U) X(Trunc8S) X(Trunc8U)                      \
    X(CmpLtS) X(CmpLeS) X(CmpGtS) X(CmpGeS)                            \
    X(CmpLtU) X(CmpLeU) X(CmpGtU) X(CmpGeU)                            \
    X(CmpEq) X(CmpNe) X(CmpEqZ) X(BoolVal)                             \
    X(AddF) X(SubF) X(MulF) X(DivF) X(NegF)                            \
    X(CmpLtF) X(CmpLeF) X(CmpGtF) X(CmpGeF) X(CmpEqF) X(CmpNeF)        \
    X(I2FS) X(I2FU) X(F2I)                                             \
    X(ShiftNorm32) X(ShiftNorm64)                                      \
    X(Jmp) X(JmpZ) X(JmpNZ) X(Call) X(CallB) X(Ret) X(Halt)            \
    X(ChkOv32) X(ChkDivS) X(ChkShift32) X(ChkShift64) X(ChkNull)

/**
 * Fused `PushI` + integer binary op: `X(name, base)`. The interpreter
 * computes `base(stackTop, imm)` — one pop, one push, one dispatch.
 * Division/remainder are excluded (their trap paths would complicate
 * the mid-pair budget argument for no measurable gain: constant
 * divisors are rare in fuzzed arithmetic).
 */
#define COMPDIFF_XOP_PUSHI_FUSED_LIST(X)                               \
    X(PushIAddI, AddI) X(PushISubI, SubI) X(PushIMulI, MulI)           \
    X(PushIAndI, AndI) X(PushIOrI, OrI) X(PushIXorI, XorI)             \
    X(PushIShl, Shl) X(PushIShrS, ShrS) X(PushIShrU, ShrU)             \
    X(PushICmpLtS, CmpLtS) X(PushICmpLeS, CmpLeS)                      \
    X(PushICmpGtS, CmpGtS) X(PushICmpGeS, CmpGeS)                      \
    X(PushICmpLtU, CmpLtU) X(PushICmpLeU, CmpLeU)                      \
    X(PushICmpGtU, CmpGtU) X(PushICmpGeU, CmpGeU)                      \
    X(PushICmpEq, CmpEq) X(PushICmpNe, CmpNe)

/**
 * Fused integer compare + conditional branch:
 * `X(name, cmpBase, takenWhenZero)`. Float compares are left unfused
 * — MiniC loop conditions are overwhelmingly integral.
 */
#define COMPDIFF_XOP_CMPJMP_FUSED_LIST(X)                              \
    X(CmpLtSJmpZ, CmpLtS, 1) X(CmpLtSJmpNZ, CmpLtS, 0)                 \
    X(CmpLeSJmpZ, CmpLeS, 1) X(CmpLeSJmpNZ, CmpLeS, 0)                 \
    X(CmpGtSJmpZ, CmpGtS, 1) X(CmpGtSJmpNZ, CmpGtS, 0)                 \
    X(CmpGeSJmpZ, CmpGeS, 1) X(CmpGeSJmpNZ, CmpGeS, 0)                 \
    X(CmpLtUJmpZ, CmpLtU, 1) X(CmpLtUJmpNZ, CmpLtU, 0)                 \
    X(CmpLeUJmpZ, CmpLeU, 1) X(CmpLeUJmpNZ, CmpLeU, 0)                 \
    X(CmpGtUJmpZ, CmpGtU, 1) X(CmpGtUJmpNZ, CmpGtU, 0)                 \
    X(CmpGeUJmpZ, CmpGeU, 1) X(CmpGeUJmpNZ, CmpGeU, 0)                 \
    X(CmpEqJmpZ, CmpEq, 1) X(CmpEqJmpNZ, CmpEq, 0)                     \
    X(CmpNeJmpZ, CmpNe, 1) X(CmpNeJmpNZ, CmpNe, 0)

/**
 * Fused `FrameAddr` + load: `X(name, loadBase)` — a local-variable
 * read in one dispatch. The address is fp-relative and never
 * MSan-poisoned, so the pair's only observable effects are the load's
 * own (ASan check, poison propagation of the loaded value).
 */
#define COMPDIFF_XOP_FRAMELD_FUSED_LIST(X)                             \
    X(FrameAddrLd8S, Ld8S) X(FrameAddrLd8U, Ld8U)                      \
    X(FrameAddrLd32S, Ld32S) X(FrameAddrLd32U, Ld32U)                  \
    X(FrameAddrLd64, Ld64) X(FrameAddrLdF, LdF)

/** Decoded opcode space: base ops, fused ops, and the sentinel. */
enum class XOp : std::uint8_t
{
#define COMPDIFF_X(name) name,
    COMPDIFF_XOP_BASE_LIST(COMPDIFF_X)
#undef COMPDIFF_X
#define COMPDIFF_X(name, base) name,
        COMPDIFF_XOP_PUSHI_FUSED_LIST(COMPDIFF_X)
#undef COMPDIFF_X
#define COMPDIFF_X(name, base, z) name,
            COMPDIFF_XOP_CMPJMP_FUSED_LIST(COMPDIFF_X)
#undef COMPDIFF_X
#define COMPDIFF_X(name, base) name,
                COMPDIFF_XOP_FRAMELD_FUSED_LIST(COMPDIFF_X)
#undef COMPDIFF_X
    /** Trailing sentinel: deterministic trap on pc overrun. */
    TrapEnd,
    Count_, ///< number of decoded opcodes (jump-table size)
};

/** Human-readable decoded-opcode mnemonic (tests, disassembly). */
const char *xopName(XOp op);

/**
 * One decoded instruction. 32 bytes, so two fit per cache line and
 * the dispatch loop's next-instruction prefetch is cheap.
 */
struct XInsn
{
    XOp op = XOp::Nop;
    std::int32_t a = 0;      ///< offset / id / decoded branch target
    std::int32_t b = 0;      ///< argc and other secondary operands
    /** Folded Block id (-1 = no Block folded into this insn). */
    std::int32_t blk = -1;
    std::uint32_t line = 0;  ///< source line, for sanitizer reports
    std::uint32_t blkLine = 0; ///< source line of the folded Block
    std::int64_t imm = 0;    ///< constant or double bits
};
static_assert(sizeof(XInsn) == 32, "XInsn must stay two-per-line");

/** One decoded function body (parallel to Module::functions). */
struct DecodedFunction
{
    /** Decoded stream; always ends with a TrapEnd sentinel. */
    std::vector<XInsn> code;
    /** Source instructions represented (fusion/folding folded in). */
    std::size_t sourceInsns = 0;
};

/** The decoded image of one Module. */
struct DecodedProgram
{
    std::vector<DecodedFunction> functions;
    bool fused = false; ///< decoded with superinstruction fusion?
};

/** Decode knobs (the identity tests decode both ways). */
struct DecodeOptions
{
    /** Enable superinstruction fusion and Block folding. */
    bool fuse = true;
};

/**
 * Lower a module into threaded-code form. Pure and deterministic;
 * called once per compiled module (compiler::Compiler attaches the
 * result to Module::decoded) or lazily by a Vm bound to a hand-built
 * module.
 */
std::shared_ptr<const DecodedProgram>
decodeModule(const Module &module, DecodeOptions options = {});

} // namespace compdiff::bytecode
