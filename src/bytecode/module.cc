#include "bytecode/module.hh"

#include <sstream>

namespace compdiff::bytecode
{

const Function *
Module::findFunction(const std::string &name) const
{
    for (const auto &f : functions)
        if (f.name == name)
            return &f;
    return nullptr;
}

std::size_t
Module::codeSize() const
{
    std::size_t total = 0;
    for (const auto &f : functions)
        total += f.code.size();
    return total;
}

std::string
Module::disassemble() const
{
    std::ostringstream os;
    for (const auto &f : functions) {
        os << "func " << f.name << " (index " << f.index
           << ", params " << f.numParams << ", frame " << f.frameSize
           << ")\n";
        for (std::size_t pc = 0; pc < f.code.size(); pc++)
            os << "  " << pc << ": " << f.code[pc].str() << "\n";
    }
    if (!globals.empty()) {
        os << "globals (segment size " << globalsSegmentSize << ")\n";
        for (const auto &g : globals) {
            os << "  " << g.name << " @" << g.segmentOffset
               << " size " << g.size << "\n";
        }
    }
    return os.str();
}

} // namespace compdiff::bytecode
