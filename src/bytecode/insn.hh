#pragma once

/**
 * @file
 * The CompDiff bytecode instruction set.
 *
 * MiniC functions are lowered to a compact stack bytecode. The
 * instruction stream already reflects every *codegen-level* choice of
 * the simulated compiler implementation that produced it (argument
 * evaluation order, frame layout offsets, UB-exploiting rewrites,
 * widened arithmetic, sanitizer checks), while *runtime-level* traits
 * (memory fill patterns, segment bases, heap policy) are applied by
 * the VM from the same CompilerConfig. A (module, config) pair is
 * therefore the analog of a concrete binary.
 *
 * Value model: a 64-bit evaluation stack. Narrow integer results are
 * normalized with explicit truncation instructions, which is exactly
 * the knob the UB-exploiting optimizations turn (removing a Trunc32S
 * after a multiply is the "compute in 64 bits" transform clang applies
 * to `long = int * int`).
 */

#include <cstdint>
#include <string>

namespace compdiff::bytecode
{

/** Opcodes. */
enum class Op : std::uint8_t
{
    Nop,

    /**
     * Basic-block entry marker; `a` carries the AFL-style 16-bit
     * hashed block id used by coverage-instrumented executions.
     */
    Block,

    PushI,     ///< push imm (64-bit integer)
    PushF,     ///< push bit_cast<double> imm
    PushUndef, ///< push the configuration's "indeterminate" word

    Dup,  ///< (x) -> (x x)
    Drop, ///< (x) -> ()
    Swap, ///< (x y) -> (y x)
    Rot3, ///< (x y z) -> (z x y)

    FrameAddr,  ///< push fp + a
    GlobalAddr, ///< push address of global #a
    RodataAddr, ///< push rodataBase + a

    Ld8S,  ///< pop addr, push sign-extended byte
    Ld8U,  ///< pop addr, push zero-extended byte
    Ld32S, ///< pop addr, push sign-extended 32-bit word
    Ld32U, ///< pop addr, push zero-extended 32-bit word
    Ld64,  ///< pop addr, push 64-bit word
    LdF,   ///< pop addr, push 64-bit float bits

    St8,  ///< pop value, pop addr, store low byte
    St32, ///< pop value, pop addr, store low 32 bits
    St64, ///< pop value, pop addr, store 64 bits
    StF,  ///< pop value, pop addr, store float bits

    AddI, SubI, MulI,
    DivS, RemS, ///< signed divide/remainder; traps on zero divisor
    DivU, RemU,
    Shl,   ///< shift left; semantics of oversized counts are per-config
    ShrS, ShrU,
    AndI, OrI, XorI,
    NegI, NotI,

    Trunc32S, ///< sign-extend the low 32 bits
    Trunc32U, ///< zero-extend the low 32 bits
    Trunc8S,  ///< sign-extend the low 8 bits
    Trunc8U,  ///< zero-extend the low 8 bits

    CmpLtS, CmpLeS, CmpGtS, CmpGeS,
    CmpLtU, CmpLeU, CmpGtU, CmpGeU,
    CmpEq, CmpNe,
    CmpEqZ,   ///< logical not: push (x == 0)
    BoolVal,  ///< push (x != 0)

    AddF, SubF, MulF, DivF, NegF,
    CmpLtF, CmpLeF, CmpGtF, CmpGeF, CmpEqF, CmpNeF,

    I2FS, ///< signed int -> double
    I2FU, ///< unsigned int -> double
    F2I,  ///< double -> int64 (C truncation)

    /**
     * 32-bit shift-count check / normalization; `a` selects the
     * configuration family behavior: 0 = x86-style masking (count &
     * 31), 1 = fold oversized shifts to a zero result.
     */
    ShiftNorm32,
    ShiftNorm64, ///< same for 64-bit shifts (mask 63 / zero)

    Jmp,  ///< jump to pc = a
    JmpZ, ///< pop cond; jump to pc = a when cond == 0
    JmpNZ,

    /**
     * Call user function #a with b arguments. imm != 0 means the
     * arguments were *evaluated and pushed* right-to-left.
     */
    Call,
    /** Call builtin #a with b arguments; imm as in Call. */
    CallB,

    Ret,  ///< return; a != 0 means a return value is on the stack
    Halt, ///< normal end of main

    // --- Sanitizer checks (emitted only for sanitizer builds) ---
    ChkOv32,   ///< UBSan: top of stack not representable in int32
    ChkDivS,   ///< UBSan: (x y) divisor zero or INT_MIN/-1; a=width
    ChkShift32,///< UBSan: (x count) count out of [0,31]
    ChkShift64,///< UBSan: (x count) count out of [0,63]
    ChkNull,   ///< UBSan: top of stack is a null-page pointer
};

/** Human-readable opcode mnemonic. */
const char *opName(Op op);

/** One decoded instruction. */
struct Insn
{
    Op op = Op::Nop;
    std::int32_t a = 0;      ///< offset / id / target / flag
    std::int32_t b = 0;      ///< argc and other secondary operands
    std::int64_t imm = 0;    ///< constant or double bits
    std::uint32_t line = 0;  ///< source line, for sanitizer reports

    std::string str() const;
};

/** Bit-cast helpers for PushF immediates. */
std::int64_t doubleToBits(double value);
double bitsToDouble(std::int64_t bits);

} // namespace compdiff::bytecode
