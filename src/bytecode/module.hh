#pragma once

/**
 * @file
 * Compiled-module containers: functions, global layout, rodata.
 *
 * A Module together with the CompilerConfig that produced it plays the
 * role of one concrete binary in the paper's workflow.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bytecode/insn.hh"

namespace compdiff::bytecode
{

struct DecodedProgram; // bytecode/decode.hh

/** Frame-slot descriptor (one local variable or parameter). */
struct FrameSlot
{
    std::int32_t offset = 0;  ///< byte offset within the frame
    std::uint32_t size = 0;   ///< object size in bytes
    int localId = -1;         ///< frontend local id
    bool isParam = false;
    std::string name;
};

/** One compiled function. */
struct Function
{
    std::string name;
    int index = -1;
    std::uint32_t numParams = 0;
    std::uint32_t frameSize = 0; ///< bytes, 16-byte aligned
    bool returnsValue = false;

    /** Slots, indexed by frontend localId. */
    std::vector<FrameSlot> slots;

    /**
     * Byte offsets of the parameter slots in parameter order
     * (subset of `slots`, kept separately for the call sequence).
     */
    std::vector<std::int32_t> paramOffsets;

    /** Parameter value width in bytes (1, 4, or 8) per parameter. */
    std::vector<std::uint8_t> paramSizes;

    std::vector<Insn> code;
};

/** Placement and initialization record for one global variable. */
struct GlobalLayout
{
    std::string name;
    int globalId = -1;
    std::uint64_t size = 0;
    std::uint64_t align = 8;

    /**
     * Byte offset of this global inside the globals segment. Assigned
     * by the backend: the *ordering* of globals is a configuration
     * trait, which is what makes out-of-bounds effects and
     * cross-object pointer comparisons diverge across binaries.
     */
    std::uint64_t segmentOffset = 0;

    /** Initializer classification. */
    enum class Init
    {
        Zero,    ///< zero-filled
        Word,    ///< integer/double constant in initWord
        Rodata,  ///< pointer to rodata at offset initWord
    };
    Init init = Init::Zero;
    std::int64_t initWord = 0;
    std::uint8_t valueSize = 8; ///< width of the Word initializer
};

/**
 * A compiled program image, independent of run-time state.
 */
struct Module
{
    std::vector<Function> functions;
    std::vector<GlobalLayout> globals;
    /** Concatenated string literals (each NUL-terminated). */
    std::vector<std::uint8_t> rodata;
    std::uint64_t globalsSegmentSize = 0;
    int mainIndex = -1;

    /**
     * Threaded-code image of this module (bytecode/decode.hh), built
     * once at compile time so every Vm bound to the module — across
     * the whole k-way oracle, all jobs, all batch runs — shares one
     * decoded copy. Null for hand-assembled modules; the Vm decodes
     * those lazily on first bind.
     */
    std::shared_ptr<const DecodedProgram> decoded;

    /** Find a function by name; nullptr when absent. */
    const Function *findFunction(const std::string &name) const;

    /** Total instruction count across all functions. */
    std::size_t codeSize() const;

    /** Disassemble the whole module (for tests and debugging). */
    std::string disassemble() const;
};

} // namespace compdiff::bytecode
