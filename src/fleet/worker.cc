#include "fleet/fleet.hh"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "session/lease.hh"

namespace compdiff::fleet
{

namespace
{

/** SIGTERM target: the session stop flag a worker polls at safe
 *  points. File-scope because signal handlers take no closure. */
std::atomic<bool> g_stop{false};

void onTerminate(int) { g_stop.store(true); }

double nowUnix()
{
    const auto now = std::chrono::system_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch())
        .count();
}

} // namespace

std::vector<std::string> workerArgs(const WorkerSpec &spec)
{
    std::string shards;
    for (const std::size_t shard : spec.shards)
    {
        if (!shards.empty())
            shards += ',';
        shards += std::to_string(shard);
    }
    return {"--worker-shards=" + shards,
            "--worker-index=" + std::to_string(spec.worker),
            "--worker-generation=" + std::to_string(spec.generation)};
}

std::vector<std::size_t> parseShardList(const std::string &text)
{
    std::vector<std::size_t> shards;
    std::size_t start = 0;
    while (start <= text.size())
    {
        std::size_t end = text.find(',', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string item = text.substr(start, end - start);
        if (!item.empty())
            shards.push_back(static_cast<std::size_t>(
                std::strtoull(item.c_str(), nullptr, 10)));
        start = end + 1;
    }
    return shards;
}

bool parseWorkerArg(const std::string &arg, WorkerSpec *spec)
{
    const auto value = [&arg](const char *prefix,
                              std::string *out) -> bool {
        const std::string_view p(prefix);
        if (arg.compare(0, p.size(), p) != 0)
            return false;
        *out = arg.substr(p.size());
        return true;
    };
    std::string text;
    if (value("--worker-shards=", &text))
    {
        spec->shards = parseShardList(text);
        return true;
    }
    if (value("--worker-index=", &text))
    {
        spec->worker = static_cast<std::size_t>(
            std::strtoull(text.c_str(), nullptr, 10));
        return true;
    }
    if (value("--worker-generation=", &text))
    {
        spec->generation =
            std::strtoull(text.c_str(), nullptr, 10);
        return true;
    }
    return false;
}

int runWorker(const minic::Program &program,
              const std::vector<support::Bytes> &seeds,
              session::SessionConfig config, const WorkerSpec &spec)
{
    if (config.dir.empty())
    {
        std::fprintf(stderr,
                     "fleet worker: a session directory is "
                     "required\n");
        return kWorkerExitConfig;
    }
    if (spec.shards.empty())
    {
        std::fprintf(stderr,
                     "fleet worker: no shards assigned "
                     "(--worker-shards)\n");
        return kWorkerExitConfig;
    }

    const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());

    // Own every assigned shard before fuzzing any of them: a partial
    // assignment would desync the coordinator's chunk bookkeeping.
    std::vector<std::size_t> held;
    for (const std::size_t shard : spec.shards)
    {
        session::ShardLease lease;
        lease.shard = shard;
        lease.worker = spec.worker;
        lease.pid = pid;
        lease.generation = spec.generation;
        lease.acquiredUnix = nowUnix();
        session::ShardLease holder;
        const auto outcome =
            session::acquireShardLease(config.dir, lease, &holder);
        if (outcome == session::LeaseOutcome::Acquired)
        {
            held.push_back(shard);
            continue;
        }
        for (const std::size_t taken : held)
            session::releaseShardLease(config.dir, taken, pid);
        if (outcome == session::LeaseOutcome::Held)
        {
            std::fprintf(stderr,
                         "fleet worker %zu: shard %zu is leased by "
                         "live pid %llu; yielding\n",
                         spec.worker, shard,
                         static_cast<unsigned long long>(holder.pid));
            return kWorkerExitLeaseHeld;
        }
        std::fprintf(stderr,
                     "fleet worker %zu: cannot create lease for "
                     "shard %zu: %s\n",
                     spec.worker, shard, std::strerror(errno));
        return kWorkerExitConfig;
    }

    g_stop.store(false);
    std::signal(SIGTERM, onTerminate);

    config.resume = false;
    config.workerShards = spec.shards;
    config.stopFlag = &g_stop;

    const std::string dir = config.dir;
    int code = kWorkerExitOk;
    try
    {
        session::CampaignSession session(program, seeds,
                                         std::move(config));
        session.run();
    }
    catch (const session::SessionError &error)
    {
        std::fprintf(stderr, "fleet worker %zu: %s\n", spec.worker,
                     error.what());
        code = kWorkerExitConfig;
    }

    for (const std::size_t taken : held)
        session::releaseShardLease(dir, taken, pid);
    std::signal(SIGTERM, SIG_DFL);
    return code;
}

} // namespace compdiff::fleet
