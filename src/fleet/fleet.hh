#pragma once

/**
 * @file
 * Fleet mode: a multi-process campaign coordinator with
 * crash-revival (the AFL++ -M/-S model, as a supervising service).
 *
 * A fleet runs one deterministic sharded campaign across N worker
 * *processes*. The split of responsibilities:
 *
 *   coordinator (runFleet, in the `compdiff_fleet` binary)
 *     - initializes the session directory (MANIFEST + empty shard
 *       journals) so workers can attach
 *     - chunks unowned, incomplete shards across free worker slots
 *       and fork/execs one worker per chunk (`--worker` re-entry
 *       into the same binary)
 *     - supervises: reaps exits, SIGKILLs hung workers (heartbeat
 *       aged out), breaks dead holders' shard leases, and respawns —
 *       a revived worker restores its shards from their checkpoint
 *       journals and continues bit-exactly
 *     - optionally rewrites `sync.journal` (merged VirginMap +
 *       deduped corpus) on a cadence for cross-worker import, and
 *       streams an aggregated live view via compdiff_monitorlib
 *     - enforces the campaign exec budget (shards complete when
 *       their journals reach their budget) and a wall-clock deadline
 *       (SIGTERM → workers checkpoint and exit; rerun to continue)
 *     - finalizes: an in-process resume restores every shard's final
 *       checkpoint and writes the fused artifacts (fuzzer_stats,
 *       plot_data, divergences.journal, triage bundles) — which is
 *       why a finished fleet campaign is byte-identical to a
 *       single-process run of the same campaign
 *
 *   worker (runWorker, the `--worker` entry point)
 *     - acquires one lease per assigned shard (session/lease.hh);
 *       a live competing holder means "yield" (exit
 *       kWorkerExitLeaseHeld), never a second fuzzer on the shard
 *     - runs a CampaignSession in workerShards mode: attach to the
 *       coordinator's directory, restore-or-start each owned shard,
 *       checkpoint/heartbeat as every session does
 *     - wires SIGTERM to the session stop flag: a deadline shutdown
 *       is a checkpointed halt, not lost work
 *
 * Everything result-defining flows through the session/journal
 * discipline, so kill -9 any worker at any time: the finished
 * campaign's fuzzer_stats, divergence journals, and bug bundles are
 * byte-identical to an uninterrupted run (tests/test_fleet.cc, and
 * the CI fleet-smoke job). The one opt-out is corpus sync
 * (`FleetOptions::syncSecs` > 0): import timing is wall-clock, so a
 * synced fleet trades the bit-identity guarantee for cross-worker
 * coverage sharing — off by default.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/sharded.hh"
#include "minic/ast.hh"
#include "obs/stats.hh"
#include "reduce/report.hh"
#include "session/session.hh"

namespace compdiff::fleet
{

/** Worker process exit codes (the coordinator's protocol). */
constexpr int kWorkerExitOk = 0;        ///< completed or halted
constexpr int kWorkerExitConfig = 2;    ///< bad config / session error
constexpr int kWorkerExitLeaseHeld = 3; ///< shard owned by a live pid

/** One worker's assignment, as passed on its command line. */
struct WorkerSpec
{
    /** Global shard ids, strictly increasing. */
    std::vector<std::size_t> shards;
    /** Fleet-local worker index (display/debug). */
    std::size_t worker = 0;
    /** Coordinator spawn generation (revivals increment it). */
    std::uint64_t generation = 0;
};

/**
 * The extra argv a coordinator appends to its worker command:
 * `--worker-shards=...`, `--worker-index=...`,
 * `--worker-generation=...` (the `--worker` mode switch itself is
 * part of FleetOptions::workerCommand).
 */
std::vector<std::string> workerArgs(const WorkerSpec &spec);

/**
 * Parse one worker extra arg into `spec`; returns true when the arg
 * was consumed. The binary's flag loop calls this so the coordinator
 * and worker sides of the protocol live in this one file.
 */
bool parseWorkerArg(const std::string &arg, WorkerSpec *spec);

/** Parse a comma-separated shard list ("0,2,5"). */
std::vector<std::size_t> parseShardList(const std::string &text);

/**
 * The `--worker` entry point: acquire shard leases, run the
 * CampaignSession over `spec.shards` in worker mode, release the
 * leases. Returns a kWorkerExit* code; never throws.
 */
int runWorker(const minic::Program &program,
              const std::vector<support::Bytes> &seeds,
              session::SessionConfig config, const WorkerSpec &spec);

/** Coordinator knobs. */
struct FleetOptions
{
    /** Worker process slots (elastic: raise it on a later run of the
     *  same session and the extra workers pick up unassigned
     *  shards). */
    std::size_t workers = 2;
    /**
     * argv prefix for spawning a worker: the fleet binary plus every
     * campaign flag, ending with `--worker`. runFleet appends
     * workerArgs() per spawn.
     */
    std::vector<std::string> workerCommand;
    /** Supervision poll interval. */
    double pollSecs = 0.2;
    /** Campaign wall-clock deadline in seconds (0 = none). On
     *  expiry workers get SIGTERM, checkpoint, and exit; the
     *  returned result has completed=false and the session resumes
     *  with a later run. */
    double deadlineSecs = 0;
    /** Live aggregated view (compdiff_monitorlib table) cadence in
     *  seconds (0 = off). */
    double statusSecs = 0;
    /** Cross-worker corpus/VirginMap sync cadence in seconds
     *  (0 = off, the default — sync is wall-clock driven and
     *  forfeits bit-identity; see the file comment). */
    double syncSecs = 0;
    /** A worker whose incomplete shards' heartbeats are all older
     *  than this is presumed hung and SIGKILLed (then revived). */
    double deadAfterSecs = 30.0;
    /** Hard cap on spawns per shard — a crash-looping shard aborts
     *  the fleet instead of burning forever. */
    std::size_t maxSpawnsPerShard = 64;
};

/** What a fleet run produced. */
struct FleetResult
{
    /** Every shard reached its budget and the finalize pass ran. */
    bool completed = false;
    std::size_t spawns = 0;
    /** Spawns that re-assigned a previously-spawned shard (dead or
     *  hung worker revival, or a resumed session). */
    std::size_t revivals = 0;
    /** Workers that exited kWorkerExitLeaseHeld. */
    std::size_t leaseConflicts = 0;
    /** Folded campaign outcome (valid when completed). */
    fuzz::ShardedResult result;
    /** Merged final snapshot (valid when completed). */
    obs::FuzzerStatsSnapshot stats;
    /** Triage reports (when config.triage.reduceFound). */
    std::vector<reduce::DivergenceReport> reports;
};

/**
 * Run the whole fleet: initialize, spawn, supervise, revive,
 * finalize. `config.workerShards` is ignored (the coordinator owns
 * the full campaign); `config.dir` is required.
 *
 * @throws session::SessionError on an unusable configuration or a
 *         shard that keeps crash-looping past maxSpawnsPerShard.
 */
FleetResult runFleet(const minic::Program &program,
                     const std::vector<support::Bytes> &seeds,
                     session::SessionConfig config,
                     const FleetOptions &options);

/**
 * Chunk `pending` shards across up to `slots` workers: disjoint,
 * order-preserving, sizes within one of each other, no empty chunks.
 */
std::vector<std::vector<std::size_t>>
chunkShards(const std::vector<std::size_t> &pending,
            std::size_t slots);

} // namespace compdiff::fleet
