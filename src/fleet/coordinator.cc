#include "fleet/fleet.hh"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "monitor/monitor.hh"
#include "obs/events.hh"
#include "session/checkpoint.hh"
#include "session/heartbeat.hh"
#include "session/lease.hh"
#include "session/serial.hh"
#include "support/hash.hh"
#include "vm/coverage.hh"

namespace compdiff::fleet
{

namespace
{

using Clock = std::chrono::steady_clock;

double secsSince(Clock::time_point from)
{
    return std::chrono::duration<double>(Clock::now() - from)
        .count();
}

double nowUnix()
{
    const auto now = std::chrono::system_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch())
        .count();
}

/** One live worker process under supervision. */
struct Child
{
    pid_t pid = -1;
    std::size_t worker = 0;
    std::uint64_t generation = 0;
    std::vector<std::size_t> shards;
    Clock::time_point spawnedAt;
};

/** The coordinator's process-history log (`fleet.jsonl` in the
 *  session dir; session event-line format, ops-log semantics —
 *  append-only, deliberately not replay-invariant). */
void fleetEvent(const std::string &dir, obs::CampaignEvent event)
{
    obs::appendEventLines(dir + "/fleet.jsonl", {std::move(event)});
}

std::string joinShards(const std::vector<std::size_t> &shards)
{
    std::string text;
    for (const std::size_t shard : shards)
    {
        if (!text.empty())
            text += ',';
        text += std::to_string(shard);
    }
    return text;
}

/** Last checkpointed execution count of a shard (0 when the journal
 *  is empty, missing, or torn — all read as "no saved progress"). */
std::uint64_t checkpointedExecs(const std::string &dir,
                                std::size_t shard)
{
    const std::string path =
        dir + "/shard-" + std::to_string(shard) + ".journal";
    try
    {
        const auto payload = session::readLastRecord(path);
        if (!payload)
            return 0;
        return session::decodeFuzzerState(*payload).stats.execs;
    }
    catch (const session::SessionError &)
    {
        return 0;
    }
}

pid_t spawnWorker(const std::vector<std::string> &command,
                  const WorkerSpec &spec)
{
    std::vector<std::string> argvOwned = command;
    for (auto &extra : workerArgs(spec))
        argvOwned.push_back(std::move(extra));
    std::vector<char *> argv;
    argv.reserve(argvOwned.size() + 1);
    for (auto &arg : argvOwned)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid == 0)
    {
        ::execv(argv[0], argv.data());
        std::fprintf(stderr, "fleet: cannot exec %s\n", argv[0]);
        _exit(127);
    }
    return pid;
}

/**
 * Rewrite `<dir>/sync.journal` from every shard's last checkpoint:
 * record 0 is the merged VirginMap snapshot, records 1.. the
 * hash-deduplicated union of the corpora (hash order, so the file is
 * a pure function of the checkpoints it was built from).
 */
void writeSyncJournal(const std::string &dir, std::size_t shards)
{
    vm::VirginMap merged;
    std::map<std::uint64_t, support::Bytes> inputs;
    bool anyMap = false;
    for (std::size_t shard = 0; shard < shards; shard++)
    {
        const std::string path =
            dir + "/shard-" + std::to_string(shard) + ".journal";
        try
        {
            const auto payload = session::readLastRecord(path);
            if (!payload)
                continue;
            const auto state =
                session::decodeFuzzerState(*payload);
            vm::VirginMap shardMap;
            if (shardMap.restoreBytes(state.virginMap))
            {
                merged.merge(shardMap);
                anyMap = true;
            }
            for (const auto &seed : state.corpus)
                inputs.emplace(
                    support::murmurHash64(seed.data), seed.data);
        }
        catch (const session::SessionError &)
        {
            // A torn or mid-compaction journal just skips a round.
        }
    }
    if (!anyMap && inputs.empty())
        return;

    std::vector<support::Bytes> records;
    records.reserve(inputs.size() + 1);
    records.push_back(merged.snapshotBytes());
    for (const auto &[hash, data] : inputs)
    {
        (void)hash;
        records.push_back(data);
    }
    try
    {
        session::writeJournal(dir + "/sync.journal", records);
    }
    catch (const session::SessionError &)
    {
        // Sync is best-effort telemetry-grade traffic; drop a round.
    }
}

} // namespace

std::vector<std::vector<std::size_t>>
chunkShards(const std::vector<std::size_t> &pending,
            std::size_t slots)
{
    std::vector<std::vector<std::size_t>> chunks;
    slots = std::min(slots, pending.size());
    if (slots == 0)
        return chunks;
    const std::size_t base = pending.size() / slots;
    const std::size_t extra = pending.size() % slots;
    std::size_t index = 0;
    for (std::size_t slot = 0; slot < slots; slot++)
    {
        const std::size_t take = base + (slot < extra ? 1 : 0);
        chunks.emplace_back(pending.begin() + index,
                            pending.begin() + index + take);
        index += take;
    }
    return chunks;
}

FleetResult runFleet(const minic::Program &program,
                     const std::vector<support::Bytes> &seeds,
                     session::SessionConfig config,
                     const FleetOptions &options)
{
    if (config.dir.empty())
        throw session::SessionError(
            "fleet mode requires a session directory");
    if (options.workers == 0)
        throw session::SessionError(
            "fleet mode requires at least one worker slot");
    if (options.workerCommand.empty())
        throw session::SessionError(
            "fleet mode requires a worker command");

    config.workerShards.clear();
    config.stopFlag = nullptr;

    // Initialize (or validate) the session directory so workers can
    // attach; idempotent across coordinator restarts.
    {
        session::SessionConfig boot = config;
        boot.resume = false;
        session::CampaignSession session(program, seeds, boot);
        session.initializeDir();
    }

    const auto plans = fuzz::planShards(
        config.fuzz, seeds, std::max<std::size_t>(config.shards, 1));
    const std::size_t shardCount = plans.size();
    std::vector<std::uint64_t> budgets(shardCount, 0);
    for (std::size_t shard = 0; shard < shardCount; shard++)
        budgets[shard] = plans[shard].options.maxExecs;

    FleetResult out;
    std::vector<Child> live;
    std::vector<std::size_t> spawnsPerShard(shardCount, 0);
    std::vector<bool> done(shardCount, false);
    std::size_t nextWorker = 0;
    std::uint64_t generation = 0;
    const auto start = Clock::now();
    auto lastSync = start;
    auto lastStatus = start;

    {
        obs::CampaignEvent event("fleet_open", 0);
        event.num("pid", static_cast<std::uint64_t>(::getpid()))
            .num("workers", options.workers)
            .num("shards", shardCount);
        fleetEvent(config.dir, std::move(event));
    }

    // True when every shard's journal has reached its budget.
    const auto refreshDone = [&]() -> bool {
        bool all = true;
        for (std::size_t shard = 0; shard < shardCount; shard++)
        {
            if (done[shard])
                continue;
            if (checkpointedExecs(config.dir, shard) >=
                budgets[shard])
                done[shard] = true;
            else
                all = false;
        }
        return all;
    };

    // Reap exited children; `block` waits for each in turn.
    const auto reap = [&](bool block) {
        for (std::size_t i = 0; i < live.size();)
        {
            int status = 0;
            const pid_t got = ::waitpid(live[i].pid, &status,
                                        block ? 0 : WNOHANG);
            if (got <= 0)
            {
                i++;
                continue;
            }
            const bool signaled = WIFSIGNALED(status);
            const int code =
                WIFEXITED(status) ? WEXITSTATUS(status) : -1;
            if (code == kWorkerExitLeaseHeld)
                out.leaseConflicts++;
            obs::CampaignEvent event(signaled ? "fleet_dead"
                                              : "fleet_exit",
                                     0);
            event
                .num("pid",
                     static_cast<std::uint64_t>(live[i].pid))
                .num("worker", live[i].worker)
                .text("shards", joinShards(live[i].shards));
            if (signaled)
                event.num("signal",
                          static_cast<std::uint64_t>(
                              WTERMSIG(status)));
            else
                event.num("code",
                          static_cast<std::uint64_t>(code));
            fleetEvent(config.dir, std::move(event));
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        }
    };

    // Terminate every child (TERM, grace period, then KILL) and reap.
    const auto shutdownChildren = [&](double graceSecs) {
        for (const Child &child : live)
            ::kill(child.pid, SIGTERM);
        const auto began = Clock::now();
        while (!live.empty())
        {
            reap(false);
            if (live.empty())
                break;
            if (secsSince(began) > graceSecs)
            {
                for (const Child &child : live)
                    ::kill(child.pid, SIGKILL);
                reap(true);
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    };

    try
    {
        while (!refreshDone())
        {
            if (options.deadlineSecs > 0 &&
                secsSince(start) >= options.deadlineSecs)
            {
                obs::CampaignEvent event("fleet_deadline", 0);
                event.num("spawns", out.spawns)
                    .num("revivals", out.revivals);
                fleetEvent(config.dir, std::move(event));
                shutdownChildren(30.0);
                out.completed = false;
                return out;
            }

            reap(false);

            // Hung workers: every incomplete shard's heartbeat has
            // aged out (and the worker has had time to write one).
            if (options.deadAfterSecs > 0)
            {
                const double now = nowUnix();
                for (std::size_t i = 0; i < live.size();)
                {
                    const Child &child = live[i];
                    if (secsSince(child.spawnedAt) <=
                        options.deadAfterSecs)
                    {
                        i++;
                        continue;
                    }
                    bool anyIncomplete = false;
                    bool anyFresh = false;
                    for (const std::size_t shard : child.shards)
                    {
                        if (done[shard])
                            continue;
                        anyIncomplete = true;
                        const auto text = session::readTextFile(
                            session::heartbeatPath(config.dir,
                                                   shard));
                        if (!text)
                            continue;
                        const auto beat =
                            session::parseHeartbeat(*text);
                        if (now - beat.unixTime <=
                            options.deadAfterSecs)
                            anyFresh = true;
                    }
                    if (!anyIncomplete || anyFresh)
                    {
                        i++;
                        continue;
                    }
                    obs::CampaignEvent event("fleet_hung", 0);
                    event
                        .num("pid", static_cast<std::uint64_t>(
                                        child.pid))
                        .num("worker", child.worker)
                        .text("shards", joinShards(child.shards));
                    fleetEvent(config.dir, std::move(event));
                    ::kill(child.pid, SIGKILL);
                    int status = 0;
                    ::waitpid(child.pid, &status, 0);
                    live.erase(live.begin() +
                               static_cast<std::ptrdiff_t>(i));
                }
            }

            // Shards owned by a live child of ours.
            std::set<std::size_t> owned;
            for (const Child &child : live)
                for (const std::size_t shard : child.shards)
                    if (!done[shard])
                        owned.insert(shard);

            // Pending: incomplete, unowned, and not leased by a live
            // external worker (an elastic co-coordinator's child). A
            // dead holder's lease is broken here — the revival path.
            std::vector<std::size_t> pending;
            for (std::size_t shard = 0; shard < shardCount; shard++)
            {
                if (done[shard] || owned.count(shard))
                    continue;
                if (const auto lease =
                        session::readShardLease(config.dir, shard))
                {
                    if (lease->pid != 0 &&
                        session::pidAlive(lease->pid))
                        continue;
                    session::breakShardLease(config.dir, shard);
                }
                pending.push_back(shard);
            }

            if (!pending.empty() && live.size() < options.workers)
            {
                const auto chunks = chunkShards(
                    pending, options.workers - live.size());
                for (const auto &chunk : chunks)
                {
                    bool revival = false;
                    for (const std::size_t shard : chunk)
                    {
                        if (spawnsPerShard[shard] > 0)
                            revival = true;
                        if (++spawnsPerShard[shard] >
                            options.maxSpawnsPerShard)
                            throw session::SessionError(
                                "fleet: shard " +
                                std::to_string(shard) +
                                " keeps crash-looping; giving up");
                    }
                    WorkerSpec spec;
                    spec.shards = chunk;
                    spec.worker = nextWorker++;
                    spec.generation = generation++;
                    const pid_t pid =
                        spawnWorker(options.workerCommand, spec);
                    if (pid < 0)
                        throw session::SessionError(
                            "fleet: fork failed");
                    out.spawns++;
                    if (revival)
                        out.revivals++;
                    obs::CampaignEvent event(
                        revival ? "fleet_revive" : "fleet_spawn",
                        0);
                    event
                        .num("pid",
                             static_cast<std::uint64_t>(pid))
                        .num("worker", spec.worker)
                        .num("generation", spec.generation)
                        .text("shards", joinShards(chunk));
                    fleetEvent(config.dir, std::move(event));
                    Child child;
                    child.pid = pid;
                    child.worker = spec.worker;
                    child.generation = spec.generation;
                    child.shards = chunk;
                    child.spawnedAt = Clock::now();
                    live.push_back(std::move(child));
                }
            }

            if (options.syncSecs > 0 &&
                secsSince(lastSync) >= options.syncSecs)
            {
                lastSync = Clock::now();
                writeSyncJournal(config.dir, shardCount);
                obs::CampaignEvent event("fleet_sync", 0);
                event.num("shards", shardCount);
                fleetEvent(config.dir, std::move(event));
            }

            if (options.statusSecs > 0 &&
                secsSince(lastStatus) >= options.statusSecs)
            {
                lastStatus = Clock::now();
                monitor::MonitorOptions view;
                view.health.deadAfterSecs = options.deadAfterSecs;
                const auto sessions =
                    monitor::scanTree(config.dir, view);
                std::fputs(
                    monitor::renderTable(sessions, view).c_str(),
                    stdout);
                std::fflush(stdout);
            }

            std::this_thread::sleep_for(std::chrono::duration<double>(
                std::max(options.pollSecs, 0.01)));
        }

        // Every shard reached its budget; let the workers run their
        // checkpoint epilogues and exit on their own.
        reap(true);
    }
    catch (...)
    {
        shutdownChildren(10.0);
        throw;
    }

    // Record the fleet's cumulative wall clock + revival count where
    // the finalize pass (and compdiff_monitor) read session stats.
    // Both fields are display-only and volatile-filtered everywhere
    // byte-identity is asserted.
    {
        std::ostringstream stats;
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.3f",
                      secsSince(start));
        stats << "run_secs : " << buffer << "\n"
              << "restarts : " << out.revivals << "\n";
        session::atomicWriteFile(config.dir + "/session_stats",
                                 stats.str());
    }

    // Finalize in-process: a plain resume restores every shard's
    // final checkpoint (each fuzzer's run() returns immediately at
    // budget) and writes the fused artifacts — the reason a fleet
    // campaign's outputs are byte-identical to a single-process run.
    session::SessionConfig finalize = config;
    finalize.resume = true;
    finalize.haltAfterExecs = 0;
    finalize.stopFlag = nullptr;
    finalize.syncPath.clear();
    session::CampaignSession session(program, seeds, finalize);
    session.run();
    out.completed = session.completed();
    out.result = session.result();
    out.stats = session.statsSnapshot();
    out.reports = session.triage();

    {
        obs::CampaignEvent event("fleet_complete",
                                 out.result.total.execs);
        event.num("spawns", out.spawns)
            .num("revivals", out.revivals)
            .num("lease_conflicts", out.leaseConflicts)
            .num("diffs", out.result.diffs.size());
        fleetEvent(config.dir, std::move(event));
    }
    return out;
}

} // namespace compdiff::fleet
