#!/usr/bin/env bash
#
# clang-format driver.
#
#   scripts/format.sh            reformat the covered files in place
#   scripts/format.sh --check    dry-run; non-zero exit on drift
#                                (this is what CI's `format` job runs)
#
# Coverage is an explicit allowlist, not the whole tree: the format
# gate was introduced together with the parallel execution layer, and
# older files are brought under it as they are next touched — a
# tree-wide reformat would bury real history in whitespace commits.
# Add files/directories here when you touch them.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

covered=(
    src/support/thread_pool.hh
    src/support/thread_pool.cc
    src/compiler/cache.hh
    src/compiler/cache.cc
    src/compdiff/exec_service.hh
    src/compdiff/exec_service.cc
    src/fuzz/sharded.hh
    src/fuzz/sharded.cc
    tests/test_thread_pool.cc
    tests/test_parallel.cc
)

if ! command -v clang-format > /dev/null 2>&1; then
    echo "format.sh: clang-format not installed; skipping" >&2
    exit 0
fi

mode_args=(-i)
if [ "${1:-}" = "--check" ]; then
    mode_args=(--dry-run --Werror)
fi

clang-format "${mode_args[@]}" --style=file "${covered[@]}"
echo "format.sh: OK (${#covered[@]} files)"
