#!/usr/bin/env python3
"""Compare a google-benchmark JSON report against a checked-in baseline.

    scripts/bench_compare.py [--baseline FILE] [--tolerance PCT]
                             [--strict] current.json
    scripts/bench_compare.py --rebaseline current.json

Matches benchmarks by name and reports throughput regressions:
items_per_second (fuzz-loop inputs/sec) where available, else
1/real_time. The comparison is *warn-only* by default — microbench
numbers vary across hosts and CI machines, so a regression prints a
warning and the script still exits 0; --strict turns warnings into a
nonzero exit for local A/B runs on one quiet machine.

The baseline lives at bench/BENCH_overhead_baseline.json and is
refreshed deliberately, never automatically: run the microbench on a
quiet machine and pass the fresh report to --rebaseline, which
rewrites the baseline file and stamps its "context" block with
provenance (source commit and date) so a later reader can tell which
engine produced the numbers.
"""

import argparse
import datetime
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "bench" / "BENCH_overhead_baseline.json"


def load_benchmarks(path):
    """Benchmark name -> throughput (higher is better).

    Defensive on purpose: entries missing their throughput fields (or
    carrying non-numeric / zero values) are skipped with a warning,
    never a KeyError or ZeroDivisionError — a half-written report
    should degrade the comparison, not crash the gate.
    """
    try:
        with open(path) as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    out = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name")
        if not name or bench.get("run_type") == "aggregate":
            continue
        throughput = None
        try:
            if bench.get("items_per_second") is not None:
                throughput = float(bench["items_per_second"])
            elif float(bench.get("real_time") or 0) > 0:
                throughput = 1.0 / float(bench["real_time"])
        except (TypeError, ValueError):
            throughput = None
        if throughput is None or throughput <= 0:
            print(f"bench_compare: warning: {name} in {path} has no "
                  f"usable throughput field; skipped",
                  file=sys.stderr)
            continue
        out[name] = throughput
    return out


def rebaseline(current_path, baseline_path):
    """Adopt `current_path` as the new baseline, with provenance."""
    try:
        with open(current_path) as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {current_path}: {err}")
    if not report.get("benchmarks"):
        sys.exit(f"bench_compare: {current_path} has no benchmark "
                 f"entries; refusing to adopt an empty baseline")
    try:
        commit = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        commit = "unknown"
    context = report.setdefault("context", {})
    context["baseline_commit"] = commit
    context["baseline_date"] = (
        datetime.date.today().isoformat())
    with open(baseline_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    names = [b.get("name") for b in report["benchmarks"]
             if b.get("run_type") != "aggregate"]
    print(f"bench_compare: baseline {baseline_path} refreshed from "
          f"{current_path} ({len(names)} benchmarks, commit "
          f"{commit[:12]})")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="diff google-benchmark throughput vs a baseline")
    parser.add_argument("current", help="fresh benchmark JSON report")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="baseline report (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=20.0,
                        help="warn when throughput drops more than "
                             "PCT%% (default: %(default)s)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regressions instead of "
                             "warn-only")
    parser.add_argument("--rebaseline", action="store_true",
                        help="adopt CURRENT as the new baseline "
                             "(writes --baseline with provenance) "
                             "instead of comparing")
    args = parser.parse_args()

    if args.rebaseline:
        return rebaseline(args.current, args.baseline)

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    regressions = []
    width = max((len(n) for n in current), default=0)
    for name in sorted(current):
        cur = current[name]
        base = baseline.get(name)
        if base is None:
            # A benchmark the baseline has never seen cannot regress;
            # skip it loudly so a renamed benchmark is noticed (and
            # the baseline refreshed) instead of silently ungated.
            print(f"  {name:<{width}}  (new, no baseline entry; "
                  f"skipped)")
            continue
        delta = 100.0 * (cur - base) / base
        marker = ""
        if delta < -args.tolerance:
            marker = "  <-- regression"
            regressions.append((name, delta))
        print(f"  {name:<{width}}  {base:14.1f} -> {cur:14.1f} "
              f"items/s  {delta:+7.1f}%{marker}")
    missing = sorted(set(baseline) - set(current))
    for name in missing:
        print(f"  {name:<{width}}  (dropped from current run)")

    if regressions:
        print(f"\nbench_compare: WARNING: {len(regressions)} "
              f"benchmark(s) slower than baseline by more than "
              f"{args.tolerance:.0f}%:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%")
        if args.strict:
            return 1
        print("bench_compare: warn-only mode, not failing the build "
              "(use --strict to enforce)")
    else:
        print(f"\nbench_compare: no regressions beyond "
              f"{args.tolerance:.0f}% across {len(current)} "
              f"benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
