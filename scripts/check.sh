#!/usr/bin/env bash
#
# Tier-1 verification plus an observability smoke test.
#
#   scripts/check.sh                 configure + build + ctest + smoke
#   scripts/check.sh --smoke <cli>   smoke only, against an already
#                                    built compdiff_cli binary (this
#                                    is what the `obs_smoke` CTest
#                                    test runs, so plain `ctest`
#                                    exercises the telemetry paths
#                                    without recursing into itself)
#
# The smoke test runs compdiff_cli with --trace-out/--metrics-out/
# --stats-out and validates every emitted file with the built-in JSON
# checker (`compdiff_cli --validate-json`).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

smoke() {
    local cli="$1"
    local tmp
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN

    echo "== obs smoke: single-input diff with trace + metrics"
    # The built-in demo diverges, so the CLI exits 1 by design.
    "$cli" --quiet \
        --trace-out="$tmp/trace.json" \
        --metrics-out="$tmp/metrics.jsonl" \
        > "$tmp/diff.out" || test $? -eq 1
    "$cli" --validate-json="$tmp/trace.json"
    grep -q '"traceEvents"' "$tmp/trace.json"
    grep -q 'exec\.' "$tmp/trace.json"
    grep -q 'normalize' "$tmp/trace.json"
    grep -q 'compdiff.compare' "$tmp/trace.json"
    grep -q 'compile\.' "$tmp/trace.json"
    # Each JSONL line must itself be valid JSON.
    while IFS= read -r line; do
        [ -z "$line" ] && continue
        printf '%s' "$line" > "$tmp/line.json"
        "$cli" --validate-json="$tmp/line.json" > /dev/null
    done < "$tmp/metrics.jsonl"

    echo "== impls smoke: --impls=paper10 reproduces the default oracle"
    # Explicitly spelling the alias must behave exactly like the
    # default: the demo diverges (exit 1).
    "$cli" --quiet --impls=paper10 > "$tmp/paper10.out" && rc=0 || rc=$?
    test "$rc" -eq 1
    grep -q 'DIVERGENT across 10 implementations' "$tmp/paper10.out"

    echo "== impls smoke: --impls=gcc:-O0,ref cross-backend pair"
    # The demo's unstable guard needs an optimizing configuration to
    # misbehave; gcc-O0 and the reference interpreter agree (exit 0).
    "$cli" --quiet --impls=gcc:-O0,ref > "$tmp/ref.out"
    grep -q 'consistent across 2 implementations' "$tmp/ref.out"

    echo "== reduce smoke: campaign + minimized bug bundles"
    # Deterministic campaign target; --reduce minimizes every unique
    # divergence under a hard candidate budget (keeps CI wall time
    # bounded) and --reports-out bundles each one. Exit 1 = found
    # divergences, by design.
    "$cli" --quiet --target=pktdump --fuzz=2000 --reduce=200 \
        --reports-out="$tmp/reports" > "$tmp/reduce.out" || test $? -eq 1
    report="$(find "$tmp/reports" -name report.md | head -n 1)"
    test -n "$report"
    bundle="$(dirname "$report")"
    test -s "$bundle/program.mc"
    test -s "$bundle/input.bin"
    grep -q '^# Divergence report sig-' "$report"
    grep -q '^## Reproduce' "$report"
    # The minimized witness must still diverge when replayed.
    "$cli" --quiet "$bundle/program.mc" "$bundle/input.bin" \
        > "$tmp/replay.out" && rc=0 || rc=$?
    test "$rc" -eq 1
    grep -q 'DIVERGENT' "$tmp/replay.out"

    echo "== obs smoke: fuzz campaign with fuzzer_stats + plot_data"
    "$cli" --quiet --fuzz=400 \
        --stats-out="$tmp/fuzzer_stats" \
        --plot-out="$tmp/plot_data" \
        --trace-out="$tmp/fuzz_trace.json" \
        > "$tmp/fuzz.out" || test $? -eq 1
    "$cli" --validate-json="$tmp/fuzz_trace.json"
    grep -q '^execs_done' "$tmp/fuzzer_stats"
    grep -q '^compdiff_execs' "$tmp/fuzzer_stats"
    grep -q '^execs_impl_' "$tmp/fuzzer_stats"
    grep -q '^run_time' "$tmp/fuzzer_stats"
    grep -q '^# execs' "$tmp/plot_data"

    echo "== cli smoke: unknown flags are rejected with usage text"
    "$cli" --no-such-flag > "$tmp/usage.out" 2>&1 && rc=0 || rc=$?
    test "$rc" -eq 2
    grep -q 'unknown option --no-such-flag' "$tmp/usage.out"
    grep -q 'usage: compdiff_cli' "$tmp/usage.out"
    "$cli" --help > "$tmp/help.out"
    grep -q 'usage: compdiff_cli' "$tmp/help.out"

    echo "== session smoke: interrupt-then-resume is bit-identical"
    # One uninterrupted pktdump campaign, and the same campaign run
    # as halt-at-half-budget then resume. The persisted results must
    # match except for the wall-clock-dependent stats lines; the
    # divergence journal must match byte-for-byte. The bounded
    # compile cache's hit/miss/evict counters surface in the metrics.
    "$cli" --quiet --target=pktdump --fuzz=1000 \
        --session="$tmp/sess_full" > "$tmp/sess_full.out" \
        || test $? -eq 1
    "$cli" --quiet --target=pktdump --fuzz=1000 \
        --session="$tmp/sess_cut" --halt-after=500 \
        > "$tmp/sess_cut.out"
    grep -q 'session halted' "$tmp/sess_cut.out"
    test ! -f "$tmp/sess_cut/fuzzer_stats" # halted: checkpoints only
    # The resume also reduces what it found, under an LRU-bounded
    # compile cache: witness replays hit the resident original-
    # program modules, reduction candidates miss and force evictions
    # — all three counters must surface in the metrics export.
    "$cli" --quiet --target=pktdump --fuzz=1000 \
        --session="$tmp/sess_cut" --resume --reduce=100 \
        --cache-entries=11 --metrics-out="$tmp/sess_metrics.jsonl" \
        > "$tmp/sess_resume.out" || test $? -eq 1
    volatile='^(run_time|execs_per_sec|session_restarts)'
    diff <(grep -Ev "$volatile" "$tmp/sess_full/fuzzer_stats") \
         <(grep -Ev "$volatile" "$tmp/sess_cut/fuzzer_stats")
    cmp "$tmp/sess_full/divergences.journal" \
        "$tmp/sess_cut/divergences.journal"
    cmp "$tmp/sess_full/plot_data" "$tmp/sess_cut/plot_data"
    grep -q '^session_restarts *: 1' "$tmp/sess_cut/fuzzer_stats"
    grep -q 'cache.hit' "$tmp/sess_metrics.jsonl"
    grep -q 'cache.miss' "$tmp/sess_metrics.jsonl"
    grep -q 'cache.evict' "$tmp/sess_metrics.jsonl"
    # Resuming with a different campaign must fail loudly.
    "$cli" --quiet --target=pktdump --fuzz=2000 \
        --session="$tmp/sess_cut" --resume \
        > "$tmp/sess_bad.out" 2>&1 && rc=0 || rc=$?
    test "$rc" -eq 2
    grep -q 'exact campaign configuration' "$tmp/sess_bad.out"

    echo "== monitor smoke: aggregate a finished sharded session tree"
    monitor="$(dirname "$cli")/compdiff_monitor"
    "$cli" --quiet --target=pktdump --fuzz=1500 --shards=3 \
        --session="$tmp/mon/pkt" --checkpoint-every=200 \
        > "$tmp/mon.out" || test $? -eq 1
    "$monitor" "$tmp/mon" > "$tmp/mon_table.out"
    grep -q 'pkt' "$tmp/mon_table.out"
    grep -q 'complete' "$tmp/mon_table.out"
    grep -q 'total execs : 1500' "$tmp/mon_table.out"
    # The JSON document parses; the prom exposition has the right
    # line shapes and totals for every shard.
    "$monitor" --format=json "$tmp/mon" > "$tmp/mon.json"
    "$cli" --validate-json="$tmp/mon.json"
    "$monitor" --format=prom "$tmp/mon" > "$tmp/mon.prom"
    grep -q '^# TYPE compdiff_campaign_execs gauge' "$tmp/mon.prom"
    grep -Eq '^compdiff_campaign_execs\{session="pkt"\} 1500$' \
        "$tmp/mon.prom"
    for shard in 0 1 2; do
        grep -Eq "^compdiff_shard_health\{session=\"pkt\",shard=\"$shard\",state=\"complete\"\} 1$" \
            "$tmp/mon.prom"
        grep -Eq "^compdiff_shard_execs\{session=\"pkt\",shard=\"$shard\"\} 500$" \
            "$tmp/mon.prom"
    done
    # Byte-stable: repeat scans of a finished tree agree exactly.
    "$monitor" --stable "$tmp/mon" > "$tmp/mon_stable1.out"
    "$monitor" --stable "$tmp/mon" > "$tmp/mon_stable2.out"
    cmp "$tmp/mon_stable1.out" "$tmp/mon_stable2.out"
    # No sessions found is a distinct, scriptable failure (exit 1).
    mkdir -p "$tmp/mon_empty"
    "$monitor" "$tmp/mon_empty" > /dev/null 2>&1 && rc=0 || rc=$?
    test "$rc" -eq 1

    echo "== monitor smoke: a killed worker reads as dead, work kept"
    "$cli" --quiet --target=pktdump --fuzz=2000000 \
        --checkpoint-every=500 --session="$tmp/kill/w" \
        > "$tmp/kill.out" 2>&1 &
    kill_pid=$!
    # Wait (bounded) for the first checkpoint to land, then kill -9:
    # the heartbeat still claims "running" but the pid is gone.
    for _ in $(seq 1 150); do
        [ -f "$tmp/kill/w/shard-0.journal" ] &&
            [ "$(wc -c < "$tmp/kill/w/shard-0.journal")" -gt 1024 ] &&
            break
        sleep 0.2
    done
    kill -9 "$kill_pid" 2>/dev/null || true
    wait "$kill_pid" 2>/dev/null || true
    "$monitor" "$tmp/kill" > "$tmp/kill_table.out"
    grep -q 'dead' "$tmp/kill_table.out"
    "$monitor" --format=prom "$tmp/kill" > "$tmp/kill.prom"
    grep -Eq '^compdiff_shard_health\{session="w",shard="0",state="dead"\} 1$' \
        "$tmp/kill.prom"
    # The kill cost the process, not the work: the last checkpoint
    # still reports the saved execs.
    grep -Eq '^compdiff_shard_execs\{session="w",shard="0"\} [1-9]' \
        "$tmp/kill.prom"
    echo "== sancheck smoke: seeded sanitizer defects, resume identity"
    # The flipped oracle (DESIGN.md §14): the fixed sweep over the
    # bundled sanlab target must surface exactly the four seeded
    # sanitizer defects (exit 1 = findings, by design).
    sancheck="$(dirname "$cli")/compdiff_sancheck"
    "$sancheck" --quiet > "$tmp/san_sweep.out" && rc=0 || rc=$?
    test "$rc" -eq 1
    grep -q 'findings : 3 FN, 1 FP' "$tmp/san_sweep.out"
    grep -q 'FN x1 FP x1' "$tmp/san_sweep.out" # the -O2 UBSan defect
    # A short campaign rediscovers them, reduces each unique finding,
    # and writes sig-<hex>/ bundles naming the certified UB site and
    # the silent sanitizer.
    "$sancheck" --quiet --fuzz=3000 --shards=2 \
        --session="$tmp/san_full" --reduce=300 \
        --reports-out="$tmp/san_reports" > "$tmp/san_full.out" \
        && rc=0 || rc=$?
    test "$rc" -eq 1
    for sig in 'san:clang-O1+msan:uninit-read:FN' \
               'san:clang-O2+ubsan:signed-overflow:FN' \
               'san:clang-O2+ubsan:signed-overflow:FP' \
               'san:clang-O1+asan:out-of-bounds:FN'; do
        grep -q "$sig" "$tmp/san_full.out"
    done
    msan_report="$(grep -l 'san:clang-O1+msan:uninit-read:FN' \
        "$tmp"/san_reports/sig-*/report.md | head -n 1)"
    test -n "$msan_report"
    grep -q 'certified UB site' "$msan_report"
    grep -q 'silent' "$msan_report"
    # The bundle's reproduce command still observes the finding
    # (exit 1) on the minimized pair.
    msan_bundle="$(dirname "$msan_report")"
    "$sancheck" --quiet --program="$msan_bundle/program.mc" \
        --input="$msan_bundle/input.bin" --impls=clang:-O1:msan \
        > "$tmp/san_replay.out" && rc=0 || rc=$?
    test "$rc" -eq 1
    grep -q 'uninit-read:FN' "$tmp/san_replay.out"
    # Halt at half budget, resume with a different job count: the
    # deterministic artifacts must match the uninterrupted session
    # byte-for-byte.
    "$sancheck" --quiet --fuzz=3000 --shards=2 \
        --session="$tmp/san_cut" --halt-after=750 \
        > "$tmp/san_cut.out"
    grep -q 'session halted' "$tmp/san_cut.out"
    "$sancheck" --quiet --fuzz=3000 --shards=2 --jobs=2 \
        --session="$tmp/san_cut" --resume > /dev/null \
        || test $? -eq 1
    for s in 0 1; do
        cmp "$tmp/san_full/shard-$s.events.jsonl" \
            "$tmp/san_cut/shard-$s.events.jsonl"
    done
    grep -q 'mode : sancheck' "$tmp/san_cut/MANIFEST"
    # The monitor surfaces the sancheck columns for such sessions.
    "$monitor" --stable "$tmp/san_full" > "$tmp/san_mon.out"
    grep -q 'san_fn' "$tmp/san_mon.out"
    grep -q 'san findings : 3 FN, 1 FP' "$tmp/san_mon.out"
    "$monitor" --format=prom "$tmp/san_full" > "$tmp/san.prom"
    grep -Eq '^compdiff_campaign_san_fn\{session="san_full"\} 3$' \
        "$tmp/san.prom"
    grep -Eq '^compdiff_campaign_san_fp\{session="san_full"\} 1$' \
        "$tmp/san.prom"

    echo "== fleet smoke: multi-process campaign, kill -9, revival"
    # A 3-worker fleet over the same campaign a single process runs
    # as the reference; one worker is SIGKILLed mid-run via its shard
    # lease. The revived fleet's deterministic artifacts must match
    # the reference byte-for-byte (the --stable monitor snapshot
    # compares the whole session tree in one shot; the two trees use
    # the same leaf name so labels line up).
    fleet="$(dirname "$cli")/compdiff_fleet"
    "$cli" --quiet --target=pktdump --fuzz=4500 --shards=3 \
        --checkpoint-every=200 --session="$tmp/fleet_ref/pkt" \
        > /dev/null || test $? -eq 1
    "$fleet" --target=pktdump --fuzz=4500 --shards=3 --workers=3 \
        --checkpoint-every=200 --poll-every=0.02 --quiet \
        --session="$tmp/fleet_run/pkt" > "$tmp/fleet.out" 2>&1 &
    fleet_pid=$!
    killed=0
    for _ in $(seq 1 500); do
        for s in 0 1 2; do
            lease="$tmp/fleet_run/pkt/shard-$s.lease"
            [ -f "$lease" ] || continue
            worker_pid="$(awk '/^pid/{print $3}' "$lease")"
            if [ -n "$worker_pid" ] &&
                kill -9 "$worker_pid" 2>/dev/null; then
                killed=1
                break 2
            fi
        done
        sleep 0.02
    done
    wait "$fleet_pid" && rc=0 || rc=$?
    test "$rc" -eq 0 -o "$rc" -eq 1
    test "$killed" -eq 1
    grep -q 'fleet_revive' "$tmp/fleet_run/pkt/fleet.jsonl"
    cmp "$tmp/fleet_run/pkt/divergences.journal" \
        "$tmp/fleet_ref/pkt/divergences.journal"
    diff <(grep -Ev "$volatile" "$tmp/fleet_run/pkt/fuzzer_stats") \
         <(grep -Ev "$volatile" "$tmp/fleet_ref/pkt/fuzzer_stats")
    "$monitor" --stable "$tmp/fleet_run" > "$tmp/fleet_mon_a.out"
    "$monitor" --stable "$tmp/fleet_ref" > "$tmp/fleet_mon_b.out"
    cmp "$tmp/fleet_mon_a.out" "$tmp/fleet_mon_b.out"
    # Outside --stable mode the monitor surfaces the fleet history.
    "$monitor" "$tmp/fleet_run" > "$tmp/fleet_mon_live.out"
    grep -Eq 'fleet pkt : [0-9]+ spawns, [1-9][0-9]* revivals' \
        "$tmp/fleet_mon_live.out"

    echo "== bench_compare unit: missing entries skip, gate enforces"
    if command -v python3 > /dev/null 2>&1; then
        bench_py="$repo_root/scripts/bench_compare.py"
        cat > "$tmp/bench_base.json" << 'EOF'
{"benchmarks": [
  {"name": "bm_shared", "items_per_second": 1000.0},
  {"name": "bm_baseline_only", "items_per_second": 500.0}
]}
EOF
        cat > "$tmp/bench_ok.json" << 'EOF'
{"benchmarks": [
  {"name": "bm_shared", "items_per_second": 990.0},
  {"name": "bm_new", "items_per_second": 10.0},
  {"name": "bm_unusable", "real_time": 0.0}
]}
EOF
        # Entries missing from the baseline (or unusable) are skipped
        # with a warning — never a KeyError — and do not fail --strict.
        python3 "$bench_py" --baseline "$tmp/bench_base.json" \
            --strict "$tmp/bench_ok.json" > "$tmp/bench_ok.out" 2>&1
        grep -q 'no baseline entry; skipped' "$tmp/bench_ok.out"
        grep -q 'bm_unusable.*no usable throughput' "$tmp/bench_ok.out"
        grep -q 'dropped from current run' "$tmp/bench_ok.out"
        cat > "$tmp/bench_bad.json" << 'EOF'
{"benchmarks": [{"name": "bm_shared", "items_per_second": 100.0}]}
EOF
        # A 90% drop: warn-only exits 0, --strict fails, a tolerance
        # wider than the drop passes again.
        python3 "$bench_py" --baseline "$tmp/bench_base.json" \
            "$tmp/bench_bad.json" > "$tmp/bench_warn.out"
        grep -q 'WARNING' "$tmp/bench_warn.out"
        python3 "$bench_py" --baseline "$tmp/bench_base.json" \
            --strict "$tmp/bench_bad.json" > /dev/null 2>&1 \
            && rc=0 || rc=$?
        test "$rc" -eq 1
        python3 "$bench_py" --baseline "$tmp/bench_base.json" \
            --strict --tolerance 95 "$tmp/bench_bad.json" > /dev/null
    else
        echo "   (python3 not found; skipped)"
    fi

    echo "== obs smoke: OK"
}

if [ "${1:-}" = "--smoke" ]; then
    smoke "$2"
    exit 0
fi

build_dir="${BUILD_DIR:-$repo_root/build}"

echo "== configure"
cmake -B "$build_dir" -S "$repo_root"
echo "== build"
cmake --build "$build_dir" -j "$(nproc)"
echo "== ctest"
(cd "$build_dir" && ctest --output-on-failure -j "$(nproc)")
echo "== smoke"
smoke "$build_dir/examples/compdiff_cli"
echo "== all checks passed"
