#!/usr/bin/env bash
#
# Tier-1 verification plus an observability smoke test.
#
#   scripts/check.sh                 configure + build + ctest + smoke
#   scripts/check.sh --smoke <cli>   smoke only, against an already
#                                    built compdiff_cli binary (this
#                                    is what the `obs_smoke` CTest
#                                    test runs, so plain `ctest`
#                                    exercises the telemetry paths
#                                    without recursing into itself)
#
# The smoke test runs compdiff_cli with --trace-out/--metrics-out/
# --stats-out and validates every emitted file with the built-in JSON
# checker (`compdiff_cli --validate-json`).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

smoke() {
    local cli="$1"
    local tmp
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' RETURN

    echo "== obs smoke: single-input diff with trace + metrics"
    # The built-in demo diverges, so the CLI exits 1 by design.
    "$cli" --quiet \
        --trace-out="$tmp/trace.json" \
        --metrics-out="$tmp/metrics.jsonl" \
        > "$tmp/diff.out" || test $? -eq 1
    "$cli" --validate-json="$tmp/trace.json"
    grep -q '"traceEvents"' "$tmp/trace.json"
    grep -q 'exec\.' "$tmp/trace.json"
    grep -q 'normalize' "$tmp/trace.json"
    grep -q 'compdiff.compare' "$tmp/trace.json"
    grep -q 'compile\.' "$tmp/trace.json"
    # Each JSONL line must itself be valid JSON.
    while IFS= read -r line; do
        [ -z "$line" ] && continue
        printf '%s' "$line" > "$tmp/line.json"
        "$cli" --validate-json="$tmp/line.json" > /dev/null
    done < "$tmp/metrics.jsonl"

    echo "== impls smoke: --impls=paper10 reproduces the default oracle"
    # Explicitly spelling the alias must behave exactly like the
    # default: the demo diverges (exit 1).
    "$cli" --quiet --impls=paper10 > "$tmp/paper10.out" && rc=0 || rc=$?
    test "$rc" -eq 1
    grep -q 'DIVERGENT across 10 implementations' "$tmp/paper10.out"

    echo "== impls smoke: --impls=gcc:-O0,ref cross-backend pair"
    # The demo's unstable guard needs an optimizing configuration to
    # misbehave; gcc-O0 and the reference interpreter agree (exit 0).
    "$cli" --quiet --impls=gcc:-O0,ref > "$tmp/ref.out"
    grep -q 'consistent across 2 implementations' "$tmp/ref.out"

    echo "== reduce smoke: campaign + minimized bug bundles"
    # Deterministic campaign target; --reduce minimizes every unique
    # divergence under a hard candidate budget (keeps CI wall time
    # bounded) and --reports-out bundles each one. Exit 1 = found
    # divergences, by design.
    "$cli" --quiet --target=pktdump --fuzz=2000 --reduce=200 \
        --reports-out="$tmp/reports" > "$tmp/reduce.out" || test $? -eq 1
    report="$(find "$tmp/reports" -name report.md | head -n 1)"
    test -n "$report"
    bundle="$(dirname "$report")"
    test -s "$bundle/program.mc"
    test -s "$bundle/input.bin"
    grep -q '^# Divergence report sig-' "$report"
    grep -q '^## Reproduce' "$report"
    # The minimized witness must still diverge when replayed.
    "$cli" --quiet "$bundle/program.mc" "$bundle/input.bin" \
        > "$tmp/replay.out" && rc=0 || rc=$?
    test "$rc" -eq 1
    grep -q 'DIVERGENT' "$tmp/replay.out"

    echo "== obs smoke: fuzz campaign with fuzzer_stats + plot_data"
    "$cli" --quiet --fuzz=400 \
        --stats-out="$tmp/fuzzer_stats" \
        --plot-out="$tmp/plot_data" \
        --trace-out="$tmp/fuzz_trace.json" \
        > "$tmp/fuzz.out" || test $? -eq 1
    "$cli" --validate-json="$tmp/fuzz_trace.json"
    grep -q '^execs_done' "$tmp/fuzzer_stats"
    grep -q '^compdiff_execs' "$tmp/fuzzer_stats"
    grep -q '^execs_impl_' "$tmp/fuzzer_stats"
    grep -q '^# execs' "$tmp/plot_data"
    echo "== obs smoke: OK"
}

if [ "${1:-}" = "--smoke" ]; then
    smoke "$2"
    exit 0
fi

build_dir="${BUILD_DIR:-$repo_root/build}"

echo "== configure"
cmake -B "$build_dir" -S "$repo_root"
echo "== build"
cmake --build "$build_dir" -j "$(nproc)"
echo "== ctest"
(cd "$build_dir" && ctest --output-on-failure -j "$(nproc)")
echo "== smoke"
smoke "$build_dir/examples/compdiff_cli"
echo "== all checks passed"
