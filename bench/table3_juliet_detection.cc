/**
 * @file
 * Reproduces Table 3: bug-detection and false-positive rates of the
 * three static analyzers, the three sanitizers, and CompDiff on the
 * Juliet-style suite, plus the number of bugs only CompDiff finds.
 *
 * Usage: table3_juliet_detection [scale]
 * The default scale (1/24) keeps the run at laptop timescales; raise
 * it toward 1.0 for the full-size suite.
 */

#include <cstdio>
#include <cstdlib>

#include "juliet/evaluate.hh"
#include "juliet/suite.hh"
#include "obs/stats.hh"
#include "support/strings.hh"
#include "support/table.hh"

int
main(int argc, char **argv)
{
    using namespace compdiff;
    obs::BenchTelemetry telemetry("table3_juliet_detection");
    using support::format;

    double scale = 1.0 / 24;
    if (argc > 1)
        scale = std::atof(argv[1]);

    juliet::SuiteBuilder builder(scale);
    const auto cases = builder.buildAll();
    std::printf("Table 3: detection rates (%%) and false-positive "
                "rates (%%) on %zu synthesized Juliet tests "
                "(scale %.4f)\n\n",
                cases.size(), scale);

    const auto result = juliet::evaluateSuite(cases);

    support::TextTable table;
    table.setHeader({"Group", "deepscan", "FP", "lintcheck", "FP",
                     "inferlite", "FP", "ASan", "UBSan", "MSan",
                     "SanTotal", "CompDiff", "#Unique"});
    std::vector<support::Align> align(13, support::Align::Right);
    align[0] = support::Align::Left;
    table.setAlign(align);

    auto pct = [](const juliet::ToolOutcome &outcome) {
        return format("%.0f%%", outcome.detectionRate());
    };
    auto fp = [](const juliet::ToolOutcome &outcome) {
        return format("%.0f%%", outcome.falsePositiveRate());
    };

    std::size_t unique_total = 0;
    for (const auto &group : result.groups) {
        const auto &tools = group.tools;
        table.addRow({
            group.group,
            pct(tools.at("deepscan")), fp(tools.at("deepscan")),
            pct(tools.at("lintcheck")), fp(tools.at("lintcheck")),
            pct(tools.at("inferlite")), fp(tools.at("inferlite")),
            pct(tools.at("asan")),
            pct(tools.at("ubsan")),
            pct(tools.at("msan")),
            pct(tools.at("sanitizers-any")),
            pct(tools.at("compdiff")),
            std::to_string(group.compdiffUnique),
        });
        unique_total += group.compdiffUnique;
    }
    table.addSeparator();
    table.addRow({"Total detected", "", "", "", "", "", "",
                  std::to_string(result.totalDetected("asan")),
                  std::to_string(result.totalDetected("ubsan")),
                  std::to_string(result.totalDetected("msan")),
                  std::to_string(
                      result.totalDetected("sanitizers-any")),
                  std::to_string(result.totalDetected("compdiff")),
                  std::to_string(unique_total)});

    std::printf("%s\n", table.str().c_str());
    std::printf(
        "Sanitizers and CompDiff reported zero false positives "
        "(Finding 5); static FP%% is false alarms / all reports.\n"
        "#Unique = bugs detected by CompDiff that no sanitizer "
        "caught (paper: 1,409 at full scale).\n");
    return 0;
}
