/**
 * @file
 * Reproduces Table 6: of all bugs detected by CompDiff-AFL++, how
 * many could also be discovered by each sanitizer (each found bug's
 * witness input is replayed on the ASan/UBSan/MSan builds).
 *
 * Usage: table6_sanitizer_overlap [execs_per_target]
 */

#include <cstdio>
#include <cstdlib>
#include <map>

#include "obs/stats.hh"
#include "support/table.hh"
#include "targets/campaign.hh"

int
main(int argc, char **argv)
{
    using namespace compdiff;
    obs::BenchTelemetry telemetry("table6_sanitizer_overlap");
    using targets::BugCategory;

    targets::CampaignOptions options;
    options.maxExecs = 10'000;
    options.checkSanitizers = true;
    if (argc > 1)
        options.maxExecs =
            static_cast<std::uint64_t>(std::atoll(argv[1]));

    const auto results = targets::runAllCampaigns(options);

    struct Row
    {
        std::size_t total = 0;
        std::size_t asan = 0;
        std::size_t ubsan = 0;
        std::size_t msan = 0;
        std::size_t any = 0;
    };
    std::map<std::string, Row> rows;
    Row grand;

    auto row_name = [](BugCategory category) -> std::string {
        switch (category) {
          case BugCategory::MemError: return "MemError";
          case BugCategory::IntError: return "IntError";
          case BugCategory::UninitMem: return "UninitMem";
          default: return "Remaining bugs";
        }
    };

    for (const auto &result : results) {
        for (const auto &finding : result.found) {
            Row &row = rows[row_name(finding.bug->category)];
            row.total++;
            row.asan += finding.asanFires;
            row.ubsan += finding.ubsanFires;
            row.msan += finding.msanFires;
            const bool any = finding.asanFires ||
                             finding.ubsanFires || finding.msanFires;
            row.any += any;
            grand.total++;
            grand.asan += finding.asanFires;
            grand.ubsan += finding.ubsanFires;
            grand.msan += finding.msanFires;
            grand.any += any;
        }
    }

    std::printf("Table 6: of the bugs detected by CompDiff, the "
                "number also discovered by sanitizers\n"
                "(%llu execs per target)\n\n",
                static_cast<unsigned long long>(options.maxExecs));

    support::TextTable table;
    table.setHeader({"CompDiff", "ASan", "UBSan", "MSan",
                     "Sanitizer total", "CompDiff total"});
    table.setAlign({support::Align::Left, support::Align::Right,
                    support::Align::Right, support::Align::Right,
                    support::Align::Right, support::Align::Right});

    const char *order[] = {"MemError", "IntError", "UninitMem",
                           "Remaining bugs"};
    for (const char *name : order) {
        const Row &row = rows[name];
        table.addRow({name, std::to_string(row.asan),
                      std::to_string(row.ubsan),
                      std::to_string(row.msan),
                      std::to_string(row.any),
                      std::to_string(row.total)});
    }
    table.addSeparator();
    table.addRow({"Total", std::to_string(grand.asan),
                  std::to_string(grand.ubsan),
                  std::to_string(grand.msan),
                  std::to_string(grand.any),
                  std::to_string(grand.total)});

    std::printf("%s\n", table.str().c_str());
    std::printf("Paper: MemError 13/13, IntError 8/8, UninitMem "
                "21/27, remaining 0/30; 42 of 78 total.\n");
    return 0;
}
