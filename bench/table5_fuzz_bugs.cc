/**
 * @file
 * Reproduces Table 5: bugs detected by CompDiff-AFL++ on the target
 * programs, by root-cause category, with the simulated developer
 * response (confirmed / fixed).
 *
 * Usage: table5_fuzz_bugs [execs_per_target]
 */

#include <cstdio>
#include <cstdlib>

#include "obs/stats.hh"
#include "support/table.hh"
#include "targets/campaign.hh"

int
main(int argc, char **argv)
{
    using namespace compdiff;
    obs::BenchTelemetry telemetry("table5_fuzz_bugs");

    targets::CampaignOptions options;
    options.maxExecs = 10'000;
    options.checkSanitizers = false;
    if (argc > 1)
        options.maxExecs =
            static_cast<std::uint64_t>(std::atoll(argv[1]));

    std::printf("Table 5: bugs detected by CompDiff-AFL++ on %zu "
                "targets (%llu execs per target)\n\n",
                targets::allTargets().size(),
                static_cast<unsigned long long>(options.maxExecs));

    std::uint64_t total_execs = 0;
    std::vector<targets::CampaignResult> results;
    for (const auto &target : targets::allTargets()) {
        results.push_back(targets::runCampaign(target, options));
        total_execs += results.back().stats.execs;
        std::fprintf(stderr, "  %-10s diffs %3zu  found %zu/%zu\n",
                     target.name.c_str(),
                     results.back().stats.diffs,
                     results.back().found.size(),
                     target.bugs.size());
    }

    const auto columns = targets::aggregateByColumn(results);
    const char *order[] = {"EvalOrder",  "UninitMem", "IntError",
                           "MemError",   "PointerCmp", "LINE",
                           "Misc."};

    support::TextTable table;
    std::vector<std::string> header = {""};
    for (const char *col : order)
        header.push_back(col);
    header.push_back("Total");
    table.setHeader(header);
    std::vector<support::Align> align(header.size(),
                                      support::Align::Right);
    align[0] = support::Align::Left;
    table.setAlign(align);

    auto add_row = [&](const char *name, auto getter) {
        std::vector<std::string> row = {name};
        std::size_t total = 0;
        for (const char *col : order) {
            const std::size_t value = getter(columns.at(col));
            row.push_back(std::to_string(value));
            total += value;
        }
        row.push_back(std::to_string(total));
        table.addRow(row);
    };

    add_row("Planted", [](const targets::ColumnCounts &c) {
        return c.planted;
    });
    table.addSeparator();
    add_row("Reported", [](const targets::ColumnCounts &c) {
        return c.found;
    });
    add_row("Confirmed", [](const targets::ColumnCounts &c) {
        return c.confirmed;
    });
    add_row("Fixed", [](const targets::ColumnCounts &c) {
        return c.fixed;
    });

    std::printf("%s\n", table.str().c_str());
    std::printf("Paper (24h x 10 campaigns): Reported 2/27/8/13/1/"
                "6/21 = 78, Confirmed 65, Fixed 52.\n"
                "Total executions: %llu (x11 binaries each).\n",
                static_cast<unsigned long long>(total_execs));
    return 0;
}
