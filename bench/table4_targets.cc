/**
 * @file
 * Reproduces Table 4: the fuzzing targets.
 *
 * The paper lists 23 open-source projects; this repository ships 13
 * representative MiniC targets covering the same input-format
 * families (see DESIGN.md for the substitution rationale). The table
 * prints each target's input type, version, size, planted-bug count,
 * and seed count.
 */

#include <cstdio>
#include <string>

#include "obs/stats.hh"
#include "support/table.hh"
#include "targets/targets.hh"

int
main()
{
    using namespace compdiff;
    obs::BenchTelemetry telemetry("table4_targets");

    support::TextTable table;
    table.setHeader({"Target", "Input type", "Version", "Size (LoC)",
                     "Planted bugs", "Seeds"});
    table.setAlign({support::Align::Left, support::Align::Left,
                    support::Align::Left, support::Align::Right,
                    support::Align::Right, support::Align::Right});

    std::size_t total_loc = 0;
    std::size_t total_bugs = 0;
    for (const auto &target : targets::allTargets()) {
        table.addRow({
            target.name,
            target.inputType,
            target.version,
            std::to_string(target.linesOfCode()),
            std::to_string(target.bugs.size()),
            std::to_string(target.seeds.size()),
        });
        total_loc += target.linesOfCode();
        total_bugs += target.bugs.size();
    }
    table.addSeparator();
    table.addRow({"Total", "", "", std::to_string(total_loc),
                  std::to_string(total_bugs), ""});

    std::printf("Table 4: selected target programs "
                "(13 MiniC stand-ins for the paper's 23 projects)\n\n"
                "%s\n",
                table.str().c_str());
    return 0;
}
