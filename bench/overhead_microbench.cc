/**
 * @file
 * Reproduces the paper's Section 5 overhead discussion with
 * google-benchmark: the run-time cost of CompDiff per generated
 * input as a function of the number of compiler implementations
 * (1 = plain fuzzing, 2 = the recommended budget subset, 10 = the
 * full set). The paper reports roughly 10x for the full set and 2x
 * for a two-implementation subset.
 *
 * A second axis measures the parallel ExecutionService: the same
 * k = 10 oracle with 1/2/4/8 worker threads. On a multicore host the
 * full-set overhead shrinks toward the 2x of the budget subset while
 * producing bit-identical observations; on a single-core host the
 * threads>1 rows only show the pool's dispatch overhead.
 *
 * A third axis measures the batch path: BM_BatchOracle drives
 * DiffEngine::runBatch over a deterministic 64-input batch so the
 * resident executors (decoded module, warm arena) run the whole
 * batch implementation-major — the execution shape of a batching
 * fuzz campaign — versus BM_CompDiff's one-round-per-input shape.
 *
 * Besides the human-readable console table, the binary always emits
 * a machine-readable google-benchmark JSON report (default
 * `BENCH_overhead.json`, override with --benchmark_out=FILE): one
 * entry per (k, jobs) grid point plus one per pipeline phase
 * (parse / compile / execute / oracle), each with `real_time` in
 * nanoseconds and `items_per_second` = fuzz-loop inputs per second.
 * Executing phases additionally report the deterministic work rate:
 * `insns_per_sec` (guest instructions retired per second, summed
 * from the per-observation instruction counters) and, for k-way
 * rows, `oracle_execs_per_sec` (raw per-implementation executions).
 * Inputs/sec answers "how fast is the fuzz loop"; insns/sec
 * separates dispatch overhead from workload size when comparing
 * engines. CI archives the file as a build artifact.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "compdiff/engine.hh"
#include "compdiff/implementation.hh"
#include "minic/parser.hh"
#include "targets/targets.hh"
#include "vm/vm.hh"

namespace
{

using namespace compdiff;

const targets::TargetProgram &
pktdumpTarget()
{
    return *targets::findTarget("pktdump");
}

const minic::Program &
targetProgram()
{
    static const auto program =
        minic::parseAndCheck(pktdumpTarget().source);
    return *program;
}

const support::Bytes &
workloadInput()
{
    static const support::Bytes input = {80, 1, 17, 34, 3, 2, 60,
                                         4,  2, 48, 5,  7, 2, 3};
    return input;
}

vm::VmLimits
benchLimits()
{
    vm::VmLimits limits;
    limits.stackSize = 1 << 14;
    limits.heapSize = 1 << 15;
    return limits;
}

/** Phase 1 of the pipeline: parse + semantic analysis. */
void
BM_PhaseParse(benchmark::State &state)
{
    const std::string &source = pktdumpTarget().source;
    for (auto _ : state) {
        auto program = minic::parseAndCheck(source);
        benchmark::DoNotOptimize(program.get());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PhaseParse);

/** Phase 2: compilation cost per implementation (one-time,
 *  forkserver-like; caching disabled to measure the compile). */
void
BM_PhaseCompile(benchmark::State &state)
{
    const auto impl =
        core::ImplementationRegistry::global().make("gcc:-O2");
    core::CompileContext ctx;
    ctx.useCache = false; // measure the compile, not the cache hit
    for (auto _ : state) {
        auto artifact = impl->compile(targetProgram(), ctx);
        benchmark::DoNotOptimize(artifact.get());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PhaseCompile);

/** Phase 3 baseline: one plain execution per input (the fuzzer
 *  without CompDiff). */
void
BM_PhaseExecute(benchmark::State &state)
{
    const auto impl =
        core::ImplementationRegistry::global().make("clang:-O2");
    const auto limits = benchLimits();
    auto artifact = impl->compile(targetProgram());
    auto executor = impl->makeExecutor(artifact, limits);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        auto raw = executor->execute(workloadInput(), 0,
                                     limits.maxInstructions);
        instructions += raw.instructions;
        benchmark::DoNotOptimize(raw.output.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
    state.counters["insns_per_sec"] = benchmark::Counter(
        static_cast<double>(instructions),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PhaseExecute);

/** Phase 4, the paper's overhead axis: CompDiff with a
 *  k-implementation oracle on `jobs` worker threads. */
void
BM_CompDiff(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    const auto jobs = static_cast<std::size_t>(state.range(1));
    core::ImplementationSet subset;
    if (k == 2) {
        // The paper's budget recommendation: different vendors with
        // unoptimizing / aggressively optimizing levels.
        subset = core::ImplementationRegistry::global().parse(
            "gcc:-O0,clang:-O3");
    } else {
        const auto impls = core::paper10Implementations();
        subset.assign(impls.begin(),
                      impls.begin() + static_cast<long>(k));
    }
    core::DiffOptions options;
    options.limits = benchLimits();
    options.jobs = jobs;
    core::DiffEngine engine(targetProgram(), subset, options);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        auto result = engine.runInput(workloadInput());
        for (const auto &obs : result.observations)
            instructions += obs.instructions;
        benchmark::DoNotOptimize(result.divergent);
    }
    // items_per_second = fuzz-loop inputs/sec; the counters report
    // the raw per-implementation execution rate (k per input) and
    // the guest-instruction rate across all implementations.
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
    state.counters["oracle_execs_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations() * k),
        benchmark::Counter::kIsRate);
    state.counters["insns_per_sec"] = benchmark::Counter(
        static_cast<double>(instructions),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CompDiff)
    ->ArgNames({"k", "jobs"})
    // Serial sweep over k (the paper's overhead axis)...
    ->Args({2, 1})
    ->Args({5, 1})
    ->Args({10, 1})
    // ...then the thread axis at the full set.
    ->Args({10, 2})
    ->Args({10, 4})
    ->Args({10, 8});

/** Phase 4b, the batching fuzz campaign's shape: the full k = 10
 *  oracle over a deterministic 64-input batch via
 *  DiffEngine::runBatch, implementation-major across the resident
 *  executors. items_per_second counts batch inputs, directly
 *  comparable to BM_CompDiff's inputs/sec. */
void
BM_BatchOracle(benchmark::State &state)
{
    const auto jobs = static_cast<std::size_t>(state.range(0));
    constexpr std::size_t kBatch = 64;
    core::DiffOptions options;
    options.limits = benchLimits();
    options.jobs = jobs;
    core::DiffEngine engine(targetProgram(),
                            core::paper10Implementations(), options);

    // The batch a fuzzer would queue between plot samples: small
    // deterministic variations of the workload input.
    std::vector<support::Bytes> inputs(kBatch, workloadInput());
    std::vector<std::uint64_t> nonce_bases(kBatch);
    for (std::size_t b = 0; b < kBatch; b++) {
        inputs[b][b % inputs[b].size()] ^=
            static_cast<std::uint8_t>(b + 1);
        nonce_bases[b] = b;
    }

    std::uint64_t instructions = 0;
    for (auto _ : state) {
        auto results = engine.runBatch(inputs, nonce_bases);
        for (const auto &result : results)
            for (const auto &obs : result.observations)
                instructions += obs.instructions;
        benchmark::DoNotOptimize(results.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kBatch));
    state.counters["oracle_execs_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations() * kBatch *
                            engine.size()),
        benchmark::Counter::kIsRate);
    state.counters["insns_per_sec"] = benchmark::Counter(
        static_cast<double>(instructions),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchOracle)
    ->ArgNames({"jobs"})
    ->Arg(1)
    ->Arg(4);

} // namespace

/**
 * Custom entry point: like BENCHMARK_MAIN(), but defaults the JSON
 * file report to BENCH_overhead.json so every run leaves a
 * machine-readable artifact without extra flags. Explicit
 * --benchmark_out=/--benchmark_out_format= flags win.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; i++) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
            has_out = true;
    }
    static char out_flag[] = "--benchmark_out=BENCH_overhead.json";
    static char format_flag[] = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag);
        args.push_back(format_flag);
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count,
                                               args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
