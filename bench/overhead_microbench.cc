/**
 * @file
 * Reproduces the paper's Section 5 overhead discussion with
 * google-benchmark: the run-time cost of CompDiff per generated
 * input as a function of the number of compiler implementations
 * (1 = plain fuzzing, 2 = the recommended budget subset, 10 = the
 * full set). The paper reports roughly 10x for the full set and 2x
 * for a two-implementation subset.
 *
 * A second axis measures the parallel ExecutionService: the same
 * k = 10 oracle with 1/2/4/8 worker threads. On a multicore host the
 * full-set overhead shrinks toward the 2x of the budget subset while
 * producing bit-identical observations; on a single-core host the
 * threads>1 rows only show the pool's dispatch overhead.
 */

#include <benchmark/benchmark.h>

#include "compdiff/engine.hh"
#include "compdiff/implementation.hh"
#include "minic/parser.hh"
#include "targets/targets.hh"
#include "vm/vm.hh"

namespace
{

using namespace compdiff;

const minic::Program &
targetProgram()
{
    static const auto program = [] {
        const auto *target = targets::findTarget("pktdump");
        return minic::parseAndCheck(target->source);
    }();
    return *program;
}

const support::Bytes &
workloadInput()
{
    static const support::Bytes input = {80, 1, 17, 34, 3, 2, 60,
                                         4,  2, 48, 5,  7, 2, 3};
    return input;
}

vm::VmLimits
benchLimits()
{
    vm::VmLimits limits;
    limits.stackSize = 1 << 14;
    limits.heapSize = 1 << 15;
    return limits;
}

/** Baseline: one plain execution per input (fuzzer without CompDiff). */
void
BM_PlainExecution(benchmark::State &state)
{
    const auto impl =
        core::ImplementationRegistry::global().make("clang:-O2");
    const auto limits = benchLimits();
    auto artifact = impl->compile(targetProgram());
    auto executor = impl->makeExecutor(artifact, limits);
    for (auto _ : state) {
        auto raw = executor->execute(workloadInput(), 0,
                                     limits.maxInstructions);
        benchmark::DoNotOptimize(raw.output.size());
    }
}
BENCHMARK(BM_PlainExecution);

/** CompDiff with a k-implementation set on `jobs` worker threads. */
void
BM_CompDiff(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    const auto jobs = static_cast<std::size_t>(state.range(1));
    core::ImplementationSet subset;
    if (k == 2) {
        // The paper's budget recommendation: different vendors with
        // unoptimizing / aggressively optimizing levels.
        subset = core::ImplementationRegistry::global().parse(
            "gcc:-O0,clang:-O3");
    } else {
        const auto impls = core::paper10Implementations();
        subset.assign(impls.begin(),
                      impls.begin() + static_cast<long>(k));
    }
    core::DiffOptions options;
    options.limits = benchLimits();
    options.jobs = jobs;
    core::DiffEngine engine(targetProgram(), subset, options);
    for (auto _ : state) {
        auto result = engine.runInput(workloadInput());
        benchmark::DoNotOptimize(result.divergent);
    }
}
BENCHMARK(BM_CompDiff)
    ->ArgNames({"k", "jobs"})
    // Serial sweep over k (the paper's overhead axis)...
    ->Args({2, 1})
    ->Args({5, 1})
    ->Args({10, 1})
    // ...then the thread axis at the full set.
    ->Args({10, 2})
    ->Args({10, 4})
    ->Args({10, 8});

/** Compilation cost per implementation (one-time, forkserver-like). */
void
BM_CompileOneConfig(benchmark::State &state)
{
    const auto impl =
        core::ImplementationRegistry::global().make("gcc:-O2");
    core::CompileContext ctx;
    ctx.useCache = false; // measure the compile, not the cache hit
    for (auto _ : state) {
        auto artifact = impl->compile(targetProgram(), ctx);
        benchmark::DoNotOptimize(artifact.get());
    }
}
BENCHMARK(BM_CompileOneConfig);

} // namespace

BENCHMARK_MAIN();
