/**
 * @file
 * Reproduces Figure 1: the number of bugs each subset of compiler
 * implementations detects on the Juliet-style suite, as a function
 * of subset size (box-and-whisker per size, with the best and worst
 * size-2 subsets called out like the paper's annotations).
 *
 * Usage: fig1_subset_juliet [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "compdiff/subset.hh"
#include "juliet/evaluate.hh"
#include "juliet/suite.hh"
#include "obs/stats.hh"
#include "support/strings.hh"
#include "support/table.hh"

int
main(int argc, char **argv)
{
    using namespace compdiff;
    obs::BenchTelemetry telemetry("fig1_subset_juliet");
    using support::format;

    double scale = 1.0 / 24;
    if (argc > 1)
        scale = std::atof(argv[1]);

    juliet::SuiteBuilder builder(scale);
    const auto cases = builder.buildAll();

    juliet::EvaluationOptions options;
    options.runStatic = false;
    options.runSanitizers = false;
    const auto result = juliet::evaluateSuite(cases, options);

    const auto impls = core::paper10Implementations();
    core::SubsetAnalysis analysis(impls.size());
    for (const auto &hashes : result.badHashVectors)
        analysis.addCase(hashes);

    std::printf("Figure 1: bugs detected by each subset of compiler "
                "implementations (%zu Juliet tests, scale %.4f)\n\n",
                cases.size(), scale);

    const auto all = analysis.enumerateAll();
    double max_detected = 0;
    for (const auto &size_results : all)
        max_detected = std::max(
            max_detected,
            static_cast<double>(
                core::SubsetAnalysis::best(size_results).detected));

    support::TextTable table;
    table.setHeader({"#Impls", "#Subsets", "min", "q1", "median",
                     "q3", "max", "distribution"});
    table.setAlign({support::Align::Right, support::Align::Right,
                    support::Align::Right, support::Align::Right,
                    support::Align::Right, support::Align::Right,
                    support::Align::Right, support::Align::Left});

    for (std::size_t i = 0; i < all.size(); i++) {
        const auto &size_results = all[i];
        const auto stats = core::SubsetAnalysis::stats(size_results);
        table.addRow({
            std::to_string(i + 2),
            std::to_string(size_results.size()),
            format("%.0f", stats.min),
            format("%.0f", stats.q1),
            format("%.0f", stats.median),
            format("%.0f", stats.q3),
            format("%.0f", stats.max),
            support::asciiBox(stats, 0, max_detected, 40),
        });
    }
    std::printf("%s\n", table.str().c_str());

    const auto &pairs = all[0];
    const auto &best = core::SubsetAnalysis::best(pairs);
    const auto &worst = core::SubsetAnalysis::worst(pairs);
    std::printf("best  size-2 subset: %s detects %zu\n",
                best.name(impls).c_str(), best.detected);
    std::printf("worst size-2 subset: %s detects %zu\n",
                worst.name(impls).c_str(), worst.detected);

    const auto &full = all.back()[0];
    std::printf("full set (10 implementations) detects %zu of %zu\n",
                full.detected, analysis.caseCount());
    std::printf("best pair reaches %.0f%% of the full set at ~20%% "
                "of the run-time cost\n",
                100.0 * static_cast<double>(best.detected) /
                    static_cast<double>(
                        std::max<std::size_t>(full.detected, 1)));
    return 0;
}
