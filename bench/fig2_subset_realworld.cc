/**
 * @file
 * Reproduces Figure 2: the number of real-world bugs each subset of
 * compiler implementations detects, computed over the witness hash
 * vectors of the bugs the campaigns recovered.
 *
 * Usage: fig2_subset_realworld [execs_per_target]
 */

#include <cstdio>
#include <cstdlib>

#include "compdiff/subset.hh"
#include "obs/stats.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "targets/campaign.hh"

int
main(int argc, char **argv)
{
    using namespace compdiff;
    obs::BenchTelemetry telemetry("fig2_subset_realworld");
    using support::format;

    targets::CampaignOptions options;
    options.maxExecs = 10'000;
    options.checkSanitizers = false;
    if (argc > 1)
        options.maxExecs =
            static_cast<std::uint64_t>(std::atoll(argv[1]));

    const auto results = targets::runAllCampaigns(options);
    const auto impls = core::paper10Implementations();

    core::SubsetAnalysis analysis(impls.size());
    for (const auto &result : results)
        for (const auto &finding : result.found)
            analysis.addCase(finding.hashVector);

    std::printf("Figure 2: bugs detected by each subset of compiler "
                "implementations on the %zu recovered real-world "
                "bugs\n\n",
                analysis.caseCount());

    const auto all = analysis.enumerateAll();
    double max_detected = 0;
    for (const auto &size_results : all)
        max_detected = std::max(
            max_detected,
            static_cast<double>(
                core::SubsetAnalysis::best(size_results).detected));

    support::TextTable table;
    table.setHeader({"#Impls", "#Subsets", "min", "q1", "median",
                     "q3", "max", "distribution"});
    table.setAlign({support::Align::Right, support::Align::Right,
                    support::Align::Right, support::Align::Right,
                    support::Align::Right, support::Align::Right,
                    support::Align::Right, support::Align::Left});
    for (std::size_t i = 0; i < all.size(); i++) {
        const auto stats = core::SubsetAnalysis::stats(all[i]);
        table.addRow({
            std::to_string(i + 2),
            std::to_string(all[i].size()),
            format("%.0f", stats.min),
            format("%.0f", stats.q1),
            format("%.0f", stats.median),
            format("%.0f", stats.q3),
            format("%.0f", stats.max),
            support::asciiBox(stats, 0, max_detected, 40),
        });
    }
    std::printf("%s\n", table.str().c_str());

    const auto &pairs = all[0];
    const auto &best = core::SubsetAnalysis::best(pairs);
    const auto &worst = core::SubsetAnalysis::worst(pairs);
    std::printf("best  size-2 subset: %s detects %zu\n",
                best.name(impls).c_str(), best.detected);
    std::printf("worst size-2 subset: %s detects %zu\n",
                worst.name(impls).c_str(), worst.detected);
    std::printf("paper: best pairs {gcc-O0, clang-Os} / "
                "{gcc-Os, clang-O0}; worst {clang-O0, clang-O1}.\n");
    return 0;
}
