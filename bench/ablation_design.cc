/**
 * @file
 * Ablation study for the design decisions DESIGN.md Section 5 calls
 * out. Three experiments:
 *
 *  1. PASS ABLATION — disable one UB-exploiting optimization across
 *     all ten implementations and measure how many Juliet bugs
 *     CompDiff loses: quantifies which compiler behavior each
 *     detection class rides on.
 *  2. RQ5 ABLATION — run the timestamping target with and without
 *     output normalization: without it, every input is a (false)
 *     divergence.
 *  3. RQ6 ABLATION — run a partial-timeout workload with and without
 *     the timeout re-examination: without it, truncated outputs
 *     would surface as divergence.
 *
 * Usage: ablation_design [juliet_scale]
 */

#include <cstdio>
#include <cstdlib>
#include <functional>

#include "compdiff/engine.hh"
#include "juliet/suite.hh"
#include "minic/parser.hh"
#include "obs/stats.hh"
#include "support/table.hh"
#include "targets/targets.hh"

namespace
{

using namespace compdiff;

std::size_t
detectedOnSuite(const std::vector<juliet::JulietCase> &cases,
                const std::function<void(compiler::Traits &)> &tweak)
{
    std::size_t detected = 0;
    for (const auto &test : cases) {
        auto program = minic::parseAndCheck(test.badSource);
        core::DiffOptions options;
        options.traitsTweak = tweak;
        core::DiffEngine engine(*program, options);
        detected += engine.runInput(test.input).divergent;
    }
    return detected;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace compdiff;
    obs::BenchTelemetry telemetry("ablation_design");

    double scale = 1.0 / 96;
    if (argc > 1)
        scale = std::atof(argv[1]);

    juliet::SuiteBuilder builder(scale);
    const auto cases = builder.buildAll();
    std::printf("Ablation study (%zu Juliet cases, scale %.4f)\n\n",
                cases.size(), scale);

    // ---- 1. pass ablation --------------------------------------
    struct Knob
    {
        const char *name;
        std::function<void(compiler::Traits &)> tweak;
    };
    const Knob knobs[] = {
        {"full pipeline", {}},
        {"- ubguardfold",
         [](compiler::Traits &t) { t.foldUbGuards = false; }},
        {"- alwaystruecmp",
         [](compiler::Traits &t) { t.alwaysTrueIncCmp = false; }},
        {"- widenmul",
         [](compiler::Traits &t) { t.widenMulToLong = false; }},
        {"- deadstore",
         [](compiler::Traits &t) { t.deadStoreElim = false; }},
        {"- nullexploit",
         [](compiler::Traits &t) { t.nullDerefExploit = false; }},
        {"- all UB-exploiting passes",
         [](compiler::Traits &t) {
             t.foldUbGuards = false;
             t.alwaysTrueIncCmp = false;
             t.widenMulToLong = false;
             t.deadStoreElim = false;
             t.nullDerefExploit = false;
         }},
    };

    support::TextTable table;
    table.setHeader({"pipeline", "bugs detected", "delta"});
    table.setAlign({support::Align::Left, support::Align::Right,
                    support::Align::Right});
    std::size_t baseline = 0;
    for (const auto &knob : knobs) {
        const std::size_t detected =
            detectedOnSuite(cases, knob.tweak);
        if (!knob.tweak)
            baseline = detected;
        table.addRow({knob.name, std::to_string(detected),
                      knob.tweak ? std::to_string(
                                       static_cast<long>(detected) -
                                       static_cast<long>(baseline))
                                 : "-"});
    }
    std::printf("1. optimization-pass ablation (CompDiff "
                "detections on the bad variants)\n\n%s\n",
                table.str().c_str());
    std::printf("Even with every UB-exploiting pass off, layout/"
                "fill/order divergence keeps most detections alive "
                "— the oracle does not depend on one transform.\n\n");

    // ---- 2. RQ5: output normalization ---------------------------
    {
        const auto *netshark = targets::findTarget("netshark");
        auto program = minic::parseAndCheck(netshark->source);

        core::DiffOptions with;
        core::DiffOptions without;
        without.normalizer = core::OutputNormalizer();
        core::DiffEngine normalized(*program, with);
        core::DiffEngine raw(*program, without);

        // Timestamp-only frames: benign inputs.
        std::size_t false_raw = 0;
        std::size_t false_normalized = 0;
        for (int seq = 0; seq < 16; seq++) {
            const support::Bytes input = {
                87, 1, static_cast<std::uint8_t>(seq)};
            false_raw += raw.runInput(input).divergent;
            false_normalized +=
                normalized.runInput(input).divergent;
        }
        std::printf("2. RQ5 output normalization on netshark "
                    "(16 benign timestamped inputs)\n"
                    "   raw comparison:        %zu/16 false "
                    "divergences\n"
                    "   normalized comparison: %zu/16 false "
                    "divergences\n\n",
                    false_raw, false_normalized);
    }

    // ---- 3. RQ6: timeout re-examination --------------------------
    {
        auto program = minic::parseAndCheck(R"(
            int main() {
                char n;
                int bound = (n & 255) * 40;
                int acc = 0;
                for (int i = 0; i < bound; i += 1) { acc += 3; }
                print_int(acc);
                return 0;
            }
        )");
        core::DiffOptions with;
        with.limits.maxInstructions = 20'000;
        core::DiffOptions without = with;
        without.retryTimeouts = false;

        core::DiffEngine retrying(*program, with);
        core::DiffEngine strict(*program, without);
        auto resolved = retrying.runInput({});
        auto unresolved = strict.runInput({});
        std::printf(
            "3. RQ6 timeout re-examination (uninitialized loop "
            "bound, tight budget)\n"
            "   with retries:    divergent=%d unresolvedTimeout=%d "
            "(real bug surfaced)\n"
            "   without retries: divergent=%d unresolvedTimeout=%d "
            "(suppressed, would otherwise be a truncated-output "
            "false positive)\n",
            resolved.divergent, resolved.unresolvedTimeout,
            unresolved.divergent, unresolved.unresolvedTimeout);
    }
    return 0;
}
