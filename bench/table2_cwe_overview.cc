/**
 * @file
 * Reproduces Table 2: overview of the selected CWEs.
 *
 * Prints the paper's catalog (CWE id, description, paper test count)
 * next to the number of cases this repository synthesizes at the
 * default scale.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "juliet/suite.hh"
#include "obs/stats.hh"
#include "support/table.hh"

int
main(int argc, char **argv)
{
    using namespace compdiff;
    obs::BenchTelemetry telemetry("table2_cwe_overview");

    double scale = 1.0 / 16;
    if (argc > 1)
        scale = std::atof(argv[1]);

    juliet::SuiteBuilder builder(scale);
    support::TextTable table;
    table.setHeader({"CWE-ID", "Description", "#Tests (paper)",
                     "#Tests (ours)"});
    table.setAlign({support::Align::Left, support::Align::Left,
                    support::Align::Right, support::Align::Right});

    int paper_total = 0;
    std::size_t our_total = 0;
    for (const auto &info : juliet::cweCatalog()) {
        const std::size_t ours = builder.countFor(info.cwe);
        table.addRow({"CWE-" + std::to_string(info.cwe),
                      info.description,
                      std::to_string(info.paperCount),
                      std::to_string(ours)});
        paper_total += info.paperCount;
        our_total += ours;
    }
    table.addSeparator();
    table.addRow({"Total", "", std::to_string(paper_total),
                  std::to_string(our_total)});

    std::printf("Table 2: Overview of selected CWEs "
                "(scale %.4f)\n\n%s\n",
                scale, table.str().c_str());
    return 0;
}
