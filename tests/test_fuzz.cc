/**
 * @file
 * Tests for the greybox fuzzer and its CompDiff integration.
 */

#include <gtest/gtest.h>

#include "fuzz/fuzzer.hh"
#include "fuzz/mutator.hh"
#include "minic/parser.hh"
#include "obs/stats.hh"

namespace
{

using namespace compdiff;
using fuzz::Fuzzer;
using fuzz::FuzzOptions;
using fuzz::Mutator;
using support::Bytes;

TEST(Mutator, OperatorsPreserveSizeBounds)
{
    Mutator mutator(support::Rng(1), 32);
    Bytes data = {1, 2, 3, 4};
    for (int i = 0; i < 500; i++) {
        data = mutator.mutate(data, {});
        ASSERT_LE(data.size(), 32u);
    }
}

TEST(Mutator, DeterministicPerSeed)
{
    Mutator a(support::Rng(7), 64);
    Mutator b(support::Rng(7), 64);
    Bytes seed = {10, 20, 30};
    for (int i = 0; i < 50; i++)
        EXPECT_EQ(a.mutate(seed, {}), b.mutate(seed, {}));
}

TEST(Mutator, SpliceUsesOtherSeed)
{
    Mutator mutator(support::Rng(3), 64);
    Bytes data = {1, 1, 1};
    Bytes other = {9, 9, 9, 9, 9, 9};
    bool saw_nine = false;
    for (int i = 0; i < 100 && !saw_nine; i++) {
        Bytes child = data;
        mutator.spliceWith(child, other);
        for (auto b : child)
            saw_nine |= b == 9;
    }
    EXPECT_TRUE(saw_nine);
}

TEST(Fuzzer, CoverageGrowsCorpus)
{
    // A byte-switch target: each case is a new path.
    auto program = minic::parseAndCheck(R"(
        int main() {
            int b = input_byte(0);
            if (b == 'A') { print_str("a"); }
            else if (b == 'B') { print_str("b"); }
            else if (b == 'C') { print_str("c"); }
            else { print_str("?"); }
            if (input_byte(1) == 'X') { print_str("x"); }
            return 0;
        }
    )");
    FuzzOptions options;
    options.maxExecs = 3000;
    options.enableCompDiff = false;
    Fuzzer fuzzer(*program, {{'0', '0'}}, options);
    auto stats = fuzzer.run();
    EXPECT_EQ(stats.execs, 3000u);
    EXPECT_GT(stats.seeds, 1u);
    EXPECT_GT(stats.edges, 2u);
    EXPECT_EQ(stats.diffs, 0u);
}

TEST(Fuzzer, FindsGuardedCrash)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            if (input_byte(0) == 'Z') {
                int z = input_size() - input_size();
                return 1 / z;
            }
            return 0;
        }
    )");
    FuzzOptions options;
    options.maxExecs = 8000;
    options.enableCompDiff = false;
    Fuzzer fuzzer(*program, {{'A'}}, options);
    auto stats = fuzzer.run();
    EXPECT_GE(stats.crashes, 1u);
    ASSERT_FALSE(fuzzer.crashes().empty());
    EXPECT_EQ(fuzzer.crashes()[0].exitClass, "crash:fpe");
}

TEST(Fuzzer, CompDiffOracleFindsUnstableCode)
{
    // The bug (uninitialized read) never crashes: only the CompDiff
    // oracle can see it.
    auto program = minic::parseAndCheck(R"(
        int main() {
            if (input_byte(0) == 'U') {
                int l;
                print_int(l);
                probe(42);
            } else {
                print_str("fine");
            }
            return 0;
        }
    )");
    FuzzOptions options;
    options.maxExecs = 6000;
    Fuzzer fuzzer(*program, {{'A'}}, options);
    auto stats = fuzzer.run();
    EXPECT_EQ(stats.crashes, 0u);
    ASSERT_GE(stats.diffs, 1u);
    const auto &diff = fuzzer.diffs()[0];
    EXPECT_TRUE(diff.result.divergent);
    ASSERT_FALSE(diff.probes.empty());
    EXPECT_EQ(diff.probes[0], 42);
    EXPECT_GT(stats.compdiffExecs, stats.execs);
}

TEST(Fuzzer, DiffsDedupedBySignature)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            if (input_byte(0) > 100) {
                int l;
                print_int(l);
                probe(1);
            }
            return 0;
        }
    )");
    FuzzOptions options;
    options.maxExecs = 4000;
    Fuzzer fuzzer(*program, {{200}}, options);
    fuzzer.run();
    // Many inputs trigger the same divergence; one record.
    EXPECT_EQ(fuzzer.diffs().size(), 1u);
}

TEST(Fuzzer, StableTargetProducesNoDiffs)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            int acc = 0;
            for (int i = 0; i < input_size(); i += 1) {
                acc += input_byte(i);
            }
            print_int(acc);
            return 0;
        }
    )");
    FuzzOptions options;
    options.maxExecs = 2000;
    Fuzzer fuzzer(*program, {{1, 2, 3}}, options);
    auto stats = fuzzer.run();
    EXPECT_EQ(stats.diffs, 0u); // zero false positives
    EXPECT_EQ(stats.crashes, 0u);
}

TEST(Fuzzer, SanitizerOnFuzzBinary)
{
    // Sanitizers stay compatible with the loop: B_fuzz is built with
    // ASan and its reports count as crashes.
    auto program = minic::parseAndCheck(R"(
        int main() {
            char buf[4];
            int i = input_byte(0);
            if (i > 3 && i < 10) { buf[i] = 1; }
            return 0;
        }
    )");
    FuzzOptions options;
    options.maxExecs = 6000;
    options.enableCompDiff = false;
    options.fuzzConfig = {compiler::Vendor::Clang,
                          compiler::OptLevel::O1,
                          compiler::Sanitizer::ASan};
    Fuzzer fuzzer(*program, {{0}}, options);
    auto stats = fuzzer.run();
    ASSERT_GE(stats.crashes, 1u);
    EXPECT_FALSE(fuzzer.crashes()[0].sanReports.empty());
}

TEST(Fuzzer, StatsSnapshotTotalsAreConsistent)
{
    // A short CompDiff campaign must export a parseable
    // fuzzer_stats snapshot whose per-config execution counts add
    // up: compdiff_execs == sum(execs_impl_*), and every
    // implementation ran at least once per B_fuzz execution.
    auto program = minic::parseAndCheck(R"(
        int main() {
            if (input_byte(0) == 'U') {
                int l;
                print_int(l);
            }
            return 0;
        }
    )");
    FuzzOptions options;
    options.maxExecs = 1500;
    Fuzzer fuzzer(*program, {{'A'}}, options);
    auto stats = fuzzer.run();

    const auto snapshot = fuzzer.statsSnapshot();
    const std::string text = obs::renderFuzzerStats(snapshot);
    const auto kv = obs::parseFuzzerStats(text);
    EXPECT_EQ(kv.at("execs_done"),
              std::to_string(stats.execs));
    EXPECT_EQ(kv.at("saved_diffs"),
              std::to_string(stats.diffs));
    EXPECT_EQ(kv.at("corpus_count"),
              std::to_string(stats.seeds));

    const auto parsed = obs::snapshotFromFuzzerStats(text);
    ASSERT_EQ(parsed.perConfigExecs.size(),
              options.diffImpls.size());
    std::uint64_t per_config_total = 0;
    for (const auto &[name, execs] : parsed.perConfigExecs) {
        EXPECT_GE(execs, stats.execs) << name;
        per_config_total += execs;
    }
    EXPECT_EQ(per_config_total, parsed.compdiffExecs);
    EXPECT_EQ(parsed.compdiffExecs, stats.compdiffExecs);

    // Discovery clocks are execution counts and must be plausible.
    EXPECT_GT(stats.lastFindExec, 0u);
    EXPECT_LE(stats.lastFindExec, stats.execs);
    EXPECT_EQ(parsed.lastDiffExec, stats.lastDiffExec);

    // The plot series ends at the final totals.
    const auto &rows = fuzzer.plotData().rows();
    ASSERT_FALSE(rows.empty());
    EXPECT_EQ(rows.back().execs, stats.execs);
    EXPECT_EQ(rows.back().diffs, stats.diffs);
    EXPECT_EQ(rows.back().compdiffExecs, stats.compdiffExecs);
}

TEST(Fuzzer, DeterministicCampaigns)
{
    const char *source = R"(
        int main() {
            if (input_byte(0) == 'Q') { print_int(1 / (input_size() - 1)); }
            return 0;
        }
    )";
    auto p1 = minic::parseAndCheck(source);
    auto p2 = minic::parseAndCheck(source);
    FuzzOptions options;
    options.maxExecs = 2000;
    options.enableCompDiff = false;
    Fuzzer f1(*p1, {{'A'}}, options);
    Fuzzer f2(*p2, {{'A'}}, options);
    auto s1 = f1.run();
    auto s2 = f2.run();
    EXPECT_EQ(s1.seeds, s2.seeds);
    EXPECT_EQ(s1.crashes, s2.crashes);
    EXPECT_EQ(s1.edges, s2.edges);
}

} // namespace
