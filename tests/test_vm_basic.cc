/**
 * @file
 * End-to-end tests of the compile+execute pipeline: language
 * semantics that must hold under EVERY compiler configuration.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "minic/parser.hh"
#include "support/logging.hh"
#include "vm/vm.hh"

namespace
{

using namespace compdiff;
using compiler::CompilerConfig;
using compiler::OptLevel;
using compiler::Vendor;
using vm::ExecutionResult;
using vm::Termination;
using vm::Vm;

ExecutionResult
runWith(std::string_view source, const CompilerConfig &config,
        const support::Bytes &input = {})
{
    auto program = minic::parseAndCheck(source);
    compiler::Compiler comp(*program);
    auto module = comp.compile(config);
    Vm machine(module, config);
    return machine.run(input);
}

/** Run under every standard implementation and require identical
 *  output — the well-defined-program property CompDiff relies on. */
std::string
runAllExpectStable(std::string_view source,
                   const support::Bytes &input = {})
{
    auto program = minic::parseAndCheck(source);
    compiler::Compiler comp(*program);
    std::string first;
    std::string first_name;
    for (const auto &config : compiler::standardImplementations()) {
        auto module = comp.compile(config);
        Vm machine(module, config);
        auto result = machine.run(input);
        EXPECT_EQ(result.termination, Termination::Exit)
            << config.name();
        const std::string key =
            result.output + "|" + result.exitClass();
        if (first_name.empty()) {
            first = key;
            first_name = config.name();
        } else {
            EXPECT_EQ(key, first)
                << "divergence between " << first_name << " and "
                << config.name();
        }
    }
    return first;
}

const CompilerConfig kGccO0{Vendor::Gcc, OptLevel::O0,
                            compiler::Sanitizer::None};
const CompilerConfig kClangO2{Vendor::Clang, OptLevel::O2,
                              compiler::Sanitizer::None};

TEST(VmBasic, ReturnCode)
{
    auto result = runWith("int main() { return 41 + 1; }", kGccO0);
    EXPECT_EQ(result.termination, Termination::Exit);
    EXPECT_EQ(result.exitCode, 42);
}

TEST(VmBasic, PrintBuiltins)
{
    auto result = runWith(R"(
        int main() {
            print_int(-5);
            print_str(" ");
            print_uint(7U);
            print_str(" ");
            print_long(1234567890123L);
            print_char('!');
            newline();
            print_f(1.5);
            return 0;
        }
    )",
                          kGccO0);
    EXPECT_EQ(result.output, "-5 7 1234567890123!\n1.5");
}

TEST(VmBasic, ArithmeticStable)
{
    runAllExpectStable(R"(
        int main() {
            int a = 1000;
            int b = -7;
            print_int(a / b); newline();
            print_int(a % b); newline();
            print_int(a * b); newline();
            uint u = 4000000000U;
            print_uint(u + 1000000000U); newline();
            long big = 123456789L * 100000L;
            print_long(big); newline();
            return 0;
        }
    )");
}

TEST(VmBasic, ControlFlowStable)
{
    const auto out = runAllExpectStable(R"(
        int main() {
            int total = 0;
            for (int i = 0; i < 10; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i == 9) { break; }
                total += i;
            }
            int j = 0;
            while (j < 3) { total = total * 2; j = j + 1; }
            print_int(total);
            return 0;
        }
    )");
    // 1+3+5+7 = 16; doubled three times = 128.
    EXPECT_EQ(out, "128|exit:0");
}

TEST(VmBasic, RecursionAndCalls)
{
    auto result = runWith(R"(
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { print_int(fib(15)); return 0; }
    )",
                          kClangO2);
    EXPECT_EQ(result.output, "610");
}

TEST(VmBasic, PointersAndArraysStable)
{
    const auto out = runAllExpectStable(R"(
        int sum(int *arr, int n) {
            int total = 0;
            for (int i = 0; i < n; i += 1) { total += arr[i]; }
            return total;
        }
        int main() {
            int data[5];
            for (int i = 0; i < 5; i += 1) { data[i] = i * i; }
            int *p = data;
            p[1] = 100;
            *(p + 2) = 50;
            print_int(sum(data, 5)); newline();
            long span = &data[4] - &data[0];
            print_long(span);
            return 0;
        }
    )");
    EXPECT_EQ(out, "175\n4|exit:0");
}

TEST(VmBasic, StructsStable)
{
    const auto out = runAllExpectStable(R"(
        struct packet {
            int kind;
            char name[8];
            long payload;
        };
        void fill(struct packet *p, int kind) {
            p->kind = kind;
            p->payload = (long)kind * 1000L;
            strcpy(p->name, "pkt");
        }
        int main() {
            struct packet p;
            fill(&p, 3);
            print_int(p.kind);
            print_str(p.name);
            print_long(p.payload);
            return 0;
        }
    )");
    EXPECT_EQ(out, "3pkt3000|exit:0");
}

TEST(VmBasic, GlobalsStable)
{
    const auto out = runAllExpectStable(R"(
        int counter = 10;
        char message[16];
        char *greeting = "hi";
        int bump() { counter += 1; return counter; }
        int main() {
            bump(); bump();
            print_int(counter); newline();
            print_str(greeting);
            return 0;
        }
    )");
    EXPECT_EQ(out, "12\nhi|exit:0");
}

TEST(VmBasic, HeapStable)
{
    const auto out = runAllExpectStable(R"(
        int main() {
            char *buf = malloc(32L);
            if (buf == 0) { return 1; }
            memset(buf, 65, 5L);
            buf[5] = 0;
            print_str(buf); newline();
            int *nums = (int *)malloc(40L);
            for (int i = 0; i < 10; i += 1) { nums[i] = i; }
            int total = 0;
            for (int i = 0; i < 10; i += 1) { total += nums[i]; }
            print_int(total);
            free(buf);
            free((char *)nums);
            return 0;
        }
    )");
    EXPECT_EQ(out, "AAAAA\n45|exit:0");
}

TEST(VmBasic, StringBuiltinsStable)
{
    const auto out = runAllExpectStable(R"(
        int main() {
            char buf[32];
            strcpy(buf, "hello");
            print_long(strlen(buf)); newline();
            print_int(strcmp(buf, "hello")); newline();
            print_int(strcmp(buf, "help")); newline();
            memcpy(buf, "HE", 2L);
            print_str(buf);
            return 0;
        }
    )");
    EXPECT_EQ(out, "5\n0\n-1\nHEllo|exit:0");
}

TEST(VmBasic, InputBuiltins)
{
    auto result = runWith(R"(
        int main() {
            print_int(input_size()); newline();
            print_int(input_byte(0)); newline();
            print_int(input_byte(99)); newline();
            int b = read_byte();
            int c = read_byte();
            print_int(b + c);
            return 0;
        }
    )",
                          kGccO0, support::Bytes{10, 20, 30});
    EXPECT_EQ(result.output, "3\n10\n-1\n30");
}

TEST(VmBasic, DivisionByZeroTraps)
{
    auto result = runWith(R"(
        int main() {
            int z = input_size();
            print_int(7 / z);
            return 0;
        }
    )",
                          kGccO0);
    EXPECT_EQ(result.termination, Termination::Trap);
    EXPECT_EQ(result.exitClass(), "crash:fpe");
}

TEST(VmBasic, NullDerefTraps)
{
    auto result = runWith(R"(
        int main() {
            int *p = 0;
            return *p;
        }
    )",
                          kGccO0);
    EXPECT_EQ(result.exitClass(), "crash:segv");
}

TEST(VmBasic, InstructionBudgetIsTimeout)
{
    auto result = runWith(R"(
        int main() {
            int x = 0;
            while (1) { x += 1; }
            return x;
        }
    )",
                          kGccO0);
    EXPECT_TRUE(result.timedOut());
    EXPECT_EQ(result.exitClass(), "timeout");
}

TEST(VmBasic, StackOverflowDetected)
{
    auto result = runWith(R"(
        int deep(int n) { return deep(n + 1); }
        int main() { return deep(0); }
    )",
                          kGccO0);
    EXPECT_EQ(result.termination, Termination::StackOverflow);
}

TEST(VmBasic, ExitAndAbort)
{
    auto r1 = runWith("int main() { exit(7); return 0; }", kGccO0);
    EXPECT_EQ(r1.exitCode, 7);
    auto r2 = runWith("int main() { abort(); return 0; }", kGccO0);
    EXPECT_EQ(r2.termination, Termination::RuntimeAbort);
}

TEST(VmBasic, TernaryAndLogicalStable)
{
    const auto out = runAllExpectStable(R"(
        int sideeffect(int *p) { *p += 1; return 1; }
        int main() {
            int calls = 0;
            int v = 0 && sideeffect(&calls);
            int w = 1 || sideeffect(&calls);
            print_int(calls); newline();
            print_int(v + w); newline();
            print_int(5 > 3 ? 10 : 20);
            return 0;
        }
    )");
    EXPECT_EQ(out, "0\n1\n10|exit:0");
}

TEST(VmBasic, CompoundAssignsStable)
{
    const auto out = runAllExpectStable(R"(
        int main() {
            int a = 10;
            a += 5; a -= 3; a *= 2; a /= 4; a %= 5;
            long b = 1L;
            b <<= 10;
            b >>= 2;
            uint c = 0xf0U;
            c &= 0x3cU; c |= 3U; c ^= 1U;
            print_int(a); newline();
            print_long(b); newline();
            print_uint(c);
            return 0;
        }
    )");
    EXPECT_EQ(out, "1\n256\n50|exit:0");
}

TEST(VmBasic, DoubleMathStable)
{
    const auto out = runAllExpectStable(R"(
        int main() {
            double x = 2.0;
            double y = sqrt_f(x * 8.0);
            print_f(y); newline();
            print_f(floor_f(3.7)); newline();
            print_int((int)(y + 0.5));
            return 0;
        }
    )");
    EXPECT_EQ(out, "4\n3\n4|exit:0");
}

TEST(VmBasic, CharSignedness)
{
    auto result = runWith(R"(
        int main() {
            char c = 200;
            print_int(c);
            return 0;
        }
    )",
                          kClangO2);
    EXPECT_EQ(result.output, "-56"); // char is signed 8-bit
}

TEST(VmBasic, MissingMainIsFatal)
{
    auto program = minic::parseAndCheck("int f() { return 0; }");
    compiler::Compiler comp(*program);
    auto module = comp.compile(kGccO0);
    Vm machine(module, kGccO0);
    EXPECT_THROW(machine.run({}), compdiff::support::FatalError);
}

} // namespace
