/**
 * @file
 * Tests for the pluggable implementation layer: the registry's spec
 * grammar, the simulated-compiler backend's id stability, the
 * reference-interpreter backend's agreement with the simulated
 * pipeline on UB-free programs, and the cross-backend oracle power
 * that motivates it (a shared-fate miscompile all ten simulated
 * configurations agree on is invisible to paper10 but flagged the
 * moment the reference interpreter joins the set).
 */

#include <gtest/gtest.h>

#include "compdiff/engine.hh"
#include "compdiff/implementation.hh"
#include "compiler/config.hh"
#include "minic/parser.hh"

namespace
{

using namespace compdiff;
using core::DiffEngine;
using core::DiffOptions;
using core::ImplementationRegistry;

std::vector<std::string>
idsOf(const core::ImplementationSet &impls)
{
    std::vector<std::string> ids;
    for (const auto &impl : impls)
        ids.push_back(impl->id());
    return ids;
}

TEST(Registry, Paper10MatchesStandardImplementations)
{
    const auto impls =
        ImplementationRegistry::global().parse("paper10");
    const auto configs = compiler::standardImplementations();
    ASSERT_EQ(impls.size(), configs.size());
    ASSERT_EQ(impls.size(), 10u);
    for (std::size_t i = 0; i < impls.size(); i++) {
        EXPECT_EQ(impls[i]->id(), configs[i].name());
        ASSERT_NE(impls[i]->simulatedConfig(), nullptr);
        EXPECT_EQ(impls[i]->simulatedConfig()->name(),
                  configs[i].name());
    }
}

TEST(Registry, ParsesFamilyArgSpecs)
{
    auto &registry = ImplementationRegistry::global();
    EXPECT_EQ(registry.make("gcc:-O2")->id(), "gcc-O2");
    EXPECT_EQ(registry.make("clang:-Os:ubsan")->id(),
              "clang-Os+ubsan");
    EXPECT_EQ(registry.make("ref")->id(), "ref");
    // Legacy single-token names (as printed in diff summaries)
    // resolve through compiler::configFromName.
    EXPECT_EQ(registry.make("gcc-O2")->id(), "gcc-O2");
    EXPECT_EQ(registry.make("clang-O1+asan")->id(), "clang-O1+asan");
}

TEST(Registry, ParsesListsAndAliases)
{
    auto &registry = ImplementationRegistry::global();
    EXPECT_EQ(idsOf(registry.parse("gcc:-O0,ref")),
              (std::vector<std::string>{"gcc-O0", "ref"}));
    EXPECT_EQ(registry.parse("all").size(), 11u);
    EXPECT_EQ(registry.parse("all").back()->id(), "ref");
    EXPECT_EQ(registry.parse(" gcc:-O1 , clang:-O3 ").size(), 2u);
    EXPECT_FALSE(registry.make("ref")->describe().empty());
    EXPECT_FALSE(registry.make("gcc:-O2")->describe().empty());
}

TEST(Registry, KnownFamiliesAreListed)
{
    const auto families =
        ImplementationRegistry::global().families();
    EXPECT_NE(std::find(families.begin(), families.end(), "gcc"),
              families.end());
    EXPECT_NE(std::find(families.begin(), families.end(), "clang"),
              families.end());
    EXPECT_NE(std::find(families.begin(), families.end(), "ref"),
              families.end());
}

// UB-free programs must agree across the full 11-implementation set
// (ten simulated configurations plus the reference interpreter):
// the tree-walking backend mirrors the lowering conversion rules and
// the VM runtime byte for byte.
TEST(RefBackend, UbFreeProgramsShowZeroDivergence)
{
    const char *programs[] = {
        // Integer arithmetic, conversions, shifts, comparisons.
        R"(int main() {
            int a = 1000; int b = 0 - 37;
            long p = (long)a * b;
            uint u = 4000000000;
            print_long(p); newline();
            print_uint(u + 295u); newline();
            print_int((a << 3) / (b >> 1)); newline();
            print_hex((ulong)u * 3ul); newline();
            char c = 200;
            print_int(c); newline();
            return a > b;
        })",
        // Control flow, arrays, structs, pointers.
        R"(struct Pt { int x; int y; };
        int sum(int *v, int n) {
            int s = 0;
            for (int i = 0; i < n; i += 1) { s += v[i]; }
            return s;
        }
        int main() {
            int vals[5];
            for (int i = 0; i < 5; i += 1) { vals[i] = i * i; }
            struct Pt p; p.x = sum(vals, 5); p.y = 0 - p.x;
            print_int(p.x); print_int(p.y); newline();
            int *q = &vals[2];
            print_int(*q + q[1]);
            return 0;
        })",
        // Heap, memset/memcpy, strings.
        R"(int main() {
            char *buf = malloc(32);
            memset(buf, 65, 8);
            buf[8] = 0;
            print_str(buf); newline();
            char *copy = malloc(32);
            memcpy(copy, buf, 9);
            print_int(strlen(copy)); newline();
            free(copy); free(buf);
            return 0;
        })",
        // Doubles (IEEE-exact operations only).
        R"(int main() {
            double d = 2.25;
            double r = sqrt_f(d * 4.0) + floor_f(1.75);
            print_f(r); newline();
            print_int((int)(r * 2.0));
            return 0;
        })",
        // Input-dependent branching and recursion.
        R"(int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() {
            int n = input_byte(0) % 10;
            if (n < 0) { n = 0; }
            print_int(fib(n));
            return 0;
        })",
    };
    const auto impls = ImplementationRegistry::global().parse("all");
    ASSERT_EQ(impls.size(), 11u);
    for (const char *source : programs) {
        auto program = minic::parseAndCheck(source);
        DiffEngine engine(*program, impls);
        auto result = engine.runInput({7, 3});
        EXPECT_FALSE(result.divergent)
            << source << "\n"
            << result.summary();
        EXPECT_EQ(result.classCount, 1u) << source;
    }
}

// The new oracle power: seed a *shared-fate* miscompile (every
// simulated configuration strength-reduces signed x % 8 to x & 7
// without the negative fixup). All ten agree on the wrong answer, so
// paper10 is blind — only a backend with independent semantics (the
// reference interpreter) exposes it.
TEST(RefBackend, CrossBackendDefectDetection)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            int x = 0 - input_byte(0);
            print_int(x % 8);
            return 0;
        }
    )");
    DiffOptions seeded;
    seeded.traitsTweak = [](compiler::Traits &t) {
        t.bugRemPow2 = true;
    };
    const support::Bytes input = {9}; // -9 % 8 == -1; (-9)&7 == 7

    // All ten simulated configurations share the defect: consistent,
    // but consistently wrong.
    DiffEngine blind(*program, seeded);
    auto agree = blind.runInput(input);
    EXPECT_FALSE(agree.divergent);
    EXPECT_EQ(agree.observations[0].normalizedOutput, "7");

    // Adding the reference interpreter (which has no Traits and
    // ignores the tweak) breaks the shared fate.
    auto &registry = ImplementationRegistry::global();
    DiffEngine cross(*program, registry.parse("gcc:-O0,ref"),
                     seeded);
    auto caught = cross.runInput(input);
    EXPECT_TRUE(caught.divergent);
    ASSERT_EQ(caught.observations.size(), 2u);
    EXPECT_EQ(caught.observations[0].impl, "gcc-O0");
    EXPECT_EQ(caught.observations[0].normalizedOutput, "7");
    EXPECT_EQ(caught.observations[1].impl, "ref");
    EXPECT_EQ(caught.observations[1].normalizedOutput, "-1");

    // Without the seeded defect the same pair agrees.
    DiffEngine clean(*program, registry.parse("gcc:-O0,ref"));
    EXPECT_FALSE(clean.runInput(input).divergent);
}

// Regression (compile-cache keying): a traitsTweak-mutated pipeline
// must never reuse a module cached for the stock traits of the same
// (program, implementation) pair, and vice versa.
TEST(CompileCache, TraitsTweakIsPartOfTheKey)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            int x = 0 - input_byte(0);
            print_int(x % 8);
            return 0;
        }
    )");
    const auto impls =
        ImplementationRegistry::global().parse("gcc:-O2");
    const support::Bytes input = {9};

    // Warm the cache with the stock pipeline first.
    DiffEngine stock(*program, impls);
    auto before = stock.runInput(input);
    EXPECT_EQ(before.observations[0].normalizedOutput, "-1");

    // The tweaked engine must compile fresh, not hit the stock entry.
    DiffOptions seeded;
    seeded.traitsTweak = [](compiler::Traits &t) {
        t.bugRemPow2 = true;
    };
    DiffEngine tweaked(*program, impls, seeded);
    auto after = tweaked.runInput(input);
    EXPECT_EQ(after.observations[0].normalizedOutput, "7");

    // And a fresh stock engine must not pick up the tweaked module.
    DiffEngine stock2(*program, impls);
    EXPECT_EQ(stock2.runInput(input).observations[0].normalizedOutput,
              "-1");
}

} // namespace
