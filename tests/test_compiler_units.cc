/**
 * @file
 * Unit tests for the compiler internals: configuration handling,
 * trait derivation, individual optimization passes (inspected at
 * the AST level), and lowering/frame-layout decisions.
 */

#include <gtest/gtest.h>

#include "bytecode/insn.hh"
#include "compiler/compiler.hh"
#include "compiler/lowering.hh"
#include "compiler/passes.hh"
#include "support/logging.hh"
#include "minic/parser.hh"

namespace
{

using namespace compdiff;
using namespace compdiff::compiler;
using minic::BinaryExpr;
using minic::ExprKind;
using minic::IntLitExpr;
using minic::StmtKind;

// ---------------- configuration ----------------

TEST(Config, NamesRoundTrip)
{
    for (const auto &config : standardImplementations()) {
        EXPECT_EQ(configFromName(config.name()), config);
    }
    CompilerConfig san{Vendor::Clang, OptLevel::O1, Sanitizer::MSan};
    EXPECT_EQ(san.name(), "clang-O1+msan");
    EXPECT_EQ(configFromName("clang-O1+msan"), san);
    EXPECT_THROW(configFromName("tcc-O2"), support::FatalError);
    EXPECT_THROW(configFromName("gcc-O9"), support::FatalError);
}

TEST(Config, StandardSetIsThePaper)
{
    const auto configs = standardImplementations();
    ASSERT_EQ(configs.size(), 10u);
    EXPECT_EQ(configs.front().name(), "gcc-O0");
    EXPECT_EQ(configs.back().name(), "clang-Os");
}

TEST(Config, TraitsVaryOnTheRightAxes)
{
    const Traits gcc_o0 = traitsFor({Vendor::Gcc, OptLevel::O0});
    const Traits gcc_o2 = traitsFor({Vendor::Gcc, OptLevel::O2});
    const Traits clang_o0 = traitsFor({Vendor::Clang, OptLevel::O0});
    const Traits clang_o2 = traitsFor({Vendor::Clang, OptLevel::O2});

    // Evaluation order is a vendor trait.
    EXPECT_TRUE(gcc_o0.argsRightToLeft);
    EXPECT_FALSE(clang_o0.argsRightToLeft);

    // UB-guard folding requires optimization.
    EXPECT_FALSE(gcc_o0.foldUbGuards);
    EXPECT_TRUE(gcc_o2.foldUbGuards);

    // Widening is the clang behavior from the paper's RQ1.
    EXPECT_FALSE(gcc_o2.widenMulToLong);
    EXPECT_TRUE(clang_o2.widenMulToLong);

    // Segment bases differ per vendor.
    EXPECT_NE(gcc_o0.stackBase, clang_o0.stackBase);
    EXPECT_NE(gcc_o0.heapBase, clang_o0.heapBase);

    // O0 stack fill is zero; optimized fills differ per vendor.
    EXPECT_EQ(gcc_o0.stackFill, 0x00);
    EXPECT_EQ(clang_o0.stackFill, 0x00);
    EXPECT_NE(gcc_o2.stackFill, clang_o2.stackFill);
}

TEST(Config, SanitizersDisableUbExploits)
{
    const Traits plain = traitsFor({Vendor::Clang, OptLevel::O2});
    const Traits san =
        traitsFor({Vendor::Clang, OptLevel::O2, Sanitizer::UBSan});
    EXPECT_TRUE(plain.foldUbGuards);
    EXPECT_FALSE(san.foldUbGuards);
    EXPECT_TRUE(plain.bugRemPow2);
    EXPECT_FALSE(san.bugRemPow2);
}

// ---------------- pass-level inspection ----------------

/** Compile-and-transform one function, returning its clone. */
std::unique_ptr<minic::FunctionDecl>
transform(const minic::Program &program, const char *pass_name,
          const Traits &traits)
{
    auto clone = program.functions[0]->clone();
    normalizeBodies(*clone);
    for (const auto &pass : standardPasses()) {
        if (std::string(pass->name()) == pass_name)
            pass->run(*clone, traits);
    }
    return clone;
}

TEST(Passes, ConstFoldFoldsLiteralArithmetic)
{
    auto program = minic::parseAndCheck(
        "int main() { return (2 + 3) * 4; }");
    Traits traits;
    auto func = transform(*program, "constfold", traits);
    const auto &ret = static_cast<const minic::ReturnStmt &>(
        *func->body->body[0]);
    ASSERT_EQ(ret.value->kind(), ExprKind::IntLit);
    EXPECT_EQ(static_cast<const IntLitExpr &>(*ret.value).value, 20);
}

TEST(Passes, ConstFoldNeverFoldsTraps)
{
    auto program = minic::parseAndCheck(
        "int main() { int z = 0; return 7 / 0; }");
    Traits traits;
    auto func = transform(*program, "constfold", traits);
    const auto &ret = static_cast<const minic::ReturnStmt &>(
        *func->body->body[1]);
    EXPECT_EQ(ret.value->kind(), ExprKind::Binary); // untouched
}

TEST(Passes, UbGuardFoldRewritesListing1)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            int offset = input_byte(0);
            int len = input_byte(1);
            if (offset + len < offset) { return -1; }
            return 0;
        }
    )");
    Traits traits;
    auto func = transform(*program, "ubguardfold", traits);
    const auto &if_stmt = static_cast<const minic::IfStmt &>(
        *func->body->body[2]);
    // (offset + len) < offset  =>  len < 0
    ASSERT_EQ(if_stmt.cond->kind(), ExprKind::Binary);
    const auto &cond =
        static_cast<const BinaryExpr &>(*if_stmt.cond);
    EXPECT_EQ(cond.op, minic::BinaryOp::Lt);
    EXPECT_EQ(cond.lhs->kind(), ExprKind::VarRef);
    ASSERT_EQ(cond.rhs->kind(), ExprKind::IntLit);
    EXPECT_EQ(static_cast<const IntLitExpr &>(*cond.rhs).value, 0);
}

TEST(Passes, UbGuardFoldSkipsUnsigned)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            uint offset = (uint)input_byte(0);
            uint len = (uint)input_byte(1);
            if (offset + len < offset) { return -1; }
            return 0;
        }
    )");
    Traits traits;
    auto func = transform(*program, "ubguardfold", traits);
    const auto &if_stmt = static_cast<const minic::IfStmt &>(
        *func->body->body[2]);
    // Unsigned wrap is defined: the guard must survive.
    const auto &cond =
        static_cast<const BinaryExpr &>(*if_stmt.cond);
    EXPECT_EQ(cond.lhs->kind(), ExprKind::Binary);
}

TEST(Passes, WidenMarksMulFeedingLong)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            int a = input_byte(0);
            int b = input_byte(1);
            long x = 1L + a * b;
            print_long(x);
            return 0;
        }
    )");
    Traits traits;
    auto func = transform(*program, "widenmul", traits);
    const auto &decl = static_cast<const minic::VarDeclStmt &>(
        *func->body->body[2]);
    const auto &add = static_cast<const BinaryExpr &>(*decl.init);
    const auto &mul = static_cast<const BinaryExpr &>(*add.rhs);
    EXPECT_TRUE(mul.widenTo64);
}

TEST(Passes, DeadStoreElimRemovesUnusedDivision)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            int z = input_size();
            int unused = 7 / z;
            print_str("alive");
            return 0;
        }
    )");
    Traits traits;
    auto func = transform(*program, "deadstore", traits);
    // `int unused = 7 / z;` loses its initializer.
    const auto &decl = static_cast<const minic::VarDeclStmt &>(
        *func->body->body[1]);
    EXPECT_EQ(decl.init, nullptr);
}

TEST(Passes, DeadStoreElimKeepsObservedStores)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            int used = 7 / input_size();
            print_int(used);
            return 0;
        }
    )");
    Traits traits;
    auto func = transform(*program, "deadstore", traits);
    const auto &decl = static_cast<const minic::VarDeclStmt &>(
        *func->body->body[0]);
    EXPECT_NE(decl.init, nullptr);
}

TEST(Passes, NullExploitDeletesStoreThroughNull)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            int *p = 0;
            *p = 42;
            print_str("alive");
            return 0;
        }
    )");
    Traits traits;
    auto func = transform(*program, "nullexploit", traits);
    // The store statement disappears; decl + print + return remain.
    EXPECT_EQ(func->body->body.size(), 3u);
}

TEST(Passes, NullExploitRespectsReassignment)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            int value = 5;
            int *p = 0;
            p = &value;
            *p = 42;
            print_int(value);
            return 0;
        }
    )");
    Traits traits;
    auto func = transform(*program, "nullexploit", traits);
    // p is no longer null at the store: everything survives.
    EXPECT_EQ(func->body->body.size(), 6u);
}

// ---------------- lowering / layout ----------------

TEST(Lowering, FrameLayoutFollowsTraits)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            char small[4];
            long big[4];
            small[0] = 1;
            big[0] = 2L;
            return 0;
        }
    )");
    Compiler comp(*program);

    auto offset_of = [&](const CompilerConfig &config,
                         const char *name) {
        auto module = comp.compile(config);
        for (const auto &slot : module.functions[0].slots)
            if (slot.name == name)
                return slot.offset;
        return std::int32_t(-1);
    };

    // gcc-O0: declaration order -> small before big.
    EXPECT_LT(offset_of({Vendor::Gcc, OptLevel::O0}, "small"),
              offset_of({Vendor::Gcc, OptLevel::O0}, "big"));
    // gcc-O2: size-descending -> big before small.
    EXPECT_GT(offset_of({Vendor::Gcc, OptLevel::O2}, "small"),
              offset_of({Vendor::Gcc, OptLevel::O2}, "big"));
}

TEST(Lowering, AsanAddsRedzones)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            char a[8];
            char b[8];
            a[0] = 1;
            b[0] = 2;
            return 0;
        }
    )");
    Compiler comp(*program);
    auto plain = comp.compile({Vendor::Clang, OptLevel::O1});
    auto asan = comp.compile(
        {Vendor::Clang, OptLevel::O1, Sanitizer::ASan});
    EXPECT_GT(asan.functions[0].frameSize,
              plain.functions[0].frameSize + 16);
}

TEST(Lowering, ArgPushOrderFollowsVendor)
{
    auto program = minic::parseAndCheck(R"(
        int two(int a, int b) { return a - b; }
        int main() { return two(input_byte(0), input_byte(1)); }
    )");
    Compiler comp(*program);
    auto find_call = [](const bytecode::Module &module) {
        for (const auto &insn : module.functions[1].code)
            if (insn.op == bytecode::Op::Call)
                return insn.imm;
        return std::int64_t(-1);
    };
    EXPECT_EQ(find_call(comp.compile({Vendor::Gcc, OptLevel::O0})),
              1); // right-to-left
    EXPECT_EQ(find_call(comp.compile({Vendor::Clang, OptLevel::O0})),
              0); // left-to-right
}

TEST(Lowering, UbsanInsertsChecks)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            int a = input_byte(0);
            return a + 1;
        }
    )");
    Compiler comp(*program);
    auto plain = comp.compile({Vendor::Clang, OptLevel::O1});
    auto ubsan = comp.compile(
        {Vendor::Clang, OptLevel::O1, Sanitizer::UBSan});
    auto count_checks = [](const bytecode::Module &module) {
        std::size_t checks = 0;
        for (const auto &func : module.functions)
            for (const auto &insn : func.code)
                checks += insn.op == bytecode::Op::ChkOv32;
        return checks;
    };
    EXPECT_EQ(count_checks(plain), 0u);
    EXPECT_GE(count_checks(ubsan), 1u);
}

TEST(Lowering, DisassemblyIsReadable)
{
    auto program = minic::parseAndCheck(
        "int main() { print_int(42); return 0; }");
    Compiler comp(*program);
    auto module = comp.compile({Vendor::Gcc, OptLevel::O0});
    const std::string text = module.disassemble();
    EXPECT_NE(text.find("func main"), std::string::npos);
    EXPECT_NE(text.find("push.i 42"), std::string::npos);
    EXPECT_NE(text.find("call.b"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(Lowering, CurLineIsCompileTimeConstant)
{
    auto program = minic::parseAndCheck(R"(int main() {
    int where = 0 +
        cur_line();
    return where;
})");
    Compiler comp(*program);
    // No CallB for cur_line: the value is baked in at compile time,
    // with vendor-specific interpretation.
    for (const auto &config :
         {CompilerConfig{Vendor::Gcc, OptLevel::O0},
          CompilerConfig{Vendor::Clang, OptLevel::O0}}) {
        auto module = comp.compile(config);
        for (const auto &insn : module.functions[0].code) {
            if (insn.op == bytecode::Op::CallB) {
                EXPECT_NE(
                    insn.a,
                    static_cast<std::int32_t>(
                        minic::Builtin::CurLine));
            }
        }
    }
}

} // namespace
