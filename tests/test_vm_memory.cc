/**
 * @file
 * Unit tests for the VM memory subsystem: address space mapping,
 * checked accesses, shadow bookkeeping, heap allocator policies,
 * and the coverage map.
 */

#include <gtest/gtest.h>

#include "compiler/config.hh"
#include "vm/coverage.hh"
#include "vm/memory.hh"

namespace
{

using namespace compdiff;
using compiler::CompilerConfig;
using compiler::OptLevel;
using compiler::Traits;
using compiler::traitsFor;
using compiler::Vendor;
using vm::Access;
using vm::AddressSpace;
using vm::FreeOutcome;
using vm::Heap;

Traits
gccTraits()
{
    return traitsFor({Vendor::Gcc, OptLevel::O2});
}

Traits
clangTraits()
{
    return traitsFor({Vendor::Clang, OptLevel::O2});
}

TEST(AddressSpaceTest, SegmentsMappedAtTraitBases)
{
    const Traits traits = gccTraits();
    AddressSpace space(traits, false, false, 1 << 14, 1 << 14);
    space.setRodata({1, 2, 3});
    space.setGlobalsSize(64);

    EXPECT_NE(space.find(traits.rodataBase, 1), nullptr);
    EXPECT_NE(space.find(traits.globalsBase, 1), nullptr);
    EXPECT_NE(space.find(traits.heapBase, 1), nullptr);
    EXPECT_NE(space.find(traits.stackBase - 8, 8), nullptr);
    EXPECT_EQ(space.find(0, 1), nullptr);         // null page
    EXPECT_EQ(space.find(0x500, 4), nullptr);     // still unmapped
    EXPECT_EQ(space.find(0x7fffffffull, 1), nullptr);
}

TEST(AddressSpaceTest, ReadWriteRoundTrip)
{
    const Traits traits = gccTraits();
    AddressSpace space(traits, false, false, 1 << 14, 1 << 14);
    space.setGlobalsSize(64);

    const std::uint64_t addr = traits.globalsBase + 8;
    EXPECT_EQ(space.write(addr, 8, 0x1122334455667788ull, false),
              Access::Ok);
    std::uint64_t value = 0;
    bool poisoned = true;
    EXPECT_EQ(space.read(addr, 8, value, poisoned), Access::Ok);
    EXPECT_EQ(value, 0x1122334455667788ull);
    EXPECT_FALSE(poisoned);

    // Partial-width reads are little-endian.
    EXPECT_EQ(space.read(addr, 1, value, poisoned), Access::Ok);
    EXPECT_EQ(value, 0x88u);
    EXPECT_EQ(space.read(addr, 4, value, poisoned), Access::Ok);
    EXPECT_EQ(value, 0x55667788u);
}

TEST(AddressSpaceTest, RodataIsReadOnly)
{
    const Traits traits = gccTraits();
    AddressSpace space(traits, false, false, 1 << 12, 1 << 12);
    space.setRodata({'h', 'i', 0});
    std::uint64_t value;
    bool poisoned;
    EXPECT_EQ(space.read(traits.rodataBase, 1, value, poisoned),
              Access::Ok);
    EXPECT_EQ(value, 'h');
    EXPECT_EQ(space.write(traits.rodataBase, 1, 'X', false),
              Access::ReadOnlyWrite);
}

TEST(AddressSpaceTest, StackFillPatternApplied)
{
    const Traits gcc = gccTraits();
    AddressSpace space(gcc, false, false, 1 << 12, 1 << 12);
    std::uint64_t value;
    bool poisoned;
    ASSERT_EQ(space.read(gcc.stackBase - 16, 1, value, poisoned),
              Access::Ok);
    EXPECT_EQ(value, gcc.stackFill);

    const Traits clang = clangTraits();
    AddressSpace other(clang, false, false, 1 << 12, 1 << 12);
    ASSERT_EQ(other.read(clang.stackBase - 16, 1, value, poisoned),
              Access::Ok);
    EXPECT_EQ(value, clang.stackFill);
    EXPECT_NE(gcc.stackFill, clang.stackFill);
}

TEST(AddressSpaceTest, AsanShadowGatesAccess)
{
    const Traits traits = gccTraits();
    AddressSpace space(traits, true, false, 1 << 12, 1 << 12);
    const std::uint64_t addr = traits.stackBase - 64;
    // Stack starts fully invalid under ASan.
    EXPECT_EQ(space.write(addr, 4, 1, false), Access::AsanInvalid);
    space.setValid(addr, 4, true);
    EXPECT_EQ(space.write(addr, 4, 1, false), Access::Ok);
    space.setValid(addr, 4, false);
    std::uint64_t value;
    bool poisoned;
    EXPECT_EQ(space.read(addr, 4, value, poisoned),
              Access::AsanInvalid);
}

TEST(AddressSpaceTest, MsanPoisonTracksWrites)
{
    const Traits traits = gccTraits();
    AddressSpace space(traits, false, true, 1 << 12, 1 << 12);
    const std::uint64_t addr = traits.stackBase - 32;
    space.setPoison(addr, 8, true);
    std::uint64_t value;
    bool poisoned = false;
    ASSERT_EQ(space.read(addr, 8, value, poisoned), Access::Ok);
    EXPECT_TRUE(poisoned);
    // A clean write unpoisons; a poisoned write re-poisons.
    ASSERT_EQ(space.write(addr, 8, 5, false), Access::Ok);
    ASSERT_EQ(space.read(addr, 8, value, poisoned), Access::Ok);
    EXPECT_FALSE(poisoned);
    ASSERT_EQ(space.write(addr, 8, 5, true), Access::Ok);
    ASSERT_EQ(space.read(addr, 8, value, poisoned), Access::Ok);
    EXPECT_TRUE(poisoned);
}

// ---------------- heap ----------------

TEST(HeapTest, AllocationsAreAlignedAndFilled)
{
    const Traits traits = gccTraits();
    AddressSpace space(traits, false, false, 1 << 12, 1 << 14);
    Heap heap(space, traits, false);
    const std::uint64_t a = heap.allocate(10);
    const std::uint64_t b = heap.allocate(20);
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_EQ(a % 16, 0u);
    EXPECT_EQ(b % 16, 0u);
    EXPECT_GE(b, a + 16);

    std::uint64_t value;
    bool poisoned;
    ASSERT_EQ(space.read(a, 1, value, poisoned), Access::Ok);
    EXPECT_EQ(value, traits.heapFill);
}

TEST(HeapTest, OomReturnsNull)
{
    const Traits traits = gccTraits();
    AddressSpace space(traits, false, false, 1 << 12, 256);
    Heap heap(space, traits, false);
    EXPECT_NE(heap.allocate(128), 0u);
    EXPECT_EQ(heap.allocate(512), 0u); // larger than the segment
}

TEST(HeapTest, ReuseOrderFollowsPolicy)
{
    // gcc-sim: LIFO free list; clang-sim: FIFO.
    const Traits gcc = gccTraits();
    AddressSpace s1(gcc, false, false, 1 << 12, 1 << 14);
    Heap lifo(s1, gcc, false);
    const auto a1 = lifo.allocate(16);
    const auto b1 = lifo.allocate(16);
    lifo.release(a1);
    lifo.release(b1);
    EXPECT_EQ(lifo.allocate(16), b1); // last freed first

    const Traits clang = clangTraits();
    AddressSpace s2(clang, false, false, 1 << 12, 1 << 14);
    Heap fifo(s2, clang, false);
    const auto a2 = fifo.allocate(16);
    const auto b2 = fifo.allocate(16);
    fifo.release(a2);
    fifo.release(b2);
    EXPECT_EQ(fifo.allocate(16), a2); // first freed first
}

TEST(HeapTest, DoubleFreeDetectionIsPolicyDependent)
{
    const Traits gcc = gccTraits(); // tcache-style top check
    AddressSpace s1(gcc, false, false, 1 << 12, 1 << 14);
    Heap detecting(s1, gcc, false);
    const auto p = detecting.allocate(16);
    EXPECT_EQ(detecting.release(p), FreeOutcome::Ok);
    EXPECT_EQ(detecting.release(p), FreeOutcome::DoubleFreeAbort);

    // Not at the top of the free list: the check misses.
    const auto q = detecting.allocate(16); // reuses p
    const auto r = detecting.allocate(16);
    EXPECT_EQ(detecting.release(q), FreeOutcome::Ok);
    EXPECT_EQ(detecting.release(r), FreeOutcome::Ok);
    EXPECT_EQ(detecting.release(q), FreeOutcome::DoubleFreeSilent);

    const Traits clang = clangTraits(); // no detection at all
    AddressSpace s2(clang, false, false, 1 << 12, 1 << 14);
    Heap silent(s2, clang, false);
    const auto p2 = silent.allocate(16);
    EXPECT_EQ(silent.release(p2), FreeOutcome::Ok);
    EXPECT_EQ(silent.release(p2), FreeOutcome::DoubleFreeSilent);
}

TEST(HeapTest, InvalidFreePolicies)
{
    const Traits gcc = gccTraits();
    AddressSpace s1(gcc, false, false, 1 << 12, 1 << 14);
    Heap detecting(s1, gcc, false);
    EXPECT_EQ(detecting.release(gcc.stackBase - 64),
              FreeOutcome::InvalidFreeAbort);
    EXPECT_EQ(detecting.release(0), FreeOutcome::NullNoop);

    const Traits clang = clangTraits();
    AddressSpace s2(clang, false, false, 1 << 12, 1 << 14);
    Heap ignoring(s2, clang, false);
    EXPECT_EQ(ignoring.release(clang.stackBase - 64),
              FreeOutcome::InvalidFreeIgnored);
}

TEST(HeapTest, FreePoisonScrubsOnClangOnly)
{
    const Traits clang = clangTraits();
    AddressSpace s1(clang, false, false, 1 << 12, 1 << 14);
    Heap poisoning(s1, clang, false);
    const auto p = poisoning.allocate(16);
    s1.write(p, 1, 'X', false);
    poisoning.release(p);
    std::uint64_t value;
    bool poisoned;
    ASSERT_EQ(s1.read(p, 1, value, poisoned), Access::Ok);
    EXPECT_EQ(value, clang.freePoisonByte);

    const Traits gcc = gccTraits();
    AddressSpace s2(gcc, false, false, 1 << 12, 1 << 14);
    Heap keeping(s2, gcc, false);
    const auto q = keeping.allocate(16);
    s2.write(q, 1, 'X', false);
    keeping.release(q);
    ASSERT_EQ(s2.read(q, 1, value, poisoned), Access::Ok);
    EXPECT_EQ(value, 'X'); // stale data survives
}

TEST(HeapTest, AsanQuarantineDelaysReuse)
{
    const Traits traits = gccTraits();
    AddressSpace space(traits, true, false, 1 << 12, 1 << 16);
    Heap heap(space, traits, true);
    const auto p = heap.allocate(16);
    heap.release(p);
    // A fresh allocation must NOT reuse the quarantined chunk.
    const auto q = heap.allocate(16);
    EXPECT_NE(q, p);
    // And the freed chunk stays inaccessible.
    std::uint64_t value;
    bool poisoned;
    EXPECT_EQ(space.read(p, 1, value, poisoned),
              Access::AsanInvalid);
}

// ---------------- coverage ----------------

TEST(CoverageTest, EdgesNotJustBlocks)
{
    vm::CoverageMap map;
    map.reset();
    map.hitBlock(10);
    map.hitBlock(20);
    const auto ab = map.countBits();

    vm::CoverageMap reversed;
    reversed.reset();
    reversed.hitBlock(20);
    reversed.hitBlock(10);
    EXPECT_EQ(ab, reversed.countBits());
    EXPECT_NE(map.pathHash(), reversed.pathHash()); // different edges
}

TEST(CoverageTest, VirginMapDetectsNovelty)
{
    vm::VirginMap virgin;
    vm::CoverageMap map;
    map.reset();
    map.hitBlock(1);
    map.hitBlock(2);
    EXPECT_TRUE(virgin.mergeAndCheckNew(map));
    EXPECT_FALSE(virgin.mergeAndCheckNew(map)); // same path
    // Same edges but a higher hit-count bucket is new again.
    for (int i = 0; i < 10; i++) {
        map.hitBlock(1);
        map.hitBlock(2);
    }
    EXPECT_TRUE(virgin.mergeAndCheckNew(map));
    EXPECT_GE(virgin.edgesSeen(), 2u);
}

TEST(CoverageTest, BucketBoundaries)
{
    using vm::coverageBucket;
    EXPECT_EQ(coverageBucket(0), 0);
    EXPECT_EQ(coverageBucket(1), 1);
    EXPECT_EQ(coverageBucket(2), 2);
    EXPECT_EQ(coverageBucket(3), 4);
    EXPECT_EQ(coverageBucket(7), 8);
    EXPECT_EQ(coverageBucket(8), 16);
    EXPECT_EQ(coverageBucket(127), 64);
    EXPECT_EQ(coverageBucket(128), 128);
    EXPECT_EQ(coverageBucket(255), 128);
}

} // namespace
