/**
 * @file
 * Campaign-session tests: the crash-safe checkpoint/resume contract.
 *
 * The invariant under test is the strongest one the design claims: a
 * campaign killed at any iteration and resumed must produce
 * bit-identical results — corpus, diff set, signature set, plot rows,
 * RNG state, the complete FuzzerState — to an uninterrupted run with
 * the same budget, for every --jobs/--shards combination. The tests
 * compare the final shutdown checkpoints byte-for-byte, which covers
 * every field the fuzzer owns, then spot-check the user-visible
 * artifacts (divergence journal, fuzzer_stats) on top.
 *
 * Robustness: a journal whose tail was torn mid-record (hard kill
 * during an append) must resume from the last complete checkpoint
 * and still converge to the identical final state; garbage manifest
 * or journal files must be rejected with a clear diagnostic, never
 * silently restarted.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/cache.hh"
#include "fuzz/sharded.hh"
#include "minic/parser.hh"
#include "obs/stats.hh"
#include "session/checkpoint.hh"
#include "session/heartbeat.hh"
#include "session/serial.hh"
#include "session/session.hh"

namespace
{

using namespace compdiff;
using support::Bytes;

/** The oracle-carrying fuzz target from test_fuzz.cc: reading the
 *  uninitialized local diverges across implementations. */
const char *kUnstableTarget = R"(
    int main() {
        if (input_byte(0) == 'U') {
            int l;
            print_int(l);
            probe(42);
        } else {
            print_str("fine");
        }
        return 0;
    }
)";

const std::vector<Bytes> kSeeds = {{'A'}, {'B', 'C'}};

/** Fresh scratch directory under the system temp dir. */
std::string
freshDir(const std::string &leaf)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("compdiff_" + std::string(info->test_suite_name()) + "_" +
         info->name() + "_" + leaf);
    std::filesystem::remove_all(dir);
    return dir.string();
}

session::SessionConfig
baseConfig(const std::string &dir, std::size_t shards,
           std::size_t jobs)
{
    session::SessionConfig config;
    config.dir = dir;
    config.shards = shards;
    config.jobs = jobs;
    config.fuzz.maxExecs = 1'200;
    return config;
}

/** The final (shutdown) checkpoint payload of every shard. */
std::vector<Bytes>
finalCheckpoints(const std::string &dir, std::size_t shards)
{
    std::vector<Bytes> payloads;
    for (std::size_t s = 0; s < shards; s++) {
        auto payload = session::readLastRecord(
            dir + "/shard-" + std::to_string(s) + ".journal");
        EXPECT_TRUE(payload.has_value());
        payloads.push_back(payload.value_or(Bytes{}));
    }
    return payloads;
}

/** fuzzer_stats minus the wall-clock-dependent lines. */
std::string
stableStatsLines(const std::string &text)
{
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("run_time", 0) == 0 ||
            line.rfind("execs_per_sec", 0) == 0 ||
            line.rfind("session_restarts", 0) == 0) {
            continue;
        }
        out << line << "\n";
    }
    return out.str();
}

void
expectIdenticalRecords(
    const std::vector<session::DivergenceRecord> &a,
    const std::vector<session::DivergenceRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].signature, b[i].signature);
        EXPECT_EQ(a[i].input, b[i].input);
        EXPECT_EQ(a[i].execIndex, b[i].execIndex);
        EXPECT_EQ(a[i].probes, b[i].probes);
        EXPECT_EQ(a[i].hashVector, b[i].hashVector);
    }
}

/**
 * The tentpole invariant, for one (shards, jobs) point: run the
 * campaign uninterrupted in one session, halted-then-resumed in
 * another, and require bit-identical outcomes.
 */
void
checkHaltResumeIdentity(std::size_t shards, std::size_t jobs)
{
    SCOPED_TRACE("shards=" + std::to_string(shards) +
                 " jobs=" + std::to_string(jobs));
    auto program = minic::parseAndCheck(kUnstableTarget);
    const std::string dir_full =
        freshDir("full_s" + std::to_string(shards) + "_j" +
                 std::to_string(jobs));
    const std::string dir_cut =
        freshDir("cut_s" + std::to_string(shards) + "_j" +
                 std::to_string(jobs));

    // Uninterrupted baseline.
    session::SessionConfig config =
        baseConfig(dir_full, shards, jobs);
    session::CampaignSession full(*program, kSeeds, config);
    full.run();
    ASSERT_TRUE(full.completed());

    // Same campaign, stopped at the half-budget safe point...
    session::SessionConfig cut_config =
        baseConfig(dir_cut, shards, jobs);
    cut_config.haltAfterExecs =
        config.fuzz.maxExecs / (2 * shards);
    {
        session::CampaignSession cut(*program, kSeeds, cut_config);
        cut.run();
        ASSERT_TRUE(cut.halted());
        ASSERT_FALSE(cut.completed());
        ASSERT_LT(cut.result().total.execs, config.fuzz.maxExecs);
    }

    // ...then resumed to completion by a brand-new process-alike.
    session::SessionConfig resume_config =
        baseConfig(dir_cut, shards, jobs);
    resume_config.resume = true;
    session::CampaignSession resumed(*program, kSeeds,
                                     resume_config);
    resumed.run();
    ASSERT_TRUE(resumed.completed());
    EXPECT_EQ(resumed.restarts(), 1u);

    // The complete per-shard fuzzer states are byte-identical:
    // corpus, RNG, virgin map, plot rows, stats, diff + crash sets.
    EXPECT_EQ(finalCheckpoints(dir_full, shards),
              finalCheckpoints(dir_cut, shards));

    // So are the deterministic shard event journals: resume rewinds
    // and re-derives each shard's events from restored state, so a
    // kill+resume run replays the exact byte stream an uninterrupted
    // run would have written.
    for (std::size_t s = 0; s < shards; s++) {
        const std::string leaf =
            "/shard-" + std::to_string(s) + ".events.jsonl";
        const auto events_full =
            session::readTextFile(dir_full + leaf);
        const auto events_cut = session::readTextFile(dir_cut + leaf);
        ASSERT_TRUE(events_full && events_cut) << leaf;
        EXPECT_EQ(*events_full, *events_cut) << leaf;
    }

    // And so is everything user-visible derived from them.
    EXPECT_EQ(full.result().total.execs,
              resumed.result().total.execs);
    EXPECT_EQ(full.result().total.diffs,
              resumed.result().total.diffs);
    EXPECT_EQ(full.result().total.crashes,
              resumed.result().total.crashes);
    EXPECT_EQ(full.result().total.edges,
              resumed.result().total.edges);
    expectIdenticalRecords(full.divergenceRecords(),
                           resumed.divergenceRecords());
    expectIdenticalRecords(
        session::CampaignSession::loadDivergenceRecords(dir_full),
        session::CampaignSession::loadDivergenceRecords(dir_cut));
    const auto stats_full =
        session::readTextFile(dir_full + "/fuzzer_stats");
    const auto stats_cut =
        session::readTextFile(dir_cut + "/fuzzer_stats");
    ASSERT_TRUE(stats_full && stats_cut);
    EXPECT_EQ(stableStatsLines(*stats_full),
              stableStatsLines(*stats_cut));
    const auto cut_stats = obs::parseFuzzerStats(*stats_cut);
    EXPECT_EQ(cut_stats.at("session_restarts"), "1");

    std::filesystem::remove_all(dir_full);
    std::filesystem::remove_all(dir_cut);
}

TEST(SessionResume, BitIdenticalSerialSingleShard)
{
    checkHaltResumeIdentity(/*shards=*/1, /*jobs=*/1);
}

TEST(SessionResume, BitIdenticalSerialSharded)
{
    checkHaltResumeIdentity(/*shards=*/3, /*jobs=*/1);
}

TEST(SessionResume, BitIdenticalThreadedSingleShard)
{
    checkHaltResumeIdentity(/*shards=*/1, /*jobs=*/4);
}

TEST(SessionResume, BitIdenticalThreadedSharded)
{
    checkHaltResumeIdentity(/*shards=*/3, /*jobs=*/4);
}

/**
 * Wall-clock hygiene audit: every wall-clock-derived artifact
 * (session_stats run_secs, heartbeat files) is display-only. A
 * resume that finds those artifacts mangled — absurd run_secs,
 * heartbeats deleted outright — must still converge to the
 * bit-identical campaign outcome, proving wall-clock never feeds a
 * campaign decision. Only exec-index (the deterministic time axis)
 * may do that.
 */
TEST(SessionObservability, WallClockNeverFeedsCampaignDecisions)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    const std::string dir_full = freshDir("full");
    const std::string dir_cut = freshDir("cut");

    session::SessionConfig config = baseConfig(dir_full, 2, 1);
    session::CampaignSession full(*program, kSeeds, config);
    full.run();
    ASSERT_TRUE(full.completed());

    session::SessionConfig cut_config = baseConfig(dir_cut, 2, 1);
    cut_config.haltAfterExecs = 300;
    {
        session::CampaignSession cut(*program, kSeeds, cut_config);
        cut.run();
        ASSERT_TRUE(cut.halted());
    }

    // Mangle every wall-clock artifact the halted session left.
    session::atomicWriteFile(dir_cut + "/session_stats",
                             "run_secs : 99999999.0\n"
                             "restarts : 0\n");
    for (std::size_t s = 0; s < 2; s++) {
        std::filesystem::remove(
            session::heartbeatPath(dir_cut, s));
    }

    session::SessionConfig resume_config = baseConfig(dir_cut, 2, 1);
    resume_config.resume = true;
    session::CampaignSession resumed(*program, kSeeds,
                                     resume_config);
    resumed.run();
    ASSERT_TRUE(resumed.completed());

    EXPECT_EQ(finalCheckpoints(dir_full, 2),
              finalCheckpoints(dir_cut, 2));
    expectIdenticalRecords(
        session::CampaignSession::loadDivergenceRecords(dir_full),
        session::CampaignSession::loadDivergenceRecords(dir_cut));
    for (std::size_t s = 0; s < 2; s++) {
        const std::string leaf =
            "/shard-" + std::to_string(s) + ".events.jsonl";
        const auto events_full =
            session::readTextFile(dir_full + leaf);
        const auto events_cut = session::readTextFile(dir_cut + leaf);
        ASSERT_TRUE(events_full && events_cut);
        EXPECT_EQ(*events_full, *events_cut);
    }

    std::filesystem::remove_all(dir_full);
    std::filesystem::remove_all(dir_cut);
}

TEST(SessionResume, TornJournalTailResumesFromPreviousCheckpoint)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    const std::string dir_full = freshDir("full");
    const std::string dir_torn = freshDir("torn");

    session::SessionConfig config = baseConfig(dir_full, 1, 1);
    config.checkpointEvery = 100;
    session::CampaignSession full(*program, kSeeds, config);
    full.run();

    session::SessionConfig cut_config = baseConfig(dir_torn, 1, 1);
    cut_config.checkpointEvery = 100;
    cut_config.haltAfterExecs = 600;
    {
        session::CampaignSession cut(*program, kSeeds, cut_config);
        cut.run();
        ASSERT_TRUE(cut.halted());
    }

    // Simulate a kill mid-append: tear the last record's tail off.
    const std::string journal = dir_torn + "/shard-0.journal";
    const auto before = session::readRecords(journal);
    ASSERT_GE(before.size(), 2u);
    std::filesystem::resize_file(
        journal, std::filesystem::file_size(journal) - 7);
    const auto after = session::readRecords(journal);
    ASSERT_EQ(after.size(), before.size() - 1);

    // Resume re-does the work since the surviving checkpoint and
    // still converges to the bit-identical final state.
    session::SessionConfig resume_config = baseConfig(dir_torn, 1, 1);
    resume_config.checkpointEvery = 100;
    resume_config.resume = true;
    session::CampaignSession resumed(*program, kSeeds,
                                     resume_config);
    resumed.run();
    ASSERT_TRUE(resumed.completed());
    EXPECT_EQ(finalCheckpoints(dir_full, 1),
              finalCheckpoints(dir_torn, 1));
    expectIdenticalRecords(
        session::CampaignSession::loadDivergenceRecords(dir_full),
        session::CampaignSession::loadDivergenceRecords(dir_torn));

    std::filesystem::remove_all(dir_full);
    std::filesystem::remove_all(dir_torn);
}

TEST(SessionResume, GarbageManifestRejectedWithDiagnostic)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    const std::string dir = freshDir("dir");
    {
        session::SessionConfig config = baseConfig(dir, 1, 1);
        config.haltAfterExecs = 100;
        session::CampaignSession cut(*program, kSeeds, config);
        cut.run();
    }
    {
        std::ofstream out(dir + "/MANIFEST",
                          std::ios::binary | std::ios::trunc);
        out << "This is not a session manifest.\n";
    }
    session::SessionConfig resume_config = baseConfig(dir, 1, 1);
    resume_config.resume = true;
    session::CampaignSession resumed(*program, kSeeds,
                                     resume_config);
    try {
        resumed.run();
        FAIL() << "garbage manifest must not resume";
    } catch (const session::SessionError &error) {
        EXPECT_NE(std::string(error.what()).find("format_version"),
                  std::string::npos)
            << error.what();
    }
    std::filesystem::remove_all(dir);
}

TEST(SessionResume, GarbageJournalRejectedWithDiagnostic)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    const std::string dir = freshDir("dir");
    {
        session::SessionConfig config = baseConfig(dir, 1, 1);
        config.haltAfterExecs = 100;
        session::CampaignSession cut(*program, kSeeds, config);
        cut.run();
    }
    {
        std::ofstream out(dir + "/shard-0.journal",
                          std::ios::binary | std::ios::trunc);
        out << "Definitely not a checkpoint journal.\n";
    }
    session::SessionConfig resume_config = baseConfig(dir, 1, 1);
    resume_config.resume = true;
    session::CampaignSession resumed(*program, kSeeds,
                                     resume_config);
    try {
        resumed.run();
        FAIL() << "garbage journal must not resume";
    } catch (const session::SessionError &error) {
        EXPECT_NE(
            std::string(error.what()).find("not a session journal"),
            std::string::npos)
            << error.what();
    }
    std::filesystem::remove_all(dir);
}

TEST(SessionResume, CorruptCheckpointPayloadRejected)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    const std::string dir = freshDir("dir");
    {
        session::SessionConfig config = baseConfig(dir, 1, 1);
        config.haltAfterExecs = 100;
        session::CampaignSession cut(*program, kSeeds, config);
        cut.run();
    }
    // A well-framed, checksummed record whose *payload* is garbage —
    // past the journal layer, the decoder must still catch it.
    session::appendRecord(dir + "/shard-0.journal",
                          Bytes{1, 2, 3, 4, 5});
    session::SessionConfig resume_config = baseConfig(dir, 1, 1);
    resume_config.resume = true;
    session::CampaignSession resumed(*program, kSeeds,
                                     resume_config);
    try {
        resumed.run();
        FAIL() << "corrupt checkpoint payload must not restore";
    } catch (const session::SessionError &error) {
        EXPECT_NE(std::string(error.what()).find("checkpoint record"),
                  std::string::npos)
            << error.what();
    }
    std::filesystem::remove_all(dir);
}

TEST(SessionResume, MismatchedConfigurationRejected)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    const std::string dir = freshDir("dir");
    {
        session::SessionConfig config = baseConfig(dir, 1, 1);
        config.haltAfterExecs = 100;
        session::CampaignSession cut(*program, kSeeds, config);
        cut.run();
    }
    session::SessionConfig resume_config = baseConfig(dir, 1, 1);
    resume_config.resume = true;
    resume_config.fuzz.rngSeed ^= 1; // a different campaign
    session::CampaignSession resumed(*program, kSeeds,
                                     resume_config);
    try {
        resumed.run();
        FAIL() << "a different campaign must not resume";
    } catch (const session::SessionError &error) {
        EXPECT_NE(std::string(error.what())
                      .find("exact campaign configuration"),
                  std::string::npos)
            << error.what();
    }
    std::filesystem::remove_all(dir);
}

TEST(SessionResume, FreshSessionRefusesOccupiedDirectory)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    const std::string dir = freshDir("dir");
    {
        session::SessionConfig config = baseConfig(dir, 1, 1);
        config.haltAfterExecs = 100;
        session::CampaignSession cut(*program, kSeeds, config);
        cut.run();
    }
    session::SessionConfig config = baseConfig(dir, 1, 1);
    session::CampaignSession clobber(*program, kSeeds, config);
    EXPECT_THROW(clobber.run(), session::SessionError);
    std::filesystem::remove_all(dir);
}

TEST(SessionResume, ResumeWithoutDirectoryRejected)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    session::SessionConfig config;
    config.resume = true;
    config.fuzz.maxExecs = 100;
    session::CampaignSession session(*program, kSeeds, config);
    EXPECT_THROW(session.run(), session::SessionError);
}

TEST(SessionEphemeral, MatchesDirectShardedCampaign)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    fuzz::FuzzOptions options;
    options.maxExecs = 1'000;
    auto direct = fuzz::runShardedCampaign(*program, kSeeds, options,
                                           /*shards=*/3, /*jobs=*/1);

    session::SessionConfig config;
    config.fuzz = options;
    config.shards = 3;
    session::CampaignSession session(*program, kSeeds, config);
    const auto &via_session = session.run();
    ASSERT_TRUE(session.completed());

    EXPECT_EQ(direct.total.execs, via_session.total.execs);
    EXPECT_EQ(direct.total.diffs, via_session.total.diffs);
    EXPECT_EQ(direct.total.edges, via_session.total.edges);
    ASSERT_EQ(direct.diffs.size(), via_session.diffs.size());
    for (std::size_t i = 0; i < direct.diffs.size(); i++) {
        EXPECT_EQ(direct.diffs[i].input, via_session.diffs[i].input);
        EXPECT_EQ(direct.diffs[i].signature,
                  via_session.diffs[i].signature);
    }
}

TEST(SessionSerial, FuzzerStateRoundTrips)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    fuzz::FuzzOptions options;
    options.maxExecs = 400;
    fuzz::Fuzzer fuzzer(*program, kSeeds, options);
    fuzzer.run();
    const fuzz::FuzzerState state = fuzzer.captureState();
    const Bytes payload = session::encodeFuzzerState(state);
    const fuzz::FuzzerState back =
        session::decodeFuzzerState(payload);
    EXPECT_EQ(session::encodeFuzzerState(back), payload);
}

TEST(CompileCacheBound, StaysUnderCapDuringShardedSession)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    auto &cache = compiler::CompileCache::global();
    cache.clear();
    // Tighter than one oracle's worth of modules: the sharded run
    // must evict to stay under the cap, and keep working.
    cache.setLimits(/*max_entries=*/6, /*max_bytes=*/0);

    session::SessionConfig config;
    config.fuzz.maxExecs = 600;
    config.shards = 3;
    session::CampaignSession session(*program, kSeeds, config);
    session.run();

    EXPECT_LE(cache.size(), 6u);
    EXPECT_GT(cache.misses(), 0u);
    EXPECT_GT(cache.evictions(), 0u);

    cache.setLimits(compiler::CompileCache::kDefaultMaxEntries,
                    compiler::CompileCache::kDefaultMaxBytes);
    cache.clear();
}

TEST(CompileCacheBound, LruEvictsOldestAndCountsBytes)
{
    auto &cache = compiler::CompileCache::global();
    cache.clear();
    cache.setLimits(/*max_entries=*/2, /*max_bytes=*/0);

    auto a = minic::parseAndCheck("int main() { return 1; }");
    auto b = minic::parseAndCheck("int main() { return 2; }");
    auto c = minic::parseAndCheck("int main() { return 3; }");
    const compiler::CompilerConfig config;
    compiler::compileCached(*a, config);
    compiler::compileCached(*b, config);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_GT(cache.bytesUsed(), 0u);
    const std::uint64_t evictions_before = cache.evictions();
    compiler::compileCached(*c, config); // evicts a
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), evictions_before + 1);
    // b and c are resident (hits); a was evicted (miss again).
    const std::uint64_t misses_before = cache.misses();
    compiler::compileCached(*b, config);
    compiler::compileCached(*c, config);
    EXPECT_EQ(cache.misses(), misses_before);
    compiler::compileCached(*a, config);
    EXPECT_EQ(cache.misses(), misses_before + 1);

    cache.setLimits(compiler::CompileCache::kDefaultMaxEntries,
                    compiler::CompileCache::kDefaultMaxBytes);
    cache.clear();
}

} // namespace
