/**
 * @file
 * Tests for the three static analyzers: per-tool strengths, shared
 * blind spots, and the imprecision that produces false positives.
 */

#include <gtest/gtest.h>

#include "analysis/static_analyzer.hh"
#include "minic/parser.hh"

namespace
{

using namespace compdiff;
using analysis::Finding;
using analysis::FindingKind;
using analysis::StaticAnalyzer;

bool
reports(const StaticAnalyzer &tool, std::string_view source,
        FindingKind kind)
{
    auto program = minic::parseAndCheck(source);
    for (const auto &finding : tool.analyze(*program))
        if (finding.kind == kind)
            return true;
    return false;
}

std::size_t
countFindings(const StaticAnalyzer &tool, std::string_view source)
{
    auto program = minic::parseAndCheck(source);
    return tool.analyze(*program).size();
}

TEST(LintCheck, ConstantOutOfBounds)
{
    auto tool = analysis::makeLintCheck();
    EXPECT_TRUE(reports(*tool, R"(
        int main() {
            char buf[8];
            buf[9] = 1;
            return 0;
        }
    )",
                        FindingKind::BufferOverflow));
}

TEST(LintCheck, ConstantDivZeroAndShift)
{
    auto tool = analysis::makeLintCheck();
    EXPECT_TRUE(reports(*tool, R"(
        int main() { int z = 0; return 7 / z; }
    )",
                        FindingKind::DivByZero));
    EXPECT_TRUE(reports(*tool, R"(
        int main() { int s = 40; int x = 1; return x << s; }
    )",
                        FindingKind::BadShift));
}

TEST(LintCheck, StraightLineUninit)
{
    auto tool = analysis::makeLintCheck();
    EXPECT_TRUE(reports(*tool, R"(
        int main() { int l; return l + 1; }
    )",
                        FindingKind::UninitRead));
    // Initialized through a helper call: must NOT be flagged.
    EXPECT_FALSE(reports(*tool, R"(
        void init(int *p) { *p = 3; }
        int main() { int l; init(&l); return l; }
    )",
                         FindingKind::UninitRead));
}

TEST(LintCheck, FreePairing)
{
    auto tool = analysis::makeLintCheck();
    EXPECT_TRUE(reports(*tool, R"(
        int main() {
            char *p = malloc(8L);
            free(p); free(p);
            return 0;
        }
    )",
                        FindingKind::DoubleFree));
    EXPECT_TRUE(reports(*tool, R"(
        int main() { char buf[8]; free(buf); return 0; }
    )",
                        FindingKind::InvalidFree));
}

TEST(LintCheck, ArgumentMismatch)
{
    auto tool = analysis::makeLintCheck();
    EXPECT_TRUE(reports(*tool, R"(
        int two(int a, int b) { return a + b; }
        int main() { return two(1); }
    )",
                        FindingKind::ArgMismatch));
}

TEST(LintCheck, MissesInputDependentBug)
{
    auto tool = analysis::makeLintCheck();
    // Without taint tracking, input-driven OOB is invisible.
    EXPECT_FALSE(reports(*tool, R"(
        int main() {
            char buf[8];
            buf[input_byte(0)] = 1;
            return 0;
        }
    )",
                         FindingKind::BufferOverflow));
}

TEST(InferLite, LoopIntervalOverflow)
{
    auto tool = analysis::makeInferLite();
    EXPECT_TRUE(reports(*tool, R"(
        int main() {
            char buf[8];
            for (int i = 0; i < 12; i += 1) { buf[i] = 1; }
            return 0;
        }
    )",
                        FindingKind::BufferOverflow));
    // In-bounds loop: silent.
    EXPECT_FALSE(reports(*tool, R"(
        int main() {
            char buf[8];
            for (int i = 0; i < 8; i += 1) { buf[i] = 1; }
            return 0;
        }
    )",
                         FindingKind::BufferOverflow));
}

TEST(InferLite, TaintedIndexReported)
{
    auto tool = analysis::makeInferLite();
    EXPECT_TRUE(reports(*tool, R"(
        int main() {
            char buf[8];
            buf[input_byte(0)] = 1;
            return 0;
        }
    )",
                        FindingKind::BufferOverflow));
}

TEST(InferLite, FalsePositiveOnGuardedIndex)
{
    auto tool = analysis::makeInferLite();
    // The guard makes this safe, but without branch refinement the
    // tool still reports — the Infer-style imprecision of Table 3.
    EXPECT_TRUE(reports(*tool, R"(
        int main() {
            char buf[8];
            int i = input_byte(0);
            if (i >= 0 && i < 8) { buf[i] = 1; }
            return 0;
        }
    )",
                        FindingKind::BufferOverflow));
}

TEST(InferLite, PossibleOverflowOnTaintedArith)
{
    auto tool = analysis::makeInferLite();
    EXPECT_TRUE(reports(*tool, R"(
        int main() {
            int n = input_byte(0) * input_byte(1);
            int m = n * n;
            return m;
        }
    )",
                        FindingKind::IntOverflow));
}

TEST(DeepScan, GuardedIndexIsClean)
{
    auto tool = analysis::makeDeepScan();
    // Branch-guard refinement removes the inferlite false positive.
    EXPECT_FALSE(reports(*tool, R"(
        int main() {
            char buf[8];
            int i = input_byte(0);
            if (i >= 0 && i < 8) { buf[i] = 1; }
            return 0;
        }
    )",
                         FindingKind::BufferOverflow));
    // But an off-by-one guard is caught.
    EXPECT_TRUE(reports(*tool, R"(
        int main() {
            char buf[8];
            int i = input_byte(0);
            if (i >= 0 && i <= 8) { buf[i] = 1; }
            return 0;
        }
    )",
                        FindingKind::BufferOverflow));
}

TEST(DeepScan, InterproceduralConstants)
{
    auto tool = analysis::makeDeepScan();
    EXPECT_TRUE(reports(*tool, R"(
        void store(int idx) {
            char buf[8];
            buf[idx] = 1;
        }
        int main() { store(12); return 0; }
    )",
                        FindingKind::BufferOverflow));
    // lintcheck cannot follow the constant into the callee.
    auto lint = analysis::makeLintCheck();
    EXPECT_FALSE(reports(*lint, R"(
        void store(int idx) {
            char buf[8];
            buf[idx] = 1;
        }
        int main() { store(12); return 0; }
    )",
                         FindingKind::BufferOverflow));
}

TEST(DeepScan, NullDerefThroughGuard)
{
    auto tool = analysis::makeDeepScan();
    EXPECT_TRUE(reports(*tool, R"(
        int main() {
            char *p = malloc(8L);
            if (p == 0) { return *p; }
            return 0;
        }
    )",
                        FindingKind::NullDeref));
}

TEST(AllTools, BlindToPointerComparisonAndEvalOrder)
{
    // Like Coverity/Cppcheck/Infer in the paper (CWE-469 row: all
    // 0%), none of the tools model cross-object pointer relations or
    // evaluation-order conflicts.
    const char *ptr_sub = R"(
        char a[64];
        char b[16];
        int main() {
            long size = &b[0] - &a[0];
            print_long(size);
            return 0;
        }
    )";
    const char *eval_order = R"(
        char buffer[8];
        char *get(int v) { buffer[0] = (char)v; return buffer; }
        void show(char *x, char *y) { print_str(x); print_str(y); }
        int main() { show(get(1), get(2)); return 0; }
    )";
    for (const auto &tool : analysis::allStaticAnalyzers()) {
        EXPECT_EQ(countFindings(*tool, ptr_sub), 0u) << tool->name();
        EXPECT_EQ(countFindings(*tool, eval_order), 0u)
            << tool->name();
    }
}

TEST(AllTools, CleanProgramHasNoFindings)
{
    const char *clean = R"(
        int sum(int *arr, int n) {
            int total = 0;
            for (int i = 0; i < n; i += 1) { total += arr[i]; }
            return total;
        }
        int main() {
            int data[10];
            for (int i = 0; i < 10; i += 1) { data[i] = i; }
            print_int(sum(data, 10));
            return 0;
        }
    )";
    for (const auto &tool : analysis::allStaticAnalyzers())
        EXPECT_EQ(countFindings(*tool, clean), 0u) << tool->name();
}

TEST(AllTools, FindingRendering)
{
    auto tool = analysis::makeLintCheck();
    auto program = minic::parseAndCheck(
        "int main() { int l; return l; }");
    auto findings = tool->analyze(*program);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].str().find("lintcheck"), std::string::npos);
    EXPECT_NE(findings[0].str().find("uninitialized-read"),
              std::string::npos);
}

} // namespace
