/**
 * @file
 * Property-based tests.
 *
 * The central soundness property of the whole stack is the paper's
 * zero-false-positive guarantee: a program whose execution is free
 * of undefined behavior MUST behave identically under every
 * compiler implementation. We check it two ways:
 *
 *  1. a Csmith-style random generator emits *well-defined* MiniC
 *     programs (guarded arithmetic, clamped indices, balanced
 *     malloc/free) and every one must be stable across all ten
 *     implementations and silent under all three sanitizers;
 *  2. parameterized sweeps assert per-implementation semantics that
 *     the C standard pins down (two's-complement unsigned wrap,
 *     short-circuit evaluation, ...) hold under every configuration.
 */

#include <gtest/gtest.h>

#include "compdiff/engine.hh"
#include "compiler/compiler.hh"
#include "minic/parser.hh"
#include "sanitizers/sanitizers.hh"
#include "support/rng.hh"
#include "support/strings.hh"
#include "vm/vm.hh"

namespace
{

using namespace compdiff;
using support::format;
using support::Rng;

/**
 * Generates random *well-defined* MiniC programs: every division is
 * guarded, every index clamped, every variable initialized, every
 * shift masked, and arithmetic stays in safe ranges.
 */
class SafeProgramGenerator
{
  public:
    explicit SafeProgramGenerator(std::uint64_t seed) : rng_(seed) {}

    std::string
    generate()
    {
        vars_ = 0;
        std::string body;
        const int decls = static_cast<int>(rng_.range(2, 5));
        for (int i = 0; i < decls; i++)
            body += declare();
        const int stmts = static_cast<int>(rng_.range(3, 10));
        for (int i = 0; i < stmts; i++)
            body += statement();
        for (int i = 0; i < vars_; i++)
            body += format("print_int(v%d); newline();\n", i);
        return "int main() {\n" + body + "return 0;\n}\n";
    }

  private:
    std::string
    declare()
    {
        const int id = vars_++;
        return format("int v%d = %ld;\n", id, rng_.range(-50, 50));
    }

    std::string
    var()
    {
        return format("v%d",
                      static_cast<int>(rng_.range(0, vars_ - 1)));
    }

    std::string
    expr(int depth = 0)
    {
        if (depth > 2 || rng_.chance(1, 3))
            return rng_.chance(1, 2)
                       ? var()
                       : format("%ld", rng_.range(-30, 30));
        const std::string a = expr(depth + 1);
        const std::string b = expr(depth + 1);
        switch (rng_.below(6)) {
          case 0:
            return "(" + a + " + " + b + ")";
          case 1:
            return "(" + a + " - " + b + ")";
          case 2:
            // Keep products well inside int range: operands are
            // built from values in [-50, 50] combined a few times.
            return "((" + a + " % 100) * (" + b + " % 100))";
          case 3:
            // Guarded division.
            return "(" + b + " == 0 ? 0 : " + a + " / " + b + ")";
          case 4:
            return "(" + a + " < " + b + ")";
          default:
            return "((" + a + ") & 255)";
        }
    }

    std::string
    statement()
    {
        switch (rng_.below(4)) {
          case 0:
            return var() + " = " + expr() + ";\n";
          case 1:
            return "if (" + expr() + " > " + expr() + ") { " + var() +
                   " = " + expr() + "; } else { " + var() + " = " +
                   expr() + "; }\n";
          case 2: {
            const std::string v = var();
            return "for (int it = 0; it < " +
                   format("%ld", rng_.range(1, 8)) + "; it += 1) { " +
                   v + " = (" + v + " + it) & 1023; }\n";
          }
          default: {
            // A safe array round-trip with a clamped index.
            const std::string v = var();
            return format("{ int arr[8]; for (int k = 0; k < 8; "
                          "k += 1) { arr[k] = k * 2; } %s = "
                          "arr[(%s & 7)]; }\n",
                          v.c_str(), v.c_str());
          }
        }
    }

    Rng rng_;
    int vars_ = 0;
};

class WellDefinedPrograms : public testing::TestWithParam<int>
{};

TEST_P(WellDefinedPrograms, StableAcrossAllImplementations)
{
    SafeProgramGenerator generator(
        0xC0DE0000ull + static_cast<std::uint64_t>(GetParam()));
    const std::string source = generator.generate();

    std::unique_ptr<minic::Program> program;
    ASSERT_NO_THROW(program = minic::parseAndCheck(source))
        << source;

    core::DiffEngine engine(*program);
    auto diff = engine.runInput({});
    EXPECT_FALSE(diff.divergent) << diff.summary() << "\n" << source;

    sanitizers::SanitizerRunner runner(*program);
    EXPECT_FALSE(runner.anyFires({})) << source;
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, WellDefinedPrograms,
                         testing::Range(0, 60));

// ------------------------------------------------------------------
// Per-implementation semantic pins: C-defined behavior must be
// identical under every configuration.
// ------------------------------------------------------------------

class PerConfig
    : public testing::TestWithParam<compiler::CompilerConfig>
{
  protected:
    std::string
    runOutput(std::string_view source)
    {
        auto program = minic::parseAndCheck(source);
        compiler::Compiler comp(*program);
        auto module = comp.compile(GetParam());
        vm::Vm machine(module, GetParam());
        auto result = machine.run({});
        EXPECT_EQ(result.termination, vm::Termination::Exit)
            << GetParam().name();
        return result.output;
    }
};

TEST_P(PerConfig, UnsignedWrapIsDefined)
{
    EXPECT_EQ(runOutput(R"(
        int main() {
            uint u = 4294967295U;
            print_uint(u + 1U); newline();
            print_uint(0U - 1U);
            return 0;
        }
    )"),
              "0\n4294967295");
}

TEST_P(PerConfig, ShortCircuitOrder)
{
    EXPECT_EQ(runOutput(R"(
        int hits = 0;
        int bump() { hits += 1; return 1; }
        int main() {
            int a = 0 && bump();
            int b = 1 || bump();
            print_int(hits);
            print_int(a + b);
            return 0;
        }
    )"),
              "01");
}

TEST_P(PerConfig, SignedDivisionTruncatesTowardZero)
{
    EXPECT_EQ(runOutput(R"(
        int main() {
            print_int(-7 / 2); print_str(" ");
            print_int(-7 % 2); print_str(" ");
            print_int(7 / -2); print_str(" ");
            print_int(7 % -2);
            return 0;
        }
    )"),
              "-3 -1 -3 1");
}

TEST_P(PerConfig, InBoundsShiftsAreStable)
{
    EXPECT_EQ(runOutput(R"(
        int main() {
            print_int(1 << 10); print_str(" ");
            print_int(-64 >> 3); print_str(" ");
            print_uint(2147483648U >> 31);
            return 0;
        }
    )"),
              "1024 -8 1");
}

TEST_P(PerConfig, SequencedSideEffectsAreOrdered)
{
    // Statement boundaries are sequence points; only *unsequenced*
    // conflicts may diverge.
    EXPECT_EQ(runOutput(R"(
        char buffer[8];
        char *fmt(int v) {
            buffer[0] = (char)(48 + v);
            buffer[1] = 0;
            return buffer;
        }
        int main() {
            char first[4];
            strcpy(first, fmt(1));
            char *second = fmt(2);
            print_str(first);
            print_str(second);
            return 0;
        }
    )"),
              "12");
}

TEST_P(PerConfig, StructLayoutIsAbiStable)
{
    // Struct field offsets follow the ABI, not the optimizer: the
    // same field must read back identically everywhere.
    EXPECT_EQ(runOutput(R"(
        struct mix { char tag; int count; long total; };
        int main() {
            struct mix m;
            m.tag = 'x';
            m.count = 7;
            m.total = 99L;
            print_int((int)sizeof(struct mix)); print_str(" ");
            print_int(m.count); print_str(" ");
            print_long(m.total);
            return 0;
        }
    )"),
              "16 7 99");
}

INSTANTIATE_TEST_SUITE_P(
    AllImplementations, PerConfig,
    testing::ValuesIn(compiler::standardImplementations()),
    [](const testing::TestParamInfo<compiler::CompilerConfig> &info) {
        std::string name = info.param.name();
        for (auto &c : name)
            if (c == '-' || c == '+')
                c = '_';
        return name;
    });

} // namespace
