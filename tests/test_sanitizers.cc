/**
 * @file
 * Tests for the sanitizer implementations: each tool must catch its
 * specialty classes, keep its documented blind spots, and stay silent
 * on well-defined programs (no false positives).
 */

#include <gtest/gtest.h>

#include "minic/parser.hh"
#include "sanitizers/sanitizers.hh"

namespace
{

using namespace compdiff;
using compiler::Sanitizer;
using sanitizers::SanitizerRunner;

bool
fires(Sanitizer which, std::string_view source,
      const support::Bytes &input = {})
{
    auto program = minic::parseAndCheck(source);
    SanitizerRunner runner(*program);
    return runner.check(which, input).fired;
}

std::string
reportKind(Sanitizer which, std::string_view source,
           const support::Bytes &input = {})
{
    auto program = minic::parseAndCheck(source);
    SanitizerRunner runner(*program);
    auto verdict = runner.check(which, input);
    return verdict.fired ? verdict.result.sanReports[0].kind : "";
}

// ---------------- ASan ----------------

TEST(ASan, HeapBufferOverflowWrite)
{
    EXPECT_EQ(reportKind(Sanitizer::ASan, R"(
        int main() {
            char *p = malloc(8L);
            p[8] = 'x';
            return 0;
        }
    )"),
              "heap-buffer-overflow");
}

TEST(ASan, HeapBufferOverflowRead)
{
    EXPECT_TRUE(fires(Sanitizer::ASan, R"(
        int main() {
            int *p = (int *)malloc(8L);
            return p[3];
        }
    )"));
}

TEST(ASan, StackBufferOverflow)
{
    EXPECT_EQ(reportKind(Sanitizer::ASan, R"(
        int main() {
            char buf[8];
            buf[9] = 1;
            return 0;
        }
    )"),
              "stack-buffer-overflow");
}

TEST(ASan, StackBufferUnderread)
{
    EXPECT_TRUE(fires(Sanitizer::ASan, R"(
        int main() {
            char buf[8];
            return buf[-2];
        }
    )"));
}

TEST(ASan, GlobalBufferOverflow)
{
    EXPECT_EQ(reportKind(Sanitizer::ASan, R"(
        char g[8];
        int main() { return g[10]; }
    )"),
              "global-buffer-overflow");
}

TEST(ASan, UseAfterFree)
{
    EXPECT_EQ(reportKind(Sanitizer::ASan, R"(
        int main() {
            int *p = (int *)malloc(16L);
            free((char *)p);
            return p[0];
        }
    )"),
              "heap-use-after-free");
}

TEST(ASan, DoubleFree)
{
    EXPECT_EQ(reportKind(Sanitizer::ASan, R"(
        int main() {
            char *p = malloc(16L);
            free(p);
            free(p);
            return 0;
        }
    )"),
              "double-free");
}

TEST(ASan, InvalidFree)
{
    EXPECT_EQ(reportKind(Sanitizer::ASan, R"(
        int main() {
            char buf[8];
            free(buf);
            return 0;
        }
    )"),
              "invalid-free");
}

TEST(ASan, CleanProgramSilent)
{
    EXPECT_FALSE(fires(Sanitizer::ASan, R"(
        int main() {
            char *p = malloc(8L);
            for (int i = 0; i < 8; i += 1) { p[i] = (char)i; }
            int acc = 0;
            for (int i = 0; i < 8; i += 1) { acc += p[i]; }
            free(p);
            char buf[4];
            buf[0] = 1; buf[3] = 2;
            return acc + buf[0] + buf[3];
        }
    )"));
}

// Blind spot: a far-OOB access that lands in another live object.
TEST(ASan, FarOutOfBoundsCanBeMissed)
{
    EXPECT_FALSE(fires(Sanitizer::ASan, R"(
        char a[16];
        char b[16];
        int main() {
            // Far past `a`, deep into the neighbor region.
            return a[32 + input_size()];
        }
    )"));
}

// ---------------- UBSan ----------------

TEST(UBSan, SignedOverflowAdd)
{
    EXPECT_EQ(reportKind(Sanitizer::UBSan, R"(
        int main() {
            int big = 2147483647 - input_size();
            return big + 1;
        }
    )"),
              "signed-integer-overflow");
}

TEST(UBSan, SignedOverflowMul)
{
    EXPECT_TRUE(fires(Sanitizer::UBSan, R"(
        int main() {
            int a = 100000 + input_size();
            return a * a;
        }
    )"));
}

TEST(UBSan, DivisionByZero)
{
    EXPECT_EQ(reportKind(Sanitizer::UBSan, R"(
        int main() { return 5 / input_size(); }
    )"),
              "division-by-zero");
}

TEST(UBSan, IntMinDivMinusOne)
{
    EXPECT_EQ(reportKind(Sanitizer::UBSan, R"(
        int main() {
            int m = -2147483647 - 1;
            int d = -1 - input_size();
            return m / d;
        }
    )"),
              "signed-integer-overflow");
}

TEST(UBSan, ShiftOutOfBounds)
{
    EXPECT_EQ(reportKind(Sanitizer::UBSan, R"(
        int main() {
            int n = 40 + input_size();
            return 1 << n;
        }
    )"),
              "shift-out-of-bounds");
}

TEST(UBSan, NullDereference)
{
    EXPECT_EQ(reportKind(Sanitizer::UBSan, R"(
        int main() {
            int *p = 0;
            return *p;
        }
    )"),
              "null-pointer-dereference");
}

TEST(UBSan, UnsignedWrapIsDefinedAndSilent)
{
    EXPECT_FALSE(fires(Sanitizer::UBSan, R"(
        int main() {
            uint u = 4294967295U;
            u = u + 2U;
            return (int)u;
        }
    )"));
}

// Blind spot: cross-object pointer comparison is not checked.
TEST(UBSan, PointerComparisonNotChecked)
{
    EXPECT_FALSE(fires(Sanitizer::UBSan, R"(
        char a[8];
        char b[8];
        int main() { return &a[0] < &b[0]; }
    )"));
}

TEST(UBSan, CleanProgramSilent)
{
    EXPECT_FALSE(fires(Sanitizer::UBSan, R"(
        int main() {
            int a = 1000000;
            long b = (long)a * (long)a;
            return (int)(b % 97L);
        }
    )"));
}

// ---------------- MSan ----------------

TEST(MSan, BranchOnUninitialized)
{
    EXPECT_EQ(reportKind(Sanitizer::MSan, R"(
        int main() {
            int l;
            if (l > 0) { print_str("pos"); }
            return 0;
        }
    )"),
              "use-of-uninitialized-value");
}

TEST(MSan, UninitializedHeapBranch)
{
    EXPECT_TRUE(fires(Sanitizer::MSan, R"(
        int main() {
            int *p = (int *)malloc(16L);
            if (p[1] == 7) { print_str("seven"); }
            return 0;
        }
    )"));
}

TEST(MSan, PropagatesThroughArithmetic)
{
    EXPECT_TRUE(fires(Sanitizer::MSan, R"(
        int main() {
            int l;
            int derived = l * 3 + 1;
            if (derived > 10) { print_str("big"); }
            return 0;
        }
    )"));
}

// The paper's Listing 4 blind spot: printing an uninitialized value
// is deliberately NOT reported.
TEST(MSan, PrintingUninitializedIsMissed)
{
    EXPECT_FALSE(fires(Sanitizer::MSan, R"(
        int main() {
            int l;
            print_int(l);
            return 0;
        }
    )"));
}

TEST(MSan, InitializedViaMemsetSilent)
{
    EXPECT_FALSE(fires(Sanitizer::MSan, R"(
        int main() {
            int arr[4];
            memset((char *)arr, 0, 16L);
            if (arr[2] == 0) { print_str("zero"); }
            return 0;
        }
    )"));
}

TEST(MSan, CopiedPoisonIsTracked)
{
    EXPECT_TRUE(fires(Sanitizer::MSan, R"(
        int main() {
            int src[2];
            int dst[2];
            memcpy((char *)dst, (char *)src, 8L);
            if (dst[0]) { print_str("x"); }
            return 0;
        }
    )"));
}

TEST(MSan, CleanProgramSilent)
{
    EXPECT_FALSE(fires(Sanitizer::MSan, R"(
        int main() {
            int a = 3;
            int b = a * 2;
            if (b == 6) { print_str("ok"); }
            return 0;
        }
    )"));
}

// ---------------- harness ----------------

TEST(SanitizerRunner, AnyFiresAggregates)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            char *p = malloc(4L);
            p[4 + input_size()] = 1;
            return 0;
        }
    )");
    SanitizerRunner runner(*program);
    EXPECT_TRUE(runner.anyFires({}));
    EXPECT_FALSE(runner.allReports({}).empty());
}

TEST(SanitizerRunner, ReportUbKindMapsOntoTaxonomy)
{
    // Every report of the certified UB classes maps; the mapping is
    // what sancheck's FN/FP classification keys on.
    using refinterp::UbKind;
    const std::pair<const char *, UbKind> kMapped[] = {
        {"signed-integer-overflow", UbKind::SignedOverflow},
        {"division-by-zero", UbKind::DivideByZero},
        {"shift-out-of-bounds", UbKind::OversizedShift},
        {"null-pointer-dereference", UbKind::NullDeref},
        {"use-of-uninitialized-value", UbKind::UninitRead},
        {"heap-buffer-overflow", UbKind::OutOfBounds},
        {"stack-buffer-overflow", UbKind::OutOfBounds},
        {"global-buffer-overflow", UbKind::OutOfBounds},
        {"heap-use-after-free", UbKind::OutOfBounds},
    };
    for (const auto &[kind_str, expected] : kMapped) {
        vm::SanReport report;
        report.kind = kind_str;
        refinterp::UbKind kind;
        EXPECT_TRUE(sanitizers::reportUbKind(report, &kind))
            << kind_str;
        EXPECT_EQ(kind, expected) << kind_str;
    }
    // Allocator-state reports describe heap-API misuse, not a UB
    // access class the reference interpreter certifies.
    for (const char *kind_str : {"double-free", "invalid-free"}) {
        vm::SanReport report;
        report.kind = kind_str;
        refinterp::UbKind kind;
        EXPECT_FALSE(sanitizers::reportUbKind(report, &kind))
            << kind_str;
    }
}

TEST(SanitizerRunner, FirstUbKindFollowsFirstReport)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            int n = 40 + input_size();
            return 1 << n;
        }
    )");
    SanitizerRunner runner(*program);
    const auto verdict = runner.check(Sanitizer::UBSan, {});
    ASSERT_TRUE(verdict.fired);
    EXPECT_EQ(verdict.firstReportKind(), "shift-out-of-bounds");
    refinterp::UbKind kind;
    ASSERT_TRUE(verdict.firstUbKind(&kind));
    EXPECT_EQ(kind, refinterp::UbKind::OversizedShift);

    // A silent verdict leaves *kind untouched.
    auto clean = minic::parseAndCheck("int main() { return 0; }");
    SanitizerRunner clean_runner(*clean);
    const auto silent = clean_runner.check(Sanitizer::UBSan, {});
    EXPECT_FALSE(silent.fired);
    kind = refinterp::UbKind::NullDeref;
    EXPECT_FALSE(silent.firstUbKind(&kind));
    EXPECT_EQ(kind, refinterp::UbKind::NullDeref);
}

TEST(SanitizerRunner, SanitizerBuildsDisableUbExploits)
{
    // The overflow guard must still be *checked* (not folded away)
    // in a UBSan build: the sanitizer sees the overflow.
    EXPECT_TRUE(fires(Sanitizer::UBSan, R"(
        int check(int offset, int len) {
            if (offset + len < offset) { return -1; }
            return 0;
        }
        int main() { return check(2147483547, 101); }
    )"));
}

} // namespace
