/**
 * @file
 * Tests for trace-based fault localization (paper Section 5): the
 * aligner must name the folded guard for control divergence and
 * classify value-only instability as data divergence.
 */

#include <gtest/gtest.h>

#include "compdiff/localize.hh"
#include "fuzz/fuzzer.hh"
#include "minic/parser.hh"

namespace
{

using namespace compdiff;
using compiler::CompilerConfig;
using compiler::OptLevel;
using compiler::Vendor;
using core::localizeDivergence;

const CompilerConfig kGccO0{Vendor::Gcc, OptLevel::O0};
const CompilerConfig kClangO2{Vendor::Clang, OptLevel::O2};

TEST(Localize, NamesTheFoldedGuard)
{
    // Listing 1: the guard is on source line 5; -O0 takes the early
    // return while -O2 falls through to the dump.
    auto program = minic::parseAndCheck(
        "int dump_data(int offset, int len) {\n"     // line 1
        "    if (offset < 0 || len < 0) { return -1; }\n"
        "    if (offset + len < offset) {\n"          // line 3
        "        return -1;\n"                        // line 4
        "    }\n"
        "    print_str(\"dump\");\n"                  // line 6
        "    return 0;\n"
        "}\n"
        "int main() {\n"
        "    print_int(dump_data(2147483547, 101));\n"
        "    return 0;\n"
        "}\n");

    auto loc = localizeDivergence(*program, kGccO0, kClangO2, {});
    EXPECT_TRUE(loc.divergent);
    EXPECT_TRUE(loc.controlDivergence);
    EXPECT_FALSE(loc.dataDivergence);
    // The executions part ways at the guard: one first differing
    // block is the `return -1` body (line 3/4 region), the other the
    // fall-through (line 6 region).
    const auto lo = std::min(loc.lineA, loc.lineB);
    const auto hi = std::max(loc.lineA, loc.lineB);
    EXPECT_GE(lo, 3u);
    EXPECT_LE(hi, 7u);
    EXPECT_NE(loc.str().find("control divergence"),
              std::string::npos);
}

TEST(Localize, ClassifiesValueInstabilityAsDataDivergence)
{
    // Uninitialized value printed: both executions take the same
    // path; only the printed value differs.
    auto program = minic::parseAndCheck(R"(
        int main() {
            int l;
            print_int(l);
            newline();
            return 0;
        }
    )");
    auto loc = localizeDivergence(*program, kGccO0, kClangO2, {});
    EXPECT_TRUE(loc.divergent);
    EXPECT_FALSE(loc.controlDivergence);
    EXPECT_TRUE(loc.dataDivergence);
    EXPECT_NE(loc.str().find("data divergence"), std::string::npos);
}

TEST(Localize, StableProgramReportsNothing)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            print_str("same everywhere");
            return 0;
        }
    )");
    auto loc = localizeDivergence(*program, kGccO0, kClangO2, {});
    EXPECT_FALSE(loc.divergent);
    EXPECT_FALSE(loc.controlDivergence);
    EXPECT_FALSE(loc.dataDivergence);
}

TEST(Localize, SameConfigNeverDiverges)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            int l;
            print_int(l);
            return 0;
        }
    )");
    auto loc = localizeDivergence(*program, kGccO0, kGccO0, {});
    EXPECT_FALSE(loc.divergent);
}

// Listing 1's folded overflow guard: the reference interpreter and
// unoptimized builds reject, UB-exploiting optimized builds accept.
const char *kGuardSource = R"(
    int main() {
        int offset = 2147483547;
        int len = 101;
        if (offset + len < offset) {
            print_str("rejected");
        } else {
            print_str("accepted");
        }
        newline();
        return 0;
    }
)";

TEST(LocalizeAcross, BridgesCrossBackendRepresentatives)
{
    // "ref" leads the set, so the natural class-0 representative has
    // no CompilerConfig; localizeAcross must substitute the
    // same-class simulated member (gcc-O0) and say so.
    auto program = minic::parseAndCheck(kGuardSource);
    auto impls = core::ImplementationRegistry::global().parse(
        "ref,gcc:-O0,gcc:-O2");
    core::DiffEngine engine(*program, impls, {});
    auto diff = engine.runInput({}, 0);
    ASSERT_TRUE(diff.divergent);
    ASSERT_EQ(diff.classOf[0], diff.classOf[1]); // ref == gcc-O0

    auto pair = core::localizeAcross(*program, impls, diff, {});
    EXPECT_TRUE(pair.attempted);
    EXPECT_TRUE(pair.bridged);
    EXPECT_EQ(pair.requestedA, "ref");
    EXPECT_EQ(pair.implA, "gcc-O0");
    EXPECT_EQ(pair.implB, "gcc-O2");
    // The note names exactly which pair was bridged and why.
    EXPECT_NE(pair.note.find("ref -> gcc-O0"), std::string::npos)
        << pair.note;
    EXPECT_NE(pair.note.find("same"), std::string::npos);
    EXPECT_TRUE(pair.localization.divergent);
    EXPECT_TRUE(pair.localization.controlDivergence);
}

TEST(LocalizeAcross, ReportsWhichClassBlocksAlignment)
{
    // With only "ref" in its behavior class there is nothing to
    // bridge to: no localization, and the note names the blocked
    // class instead of failing silently.
    auto program = minic::parseAndCheck(kGuardSource);
    auto impls = core::ImplementationRegistry::global().parse(
        "ref,clang:-O2");
    core::DiffEngine engine(*program, impls, {});
    auto diff = engine.runInput({}, 0);
    ASSERT_TRUE(diff.divergent);

    auto pair = core::localizeAcross(*program, impls, diff, {});
    EXPECT_FALSE(pair.attempted);
    EXPECT_FALSE(pair.bridged);
    EXPECT_EQ(pair.requestedA, "ref");
    EXPECT_EQ(pair.requestedB, "clang-O2");
    EXPECT_NE(pair.note.find("ref"), std::string::npos);
    EXPECT_NE(
        pair.note.find("no simulated compiler implementation"),
        std::string::npos)
        << pair.note;
}

TEST(LocalizeAcross, AllSimulatedPairNeedsNoBridge)
{
    auto program = minic::parseAndCheck(kGuardSource);
    auto impls = core::ImplementationRegistry::global().parse(
        "gcc:-O0,gcc:-O2");
    core::DiffEngine engine(*program, impls, {});
    auto diff = engine.runInput({}, 0);
    ASSERT_TRUE(diff.divergent);

    auto pair = core::localizeAcross(*program, impls, diff, {});
    EXPECT_TRUE(pair.attempted);
    EXPECT_FALSE(pair.bridged);
    EXPECT_EQ(pair.implA, "gcc-O0");
    EXPECT_EQ(pair.implB, "gcc-O2");
    EXPECT_NE(pair.note.find("direct"), std::string::npos);
}

TEST(DivergenceFeedback, GrowsCorpusOnNewPartitions)
{
    // The uninit path is behind a rare two-byte gate; divergence
    // feedback keeps partition-novel inputs as seeds.
    const char *source = R"(
        int main() {
            if (input_byte(0) == 'K') {
                if (input_byte(1) == 'Z') {
                    int l;
                    print_int(l);
                    probe(9);
                }
            }
            print_str(".");
            return 0;
        }
    )";
    auto p1 = minic::parseAndCheck(source);
    fuzz::FuzzOptions with;
    with.maxExecs = 3000;
    with.divergenceFeedback = true;
    fuzz::Fuzzer guided(*p1, {{'K', 'A'}}, with);
    auto stats = guided.run();

    auto p2 = minic::parseAndCheck(source);
    fuzz::FuzzOptions without = with;
    without.divergenceFeedback = false;
    fuzz::Fuzzer plain(*p2, {{'K', 'A'}}, without);
    auto base = plain.run();

    // Both modes must find the bug here; the guided corpus retains
    // the partition-novel seeds.
    EXPECT_GE(stats.diffs, 1u);
    EXPECT_GE(base.diffs, 1u);
    EXPECT_GE(stats.seeds, base.seeds);
}

} // namespace
