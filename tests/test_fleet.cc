/**
 * @file
 * Fleet-mode tests: multi-process coordination, crash revival, and
 * the bit-identity contract under worker death.
 *
 * The invariant under test extends test_session.cc's strongest claim
 * across process boundaries: kill -9 any fleet *worker process* at
 * any time, and the finished campaign's checkpoints, event journals,
 * divergence journal, and fuzzer_stats are byte-identical to a
 * single-process run of the same campaign. The revival matrix
 * exercises it for 1-worker and 3-worker fleets with the kill landing
 * early (before the first cadence checkpoint is likely) and late
 * (after saved progress exists, so the revived worker must resume
 * mid-shard rather than restart).
 *
 * The lease tests pin down the mutual-exclusion token: disjoint
 * chunk assignment, double-spawn refusal against a live holder, and
 * dead-holder breaking. The deadline test covers the wall-clock
 * budget: SIGTERM'd workers checkpoint and exit, and rerunning the
 * same command finishes the campaign — still byte-identically.
 *
 * The worker/coordinator processes run the real `compdiff_fleet`
 * binary (COMPDIFF_FLEET_BIN, wired in tests/CMakeLists.txt), so the
 * argv protocol is under test too.
 */

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet.hh"
#include "fuzz/fuzzer.hh"
#include "minic/parser.hh"
#include "obs/events.hh"
#include "session/checkpoint.hh"
#include "session/heartbeat.hh"
#include "session/lease.hh"
#include "session/session.hh"
#include "targets/targets.hh"

namespace
{

using namespace compdiff;
using support::Bytes;

/** A pid far above any default pid_max namespace still in use —
 *  probes ESRCH, i.e. a dead lease holder. */
constexpr std::uint64_t kDeadPid = 4194303;

std::string
freshDir(const std::string &leaf)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("compdiff_" + std::string(info->test_suite_name()) + "_" +
         info->name() + "_" + leaf);
    std::filesystem::remove_all(dir);
    return dir.string();
}

session::ShardLease
makeLease(std::size_t shard, std::uint64_t pid)
{
    session::ShardLease lease;
    lease.shard = shard;
    lease.pid = pid;
    return lease;
}

/** The final (shutdown) checkpoint payload of every shard. */
std::vector<Bytes>
finalCheckpoints(const std::string &dir, std::size_t shards)
{
    std::vector<Bytes> payloads;
    for (std::size_t s = 0; s < shards; s++) {
        auto payload = session::readLastRecord(
            dir + "/shard-" + std::to_string(s) + ".journal");
        EXPECT_TRUE(payload.has_value()) << "shard " << s;
        payloads.push_back(payload.value_or(Bytes{}));
    }
    return payloads;
}

std::string
readFileOr(const std::string &path, const std::string &fallback)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fallback;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** fuzzer_stats minus the wall-clock-dependent lines. */
std::string
stableStatsLines(const std::string &text)
{
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("run_time", 0) == 0 ||
            line.rfind("execs_per_sec", 0) == 0 ||
            line.rfind("session_restarts", 0) == 0) {
            continue;
        }
        out << line << "\n";
    }
    return out.str();
}

// --- the fleet binary under test ---------------------------------

std::string
fleetBinary()
{
#ifdef COMPDIFF_FLEET_BIN
    return COMPDIFF_FLEET_BIN;
#else
    return "";
#endif
}

/** Spawn the fleet binary with `args`; stdout/stderr silenced. */
pid_t
launchFleet(const std::vector<std::string> &args)
{
    std::vector<std::string> owned;
    owned.push_back(fleetBinary());
    owned.insert(owned.end(), args.begin(), args.end());
    std::vector<char *> argv;
    for (auto &arg : owned)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::freopen("/dev/null", "w", stdout);
        ::freopen("/dev/null", "w", stderr);
        ::execv(argv[0], argv.data());
        _exit(127);
    }
    return pid;
}

int
waitExit(pid_t pid)
{
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/** The campaign every multi-process test runs: pktdump, a real
 *  divergence-rich target, split into 3 deterministic shards. */
constexpr std::uint64_t kFleetExecs = 6'000;
constexpr std::size_t kFleetShards = 3;
constexpr std::uint64_t kCheckpointEvery = 200;

std::vector<std::string>
fleetArgs(const std::string &dir, std::size_t workers)
{
    return {"--target=pktdump",
            "--fuzz=" + std::to_string(kFleetExecs),
            "--shards=" + std::to_string(kFleetShards),
            "--checkpoint-every=" + std::to_string(kCheckpointEvery),
            "--heartbeat-every=0.05",
            "--workers=" + std::to_string(workers),
            "--poll-every=0.02",
            "--quiet",
            "--session=" + dir};
}

/** Single-process reference run of the same campaign (the identity
 *  baseline), persisted so artifacts can be byte-compared. */
void
runReference(const std::string &dir)
{
    const targets::TargetProgram *target =
        targets::findTarget("pktdump");
    ASSERT_NE(target, nullptr);
    auto program = minic::parseAndCheck(target->source);
    session::SessionConfig config;
    config.dir = dir;
    config.shards = kFleetShards;
    config.checkpointEvery = kCheckpointEvery;
    config.fuzz.maxExecs = kFleetExecs;
    session::CampaignSession session(*program, target->seeds,
                                     config);
    session.run();
    ASSERT_TRUE(session.completed());
}

/** Kill -9 one live lease-holding worker. `late` first waits for
 *  saved progress (a cadence checkpoint) so the revival must resume
 *  mid-shard. Returns true when a kill landed. */
bool
killOneWorker(const std::string &dir, bool late)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
        if (late) {
            bool progressed = false;
            for (std::size_t s = 0; s < kFleetShards && !progressed;
                 s++) {
                try {
                    const auto payload = session::readLastRecord(
                        dir + "/shard-" + std::to_string(s) +
                        ".journal");
                    progressed =
                        payload.has_value() && !payload->empty();
                } catch (const session::SessionError &) {
                }
            }
            if (!progressed) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
                continue;
            }
        }
        for (std::size_t s = 0; s < kFleetShards; s++) {
            const auto lease = session::readShardLease(dir, s);
            if (!lease || lease->pid == 0)
                continue;
            if (::kill(static_cast<pid_t>(lease->pid), SIGKILL) ==
                0) {
                return true;
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
}

std::uint64_t
countFleetEvents(const std::string &dir, const std::string &kind)
{
    std::uint64_t count = 0;
    for (const auto &event :
         obs::readEventLog(dir + "/fleet.jsonl").events) {
        if (event.kind == kind)
            count++;
    }
    return count;
}

/** Byte-compare every deterministic artifact of two finished
 *  sessions of the same campaign. */
void
expectIdenticalSessions(const std::string &got,
                        const std::string &want)
{
    EXPECT_EQ(finalCheckpoints(got, kFleetShards),
              finalCheckpoints(want, kFleetShards));
    for (std::size_t s = 0; s < kFleetShards; s++) {
        const std::string leaf =
            "/shard-" + std::to_string(s) + ".events.jsonl";
        EXPECT_EQ(readFileOr(got + leaf, "<missing got>"),
                  readFileOr(want + leaf, "<missing want>"))
            << "shard " << s << " event journal";
    }
    EXPECT_EQ(
        readFileOr(got + "/divergences.journal", "<missing got>"),
        readFileOr(want + "/divergences.journal",
                   "<missing want>"));
    EXPECT_EQ(
        stableStatsLines(readFileOr(got + "/fuzzer_stats", "")),
        stableStatsLines(readFileOr(want + "/fuzzer_stats", "")));
}

// --- leases -------------------------------------------------------

TEST(FleetLease, RoundTripAndPaths)
{
    session::ShardLease lease;
    lease.shard = 7;
    lease.worker = 2;
    lease.pid = 1234;
    lease.generation = 3;
    lease.acquiredUnix = 1700000000.5;
    const auto parsed =
        session::parseLease(session::renderLease(lease));
    EXPECT_EQ(parsed.shard, lease.shard);
    EXPECT_EQ(parsed.worker, lease.worker);
    EXPECT_EQ(parsed.pid, lease.pid);
    EXPECT_EQ(parsed.generation, lease.generation);
    EXPECT_NEAR(parsed.acquiredUnix, lease.acquiredUnix, 1.0);
    EXPECT_EQ(session::leasePath("/tmp/x", 7),
              "/tmp/x/shard-7.lease");
}

TEST(FleetLease, LiveHolderRefusesDeadHolderBreaks)
{
    const std::string dir = freshDir("leases");
    std::filesystem::create_directories(dir);

    // pid 1 is alive on any Linux (init/pid-namespace root): a
    // second acquirer must be refused with the holder reported.
    ASSERT_EQ(session::acquireShardLease(dir, makeLease(0, 1)),
              session::LeaseOutcome::Acquired);
    session::ShardLease holder;
    EXPECT_EQ(session::acquireShardLease(
                  dir, makeLease(0, static_cast<std::uint64_t>(
                                        ::getpid())),
                  &holder),
              session::LeaseOutcome::Held);
    EXPECT_EQ(holder.pid, 1u);

    // A dead holder's lease is broken and taken over.
    ASSERT_EQ(
        session::acquireShardLease(dir, makeLease(1, kDeadPid)),
        session::LeaseOutcome::Acquired);
    EXPECT_EQ(session::acquireShardLease(
                  dir, makeLease(1, static_cast<std::uint64_t>(
                                        ::getpid()))),
              session::LeaseOutcome::Acquired);
    const auto taken = session::readShardLease(dir, 1);
    ASSERT_TRUE(taken.has_value());
    EXPECT_EQ(taken->pid, static_cast<std::uint64_t>(::getpid()));

    // Release is pid-gated: a stranger's release is a no-op, the
    // holder's removes the file.
    EXPECT_FALSE(session::releaseShardLease(dir, 1, kDeadPid));
    EXPECT_TRUE(session::readShardLease(dir, 1).has_value());
    EXPECT_TRUE(session::releaseShardLease(
        dir, 1, static_cast<std::uint64_t>(::getpid())));
    EXPECT_FALSE(session::readShardLease(dir, 1).has_value());
}

TEST(FleetLease, ReacquireOwnShard)
{
    const std::string dir = freshDir("own");
    std::filesystem::create_directories(dir);
    const auto mine =
        makeLease(0, static_cast<std::uint64_t>(::getpid()));
    ASSERT_EQ(session::acquireShardLease(dir, mine),
              session::LeaseOutcome::Acquired);
    // A revived worker re-running its shard list re-acquires its own
    // lease instead of refusing itself.
    EXPECT_EQ(session::acquireShardLease(dir, mine),
              session::LeaseOutcome::Acquired);
}

// --- shard chunking ----------------------------------------------

TEST(FleetChunks, DisjointEvenAndOrdered)
{
    const std::vector<std::size_t> pending = {0, 1, 2, 3, 4, 5, 6};
    const auto chunks = fleet::chunkShards(pending, 3);
    ASSERT_EQ(chunks.size(), 3u);
    std::set<std::size_t> seen;
    std::size_t total = 0;
    for (const auto &chunk : chunks) {
        ASSERT_FALSE(chunk.empty());
        EXPECT_LE(chunk.size(), 3u);
        EXPECT_GE(chunk.size(), 2u);
        for (const std::size_t shard : chunk) {
            EXPECT_TRUE(seen.insert(shard).second)
                << "shard " << shard << " assigned twice";
            total++;
        }
    }
    EXPECT_EQ(total, pending.size());

    // More slots than shards: one shard per chunk, no empties.
    const auto wide = fleet::chunkShards({4, 9}, 5);
    ASSERT_EQ(wide.size(), 2u);
    EXPECT_EQ(wide[0], std::vector<std::size_t>{4});
    EXPECT_EQ(wide[1], std::vector<std::size_t>{9});

    EXPECT_TRUE(fleet::chunkShards({}, 3).empty());
}

TEST(FleetChunks, WorkerArgsRoundTrip)
{
    fleet::WorkerSpec spec;
    spec.shards = {1, 3, 5};
    spec.worker = 4;
    spec.generation = 17;
    fleet::WorkerSpec parsed;
    for (const auto &arg : fleet::workerArgs(spec))
        EXPECT_TRUE(fleet::parseWorkerArg(arg, &parsed)) << arg;
    EXPECT_EQ(parsed.shards, spec.shards);
    EXPECT_EQ(parsed.worker, spec.worker);
    EXPECT_EQ(parsed.generation, spec.generation);
    EXPECT_FALSE(fleet::parseWorkerArg("--unrelated=x", &parsed));
}

// --- worker entry point ------------------------------------------

TEST(FleetWorker, DoubleSpawnRefusedViaLease)
{
    const std::string dir = freshDir("dup");
    std::filesystem::create_directories(dir);
    // Shard 1 is owned by a live process (pid 1): a worker assigned
    // {0, 1} must release shard 0 again and yield — never run a
    // second fuzzer on a leased shard.
    ASSERT_EQ(session::acquireShardLease(dir, makeLease(1, 1)),
              session::LeaseOutcome::Acquired);

    const targets::TargetProgram *target =
        targets::findTarget("pktdump");
    ASSERT_NE(target, nullptr);
    auto program = minic::parseAndCheck(target->source);
    session::SessionConfig config;
    config.dir = dir;
    config.shards = kFleetShards;
    config.fuzz.maxExecs = kFleetExecs;
    fleet::WorkerSpec spec;
    spec.shards = {0, 1};
    EXPECT_EQ(fleet::runWorker(*program, target->seeds, config,
                               spec),
              fleet::kWorkerExitLeaseHeld);
    // Shard 0's lease was released on the way out; shard 1's holder
    // kept its token.
    EXPECT_FALSE(session::readShardLease(dir, 0).has_value());
    const auto kept = session::readShardLease(dir, 1);
    ASSERT_TRUE(kept.has_value());
    EXPECT_EQ(kept->pid, 1u);
}

// --- fuzzer import primitives (the sync path) --------------------

TEST(FleetSync, ImportSeedsExecutesAndCaps)
{
    const targets::TargetProgram *target =
        targets::findTarget("pktdump");
    ASSERT_NE(target, nullptr);
    auto program = minic::parseAndCheck(target->source);
    fuzz::FuzzOptions options;
    options.maxExecs = 1'000;
    options.maxInputSize = 8;
    fuzz::Fuzzer fuzzer(*program, target->seeds, options);

    const std::uint64_t before = fuzzer.stats().execs;
    Bytes oversized(64, 0x41);
    const std::size_t imported =
        fuzzer.importSeeds({Bytes{1, 2, 3}, oversized});
    EXPECT_EQ(imported, 2u);
    EXPECT_EQ(fuzzer.stats().execs, before + 2);

    // VirginMap merge round-trips through snapshot bytes.
    fuzzer.mergeVirginBytes(fuzzer.virginMap().snapshotBytes());
    // Size-mismatched bytes are ignored, not fatal.
    fuzzer.mergeVirginBytes(Bytes{1, 2, 3});
}

// --- the multi-process matrix ------------------------------------

struct RevivalCase
{
    std::size_t workers;
    bool late;
};

class FleetRevival
    : public ::testing::TestWithParam<RevivalCase>
{};

/** kill -9 a worker mid-campaign; the finished fleet session must be
 *  byte-identical to an uninterrupted single-process run. */
TEST_P(FleetRevival, KilledWorkerRevivesBitExact)
{
    ASSERT_FALSE(fleetBinary().empty());
    const RevivalCase param = GetParam();
    const std::string fleetDir = freshDir("fleet");
    const std::string refDir = freshDir("ref");
    std::filesystem::create_directories(fleetDir);

    const pid_t coordinator =
        launchFleet(fleetArgs(fleetDir, param.workers));
    ASSERT_GT(coordinator, 0);
    const bool killed = killOneWorker(fleetDir, param.late);
    const int code = waitExit(coordinator);
    // 0 = no divergences, 1 = divergences found — both complete.
    EXPECT_TRUE(code == 0 || code == 1) << "exit code " << code;

    runReference(refDir);
    expectIdenticalSessions(fleetDir, refDir);

    // The kill must actually have landed and been revived (a miss
    // would silently downgrade this test to the no-kill smoke).
    EXPECT_TRUE(killed);
    EXPECT_GE(countFleetEvents(fleetDir, "fleet_revive"), 1u);
    EXPECT_GE(countFleetEvents(fleetDir, "fleet_dead"), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FleetRevival,
    ::testing::Values(RevivalCase{1, false}, RevivalCase{1, true},
                      RevivalCase{3, false}, RevivalCase{3, true}),
    [](const ::testing::TestParamInfo<RevivalCase> &info) {
        return "workers" + std::to_string(info.param.workers) +
               (info.param.late ? "_late" : "_early");
    });

/** Deadline → checkpointed partial state; rerunning the same command
 *  (with a different worker count — elasticity) finishes the
 *  campaign byte-identically. */
TEST(FleetDeadline, HaltsResumablyThenElasticRerunFinishes)
{
    ASSERT_FALSE(fleetBinary().empty());
    const std::string fleetDir = freshDir("fleet");
    const std::string refDir = freshDir("ref");
    std::filesystem::create_directories(fleetDir);

    auto first = fleetArgs(fleetDir, 2);
    first.push_back("--deadline=0.3");
    ASSERT_EQ(waitExit(launchFleet(first)), 4);

    // SIGTERM'd workers released their shard leases on exit.
    for (std::size_t s = 0; s < kFleetShards; s++)
        EXPECT_FALSE(session::readShardLease(fleetDir, s)
                         .has_value())
            << "shard " << s;
    EXPECT_GE(countFleetEvents(fleetDir, "fleet_deadline"), 1u);

    // Rerun with a different slot count: late joiners pick up the
    // unleased shards and the campaign completes.
    const int code = waitExit(launchFleet(fleetArgs(fleetDir, 3)));
    EXPECT_TRUE(code == 0 || code == 1) << "exit code " << code;

    runReference(refDir);
    expectIdenticalSessions(fleetDir, refDir);
}

} // namespace
