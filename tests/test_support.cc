/**
 * @file
 * Unit tests for the support library (hashing, RNG, strings, tables).
 */

#include <gtest/gtest.h>

#include "support/bytes.hh"
#include "support/hash.hh"
#include "support/rng.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace
{

using namespace compdiff::support;

TEST(Hash, MurmurIsDeterministic)
{
    EXPECT_EQ(murmurHash64("hello"), murmurHash64("hello"));
    EXPECT_NE(murmurHash64("hello"), murmurHash64("hellp"));
    EXPECT_NE(murmurHash64("hello", 1), murmurHash64("hello", 2));
}

TEST(Hash, EmptyAndShortInputs)
{
    // Different lengths of identical prefixes must hash differently.
    EXPECT_NE(murmurHash64(""), murmurHash64(std::string_view("\0", 1)));
    EXPECT_NE(murmurHash64("a"), murmurHash64("aa"));
    // 15/16/17-byte boundary around the block size.
    const std::string base(17, 'x');
    EXPECT_NE(murmurHash64(base.substr(0, 15)),
              murmurHash64(base.substr(0, 16)));
    EXPECT_NE(murmurHash64(base.substr(0, 16)),
              murmurHash64(base.substr(0, 17)));
}

TEST(Hash, CombinerOrderSensitive)
{
    HashCombiner a;
    a.add(1).add(2);
    HashCombiner b;
    b.add(2).add(1);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; i++) {
        const auto v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Strings, SplitJoinTrim)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
    EXPECT_EQ(trim("  x \n"), "x");
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_TRUE(endsWith("foobar", "bar"));
    EXPECT_TRUE(contains("foobar", "oba"));
    EXPECT_EQ(replaceAll("aaa", "a", "bb"), "bbbbbb");
}

TEST(Strings, Format)
{
    EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
}

TEST(Bytes, LittleEndianHelpers)
{
    Bytes buffer;
    appendLE32(buffer, 0x01020304);
    appendLE16(buffer, 0xbeef);
    EXPECT_EQ(readLE32(buffer, 0), 0x01020304u);
    EXPECT_EQ(readLE16(buffer, 4), 0xbeef);
    EXPECT_EQ(readLE32(buffer, 3, 7), 7u); // out of range
}

TEST(Table, AlignsColumns)
{
    TextTable table;
    table.setHeader({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"long-name", "2"});
    const auto text = table.str();
    EXPECT_NE(text.find("long-name"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, BoxStatsQuartiles)
{
    const auto stats = boxStats({1, 2, 3, 4, 5});
    EXPECT_DOUBLE_EQ(stats.min, 1);
    EXPECT_DOUBLE_EQ(stats.median, 3);
    EXPECT_DOUBLE_EQ(stats.max, 5);
    EXPECT_DOUBLE_EQ(stats.q1, 2);
    EXPECT_DOUBLE_EQ(stats.q3, 4);
}

} // namespace
