/**
 * @file
 * Tests for the divergence-preserving reduction subsystem
 * (src/reduce): the oracle contract, ddmin idempotence, signature
 * preservation on every accepted candidate, jobs-neutrality of the
 * pipeline, the seeded bugRemPow2 regression, report bundling, and
 * the campaign's untriaged-divergence surfacing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "compdiff/engine.hh"
#include "compdiff/implementation.hh"
#include "minic/parser.hh"
#include "minic/printer.hh"
#include "reduce/input_reducer.hh"
#include "reduce/oracle.hh"
#include "reduce/pipeline.hh"
#include "reduce/program_reducer.hh"
#include "reduce/report.hh"
#include "targets/campaign.hh"

namespace
{

using namespace compdiff;

/**
 * The paper's rem-power-of-2 miscompile, seeded via the ablation
 * hook: the strength-reduced `x % 8` is wrong for negative x under
 * the buggy trait, while the reference interpreter (which ignores
 * Traits entirely) computes the C semantics. Decoy functions and
 * statements give the program reducer something to earn.
 */
const char *kRemPow2Source = R"(
    int decoy_sum(int n) {
        int total = 0;
        int i = 0;
        while (i < n) {
            total = total + i;
            i = i + 1;
        }
        return total;
    }
    void decoy_banner() {
        print_str("banner");
        newline();
    }
    int main() {
        int unused = decoy_sum(10);
        if (input_byte(1) == 255) {
            decoy_banner();
        }
        int x = 0 - input_byte(0);
        print_int(x % 8);
        newline();
        return 0;
    }
)";

core::DiffOptions
remPow2Options()
{
    core::DiffOptions options;
    options.traitsTweak = [](compiler::Traits &traits) {
        traits.bugRemPow2 = true;
    };
    return options;
}

core::ImplementationSet
gccVsRef()
{
    return core::ImplementationRegistry::global().parse(
        "gcc:-O2,ref");
}

/** Delegating oracle that records every accepted candidate input. */
class RecordingOracle : public reduce::Oracle
{
  public:
    explicit RecordingOracle(reduce::Oracle &inner) : inner_(inner) {}

    std::uint64_t targetSignature() const override
    {
        return inner_.targetSignature();
    }
    bool preserves(const minic::Program &program,
                   const support::Bytes &input) override
    {
        const bool ok = inner_.preserves(program, input);
        if (ok)
            accepted.push_back(input);
        return ok;
    }
    bool budgetExhausted() const override
    {
        return inner_.budgetExhausted();
    }
    const reduce::OracleStats &stats() const override
    {
        return inner_.stats();
    }

    std::vector<support::Bytes> accepted;

  private:
    reduce::Oracle &inner_;
};

TEST(ReduceOracle, ReproducesAndRejectsNonDivergent)
{
    auto program = minic::parseAndCheck(kRemPow2Source);
    reduce::SignatureOracle oracle(*program, gccVsRef(), {9, 0},
                                   remPow2Options(), 100);
    ASSERT_TRUE(oracle.reproduced());
    EXPECT_TRUE(oracle.witnessResult().divergent);

    // Input {0}: -0 % 8 == 0 everywhere — no divergence, rejected.
    EXPECT_FALSE(oracle.preserves(*program, {0, 0}));
    // The witness itself preserves its own signature.
    EXPECT_TRUE(oracle.preserves(*program, {9, 0}));
    EXPECT_EQ(oracle.stats().tried, 2u);
    EXPECT_EQ(oracle.stats().accepted, 1u);
}

TEST(ReduceOracle, BudgetBoundsEvaluations)
{
    auto program = minic::parseAndCheck(kRemPow2Source);
    reduce::SignatureOracle oracle(*program, gccVsRef(), {9, 0},
                                   remPow2Options(), 2);
    EXPECT_TRUE(oracle.preserves(*program, {9, 0}));
    EXPECT_TRUE(oracle.preserves(*program, {9, 0}));
    EXPECT_TRUE(oracle.budgetExhausted());
    // Budget exhausted: even the witness itself is now rejected.
    EXPECT_FALSE(oracle.preserves(*program, {9, 0}));
    EXPECT_EQ(oracle.stats().tried, 2u);
}

TEST(ReduceInput, DdminIsIdempotent)
{
    auto program = minic::parseAndCheck(kRemPow2Source);
    // A padded witness: only byte 0 matters (byte 1 must not be
    // 255, and zero bytes normalize freely).
    const support::Bytes witness = {9, 3, 77, 12, 255, 9};

    reduce::SignatureOracle first(*program, gccVsRef(), witness,
                                  remPow2Options(), 4096);
    ASSERT_TRUE(first.reproduced());
    auto reduction = reduce::reduceInput(first, *program, witness);
    EXPECT_LT(reduction.reduced.size(), witness.size());
    EXPECT_GE(reduction.candidatesAccepted, 1u);

    // Reducing the reduced witness must accept nothing.
    reduce::SignatureOracle second(*program, gccVsRef(),
                                   reduction.reduced,
                                   remPow2Options(), 4096);
    ASSERT_TRUE(second.reproduced());
    EXPECT_EQ(second.targetSignature(), first.targetSignature());
    auto again =
        reduce::reduceInput(second, *program, reduction.reduced);
    EXPECT_EQ(again.candidatesAccepted, 0u);
    EXPECT_EQ(again.reduced, reduction.reduced);
}

TEST(ReduceInput, EveryAcceptedCandidatePreservesSignature)
{
    auto program = minic::parseAndCheck(kRemPow2Source);
    const support::Bytes witness = {9, 3, 77, 12, 255, 9};
    reduce::SignatureOracle oracle(*program, gccVsRef(), witness,
                                   remPow2Options(), 4096);
    ASSERT_TRUE(oracle.reproduced());
    const std::uint64_t target = oracle.targetSignature();

    RecordingOracle spy(oracle);
    auto reduction = reduce::reduceInput(spy, *program, witness);
    ASSERT_FALSE(spy.accepted.empty());
    EXPECT_EQ(spy.accepted.back(), reduction.reduced);

    // Independently re-verify every accepted candidate against a
    // fresh engine: each must reproduce the exact target signature.
    core::DiffOptions options = remPow2Options();
    options.jobs = 1;
    core::DiffEngine engine(*program, gccVsRef(), options);
    for (const auto &candidate : spy.accepted) {
        const auto diff = engine.runInput(candidate, 0);
        EXPECT_TRUE(diff.divergent);
        EXPECT_EQ(reduce::divergenceSignature(diff), target);
    }
}

TEST(ReduceProgram, ShrinksRemPow2RegressionToThreeStatements)
{
    auto program = minic::parseAndCheck(kRemPow2Source);
    reduce::SignatureOracle oracle(*program, gccVsRef(), {9},
                                   remPow2Options(), 4096);
    ASSERT_TRUE(oracle.reproduced());

    auto reduction =
        reduce::reduceProgram(oracle, kRemPow2Source, {9});
    auto minimized = minic::parseAndCheck(reduction.source);
    EXPECT_LE(reduce::countStatements(*minimized), 3u)
        << reduction.source;
    EXPECT_EQ(reduce::countStatements(*minimized),
              reduction.stmtsAfter);
    EXPECT_LT(reduction.stmtsAfter, reduction.stmtsBefore);

    // The minimized program still diverges with the same signature.
    core::DiffOptions options = remPow2Options();
    core::DiffEngine engine(*minimized, gccVsRef(), options);
    EXPECT_EQ(reduce::divergenceSignature(engine.runInput({9}, 0)),
              oracle.targetSignature());

    // And program reduction is idempotent too: a second pass over
    // the minimized source accepts nothing.
    reduce::SignatureOracle second(*minimized, gccVsRef(), {9},
                                   remPow2Options(), 4096);
    ASSERT_TRUE(second.reproduced());
    auto again =
        reduce::reduceProgram(second, reduction.source, {9});
    EXPECT_EQ(again.candidatesAccepted, 0u);
    EXPECT_EQ(again.stmtsAfter, reduction.stmtsAfter);
}

TEST(ReducePipeline, JobsNeverChangeResults)
{
    auto program = minic::parseAndCheck(kRemPow2Source);
    core::DiffOptions diff_options = remPow2Options();
    core::DiffEngine engine(*program, gccVsRef(), diff_options);

    std::vector<reduce::Witness> witnesses;
    for (const support::Bytes &input :
         {support::Bytes{9, 3, 77}, support::Bytes{17, 1},
          support::Bytes{201, 8, 8, 8}}) {
        auto diff = engine.runInput(input, 0);
        ASSERT_TRUE(diff.divergent);
        witnesses.push_back({input, std::move(diff)});
    }

    reduce::ReduceOptions options;
    options.diffOptions = diff_options;
    options.candidateBudget = 1024;
    options.checkSanitizers = false;
    options.jobs = 1;
    auto serial =
        reduce::reduceAndReport(*program, gccVsRef(), witnesses,
                                options);
    options.jobs = 4;
    auto parallel =
        reduce::reduceAndReport(*program, gccVsRef(), witnesses,
                                options);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); i++) {
        EXPECT_TRUE(serial[i].reproduced);
        EXPECT_EQ(serial[i].signature, parallel[i].signature);
        EXPECT_EQ(serial[i].input, parallel[i].input);
        EXPECT_EQ(serial[i].program, parallel[i].program);
        EXPECT_EQ(serial[i].inputStats.candidatesTried,
                  parallel[i].inputStats.candidatesTried);
        EXPECT_EQ(serial[i].programStats.candidatesTried,
                  parallel[i].programStats.candidatesTried);
        EXPECT_EQ(renderReportMarkdown(serial[i]),
                  renderReportMarkdown(parallel[i]));
    }
}

TEST(ReduceReport, BundleCarriesTheFiling)
{
    auto program = minic::parseAndCheck(kRemPow2Source);
    core::DiffOptions diff_options = remPow2Options();
    core::DiffEngine engine(*program, gccVsRef(), diff_options);
    auto diff = engine.runInput({9, 3, 77}, 0);
    ASSERT_TRUE(diff.divergent);

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "compdiff_reduce_test")
            .string();
    std::filesystem::remove_all(dir);

    reduce::ReduceOptions options;
    options.diffOptions = diff_options;
    options.candidateBudget = 1024;
    options.reportsDir = dir;
    auto reports = reduce::reduceAndReport(
        *program, gccVsRef(), {{{9, 3, 77}, diff}}, options);
    ASSERT_EQ(reports.size(), 1u);
    const auto &report = reports[0];
    EXPECT_TRUE(report.reproduced);
    // Minimized artifacts strictly shrink the witness.
    EXPECT_LT(report.input.size(), report.witnessInput.size());
    EXPECT_TRUE(report.sanitizers.checked);

    // Bundles are filed under the *semantic* key (tier-2 dedup),
    // not the raw divergence signature.
    const std::string bundle =
        dir + "/" + reduce::signatureDirName(report.semanticKey);
    EXPECT_TRUE(std::filesystem::exists(bundle + "/program.mc"));
    EXPECT_TRUE(std::filesystem::exists(bundle + "/input.bin"));
    EXPECT_TRUE(std::filesystem::exists(bundle + "/witness.bin"));
    ASSERT_TRUE(std::filesystem::exists(bundle + "/report.md"));

    std::ifstream in(bundle + "/report.md");
    std::string markdown((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(markdown.find("## Localization"), std::string::npos);
    EXPECT_NE(markdown.find("## Sanitizer verdicts"),
              std::string::npos);
    EXPECT_NE(markdown.find("## Reproduce"), std::string::npos);
    // gcc-O2 vs ref crosses backends in a two-class split where the
    // ref class has no simulated member: the report must say why no
    // root cause is named rather than hiding the gap.
    EXPECT_NE(markdown.find("no simulated compiler implementation"),
              std::string::npos)
        << markdown;
    std::filesystem::remove_all(dir);
}

TEST(ReduceCampaign, SurfacesUntriagedWitnesses)
{
    // A probe-free target with a guaranteed divergence: every diff
    // the campaign finds is untriaged, and the campaign must keep
    // the witness evidence, not just count it.
    targets::TargetProgram target;
    target.name = "untriaged_demo";
    target.source = R"(
        int main() {
            if (input_byte(0) == 'U') {
                int l;
                print_int(l);
                newline();
            }
            print_str("ok");
            newline();
            return 0;
        }
    )";
    target.seeds = {support::toBytes("U")};

    targets::CampaignOptions options;
    options.maxExecs = 400;
    options.checkSanitizers = false;
    auto result = targets::runCampaign(target, options);

    ASSERT_GE(result.untriagedDiffs(), 1u);
    for (const auto &untriaged : result.untriaged) {
        EXPECT_NE(untriaged.signature, 0u);
        EXPECT_FALSE(untriaged.witness.empty());
        EXPECT_FALSE(untriaged.hashVector.empty());
    }
}

TEST(ReduceCampaign, ReduceFoundProducesReports)
{
    const targets::TargetProgram *target =
        targets::findTarget("pktdump");
    ASSERT_NE(target, nullptr);

    targets::CampaignOptions options;
    options.maxExecs = 2000;
    options.checkSanitizers = false;
    options.triage.reduceFound = true;
    options.triage.candidateBudget = 200;
    auto result = targets::runCampaign(*target, options);

    ASSERT_GE(result.stats.diffs, 1u);
    ASSERT_EQ(result.reports.size(), result.stats.diffs);
    for (const auto &report : result.reports) {
        // Minimized input never exceeds the witness.
        EXPECT_LE(report.input.size(), report.witnessInput.size());
        EXPECT_FALSE(report.program.empty());
        // Every minimized program still parses.
        EXPECT_NO_THROW(minic::parseAndCheck(report.program));
    }
}

} // namespace
