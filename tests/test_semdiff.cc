/**
 * @file
 * Tests for the semantic-dedup layer (src/semdiff) and its wiring
 * into the reduction pipeline's merged bundles.
 *
 * The canonicalizer's contract is checked two ways: structurally
 * (alpha-variants, commutative operand order, dead code, and
 * function order all canonicalize to one text, while literal operand
 * order — which the seeded miscompiles pattern-match — is preserved)
 * and behaviorally (a randomized sweep asserts idempotence and that
 * canonicalization never changes what the DiffEngine observes). The
 * slicer tests pin the bugRemPow2 story: the first divergent
 * instruction is named when both sides share the bytecode pipeline,
 * and the slice degrades gracefully against the reference
 * interpreter.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "compdiff/engine.hh"
#include "compdiff/implementation.hh"
#include "compdiff/localize.hh"
#include "minic/parser.hh"
#include "reduce/pipeline.hh"
#include "reduce/report.hh"
#include "semdiff/canon.hh"
#include "semdiff/slice.hh"
#include "support/hash.hh"
#include "support/rng.hh"
#include "support/strings.hh"

namespace
{

using namespace compdiff;
using support::format;
using support::Rng;

/**
 * Random *well-defined* MiniC programs shaped to exercise every
 * canonicalizer pass: globals and a helper function (renaming and
 * call-graph ordering), an occasionally-unreachable decoy function
 * (pruning), guarded integer arithmetic (operand sorting), and runs
 * of plain assignments (statement sorting). Everything stays in
 * integer territory: float literals do not round-trip through the
 * printer, and cur_line/time_stamp/bad_rand would make behavior
 * layout- or environment-sensitive.
 */
class CanonProgramGenerator
{
  public:
    explicit CanonProgramGenerator(std::uint64_t seed) : rng_(seed)
    {}

    std::string
    generate()
    {
        vars_ = 0;
        std::string src;
        const int globals = static_cast<int>(rng_.range(1, 3));
        // Global initializers must be plain literals in MiniC, and a
        // leading minus would parse as a unary expression.
        for (int g = 0; g < globals; g++)
            src += format("int glob%d = %ld;\n", g,
                          rng_.range(0, 20));
        globals_ = globals;

        src += "int helper(int p0, int p1) {\n";
        src += format("return ((p0 + p1) & 255) + glob0;\n");
        src += "}\n";
        if (rng_.chance(1, 2)) {
            src += "int decoy_unused(int q) {\n";
            src += "return q + 41;\n";
            src += "}\n";
        }

        std::string body;
        const int decls = static_cast<int>(rng_.range(2, 5));
        for (int i = 0; i < decls; i++)
            body += declare();
        const int stmts = static_cast<int>(rng_.range(3, 9));
        for (int i = 0; i < stmts; i++)
            body += statement();
        body += format("%s = helper(%s, %s);\n", var().c_str(),
                       var().c_str(), var().c_str());
        if (rng_.chance(1, 3)) {
            // An unreachable tail for the dead-code pass to strip.
            body += format("if (0 == 1) { return 9; %s = 1; }\n",
                           var().c_str());
        }
        for (int i = 0; i < vars_; i++)
            body += format("print_int(v%d); newline();\n", i);
        return src + "int main() {\n" + body + "return 0;\n}\n";
    }

  private:
    std::string
    declare()
    {
        const int id = vars_++;
        return format("int v%d = %ld;\n", id, rng_.range(-50, 50));
    }

    std::string
    var()
    {
        return format("v%d",
                      static_cast<int>(rng_.range(0, vars_ - 1)));
    }

    std::string
    expr(int depth = 0)
    {
        if (depth > 2 || rng_.chance(1, 3)) {
            if (rng_.chance(1, 4))
                return format("glob%d",
                              static_cast<int>(
                                  rng_.range(0, globals_ - 1)));
            return rng_.chance(1, 2)
                       ? var()
                       : format("%ld", rng_.range(-30, 30));
        }
        const std::string a = expr(depth + 1);
        const std::string b = expr(depth + 1);
        switch (rng_.below(6)) {
          case 0:
            return "(" + a + " + " + b + ")";
          case 1:
            return "(" + a + " - " + b + ")";
          case 2:
            return "((" + a + " % 100) * (" + b + " % 100))";
          case 3:
            return "(" + b + " == 0 ? 0 : " + a + " / " + b + ")";
          case 4:
            return "(" + a + " ^ " + b + ")";
          default:
            return "((" + a + ") & 255)";
        }
    }

    std::string
    statement()
    {
        switch (rng_.below(3)) {
          case 0: {
            // A run of plain assignments for the statement sorter.
            std::string run;
            const int len = static_cast<int>(rng_.range(2, 4));
            for (int i = 0; i < len; i++)
                run += format("v%d = %ld;\n",
                              static_cast<int>(
                                  rng_.range(0, vars_ - 1)),
                              rng_.range(-9, 9));
            return run;
          }
          case 1:
            return "if (" + expr() + " > " + expr() + ") { " +
                   var() + " = " + expr() + "; } else { " + var() +
                   " = " + expr() + "; }\n";
          default:
            return var() + " = " + expr() + ";\n";
        }
    }

    Rng rng_;
    int vars_ = 0;
    int globals_ = 1;
};

class CanonicalizerProperties : public testing::TestWithParam<int>
{};

TEST_P(CanonicalizerProperties, IdempotentAndObservationSound)
{
    CanonProgramGenerator generator(
        0x5EED0000ull + static_cast<std::uint64_t>(GetParam()));
    const std::string source = generator.generate();

    std::unique_ptr<minic::Program> program;
    ASSERT_NO_THROW(program = minic::parseAndCheck(source))
        << source;

    const semdiff::CanonicalForm canon =
        semdiff::canonicalizeSource(source);
    ASSERT_FALSE(canon.source.empty());

    // canon(canon(p)) == canon(p): every pass is at its fixpoint.
    const semdiff::CanonicalForm again =
        semdiff::canonicalizeSource(canon.source);
    EXPECT_EQ(again.source, canon.source) << source;
    EXPECT_EQ(again.fingerprint, canon.fingerprint);

    // Soundness: the canonicalized program produces bit-identical
    // DiffEngine observations — same exit classes, same output
    // hashes, for every implementation in the oracle.
    auto canonical = minic::parseAndCheck(canon.source);
    core::DiffEngine original_engine(*program);
    core::DiffEngine canonical_engine(*canonical);
    for (const support::Bytes &input :
         {support::Bytes{}, support::Bytes{7, 200, 3}}) {
        const auto a = original_engine.runInput(input);
        const auto b = canonical_engine.runInput(input);
        EXPECT_EQ(a.divergent, b.divergent) << source;
        ASSERT_EQ(a.observations.size(), b.observations.size());
        for (std::size_t i = 0; i < a.observations.size(); i++) {
            EXPECT_EQ(a.observations[i].impl,
                      b.observations[i].impl);
            EXPECT_EQ(a.observations[i].exitClass,
                      b.observations[i].exitClass)
                << a.observations[i].impl << "\n"
                << source << "\n---\n"
                << canon.source;
            EXPECT_EQ(a.observations[i].hash,
                      b.observations[i].hash)
                << a.observations[i].impl << "\n"
                << source << "\n---\n"
                << canon.source;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, CanonicalizerProperties,
                         testing::Range(0, 45));

TEST(Canonicalizer, AlphaVariantsShareOneForm)
{
    // Same program, different identifier spellings, different
    // function order, an extra unreachable function, and swapped
    // commutative (non-literal) operands.
    const std::string a = R"(
        int total = 0;
        int accumulate(int left, int right) {
            return left + right;
        }
        int main() {
            int first = input_byte(0);
            int second = input_byte(1);
            total = accumulate(first, second);
            print_int(total);
            return 0;
        }
    )";
    const std::string b = R"(
        int sum_box = 0;
        int main() {
            int x = input_byte(0);
            int y = input_byte(1);
            sum_box = combine(x, y);
            print_int(sum_box);
            return 0;
        }
        int dead_helper(int z) { return z * 2; }
        int combine(int p, int q) {
            return q + p;
        }
    )";
    const auto ca = semdiff::canonicalizeSource(a);
    const auto cb = semdiff::canonicalizeSource(b);
    EXPECT_EQ(ca.source, cb.source);
    EXPECT_EQ(ca.fingerprint, cb.fingerprint);
}

TEST(Canonicalizer, LiteralOperandsNeverMove)
{
    // The seeded miscompiles pattern-match literals on specific
    // sides (`x % 8`, `x & 7`): canonicalization must not rewrite a
    // program into or out of the bug-triggering shape.
    const std::string lhs_literal = R"(
        int main() { print_int(7 & input_byte(0)); return 0; }
    )";
    const std::string rhs_literal = R"(
        int main() { print_int(input_byte(0) & 7); return 0; }
    )";
    const auto cl = semdiff::canonicalizeSource(lhs_literal);
    const auto cr = semdiff::canonicalizeSource(rhs_literal);
    EXPECT_NE(cl.fingerprint, cr.fingerprint);
    EXPECT_NE(cl.source.find("7 &"), std::string::npos);
    EXPECT_NE(cr.source.find("& 7"), std::string::npos);
}

TEST(Canonicalizer, DeadTailStrippedButDeclarationsKept)
{
    const std::string with_tail = R"(
        int main() {
            print_int(input_byte(0));
            return 0;
            print_int(99);
        }
    )";
    const std::string without_tail = R"(
        int main() {
            print_int(input_byte(0));
            return 0;
        }
    )";
    EXPECT_EQ(semdiff::canonicalizeSource(with_tail).fingerprint,
              semdiff::canonicalizeSource(without_tail).fingerprint);

    // A declaration after the terminator stays: under the layout
    // traits, removing it would shift frame slots and could change
    // what an out-of-bounds access observes.
    const std::string with_dead_decl = R"(
        int main() {
            print_int(input_byte(0));
            return 0;
            int shadow_slot = 3;
        }
    )";
    EXPECT_NE(
        semdiff::canonicalizeSource(with_dead_decl).fingerprint,
        semdiff::canonicalizeSource(without_tail).fingerprint);
}

TEST(Canonicalizer, FallsBackToExactTextOnUnparsableSource)
{
    const std::string garbage = "int main( { this is not MiniC";
    const auto form = semdiff::canonicalizeSource(garbage);
    EXPECT_EQ(form.source, garbage);
    EXPECT_EQ(form.fingerprint, support::murmurHash64(garbage));
}

TEST(SemanticKey, StableAndOrderSensitive)
{
    const std::uint64_t key =
        semdiff::semanticKeyOf(0x1111, 0x2222);
    EXPECT_EQ(key, semdiff::semanticKeyOf(0x1111, 0x2222));
    EXPECT_NE(key, semdiff::semanticKeyOf(0x2222, 0x1111));
    EXPECT_NE(key, semdiff::semanticKeyOf(0x1111, 0x2223));

    semdiff::SemanticKey structured{0x1111, 0x2222};
    EXPECT_EQ(structured.combined(), key);
}

/** The minimal rem-power-of-2 miscompile witness. */
const char *kRemPow2Slice = R"(
    int main() {
        int x = 0 - input_byte(0);
        print_int(x % 8);
        newline();
        return 0;
    }
)";

TEST(Slicer, NamesFirstDivergentInstruction)
{
    // clang:-O2 carries the seeded bugRemPow2 trait, clang:-O0 does
    // not; both share the bytecode pipeline, so the slicer must name
    // the instruction where the strength-reduced remainder departs.
    auto program = minic::parseAndCheck(kRemPow2Slice);
    const auto impls = core::ImplementationRegistry::global().parse(
        "clang:-O2,clang:-O0");
    core::DiffOptions options;
    core::DiffEngine engine(*program, impls, options);
    const auto diff = engine.runInput({9}, 0);
    ASSERT_TRUE(diff.divergent) << diff.summary();

    const auto pair = core::localizeAcross(*program, impls, diff,
                                           {9}, options.limits);
    const auto slice =
        semdiff::sliceDivergence(*program, impls, pair, options);
    ASSERT_TRUE(slice.attempted) << slice.note;
    ASSERT_TRUE(slice.found) << slice.str();
    EXPECT_EQ(slice.function, "main");
    EXPECT_NE(slice.insnA, slice.insnB);
    bool names_bug_trait = false;
    for (const auto &entry : slice.traitsDelta)
        names_bug_trait =
            names_bug_trait ||
            entry.find("bugRemPow2") != std::string::npos;
    EXPECT_TRUE(names_bug_trait) << slice.str();
    EXPECT_NE(slice.str().find("first divergent instruction"),
              std::string::npos);
}

TEST(Slicer, DegradesGracefullyAcrossBackends)
{
    // Against the reference interpreter there is no second bytecode
    // stream to align: the slice reports why instead of guessing.
    auto program = minic::parseAndCheck(kRemPow2Slice);
    const auto impls = core::ImplementationRegistry::global().parse(
        "clang:-O2,ref");
    core::DiffOptions options;
    core::DiffEngine engine(*program, impls, options);
    const auto diff = engine.runInput({9}, 0);
    ASSERT_TRUE(diff.divergent) << diff.summary();

    const auto pair = core::localizeAcross(*program, impls, diff,
                                           {9}, options.limits);
    const auto slice =
        semdiff::sliceDivergence(*program, impls, pair, options);
    EXPECT_FALSE(slice.attempted);
    EXPECT_FALSE(slice.found);
    EXPECT_NE(slice.str().find("not attempted"), std::string::npos);
}

TEST(SemDedup, WriteMergedReportLaysOutVariants)
{
    reduce::DivergenceReport a;
    a.semanticKey = 0xfeedbeef;
    a.signature = 0x1;
    a.program = "int main() { return 0; }\n";
    a.input = {1};
    a.witnessInput = {1, 2};
    reduce::DivergenceReport b = a;
    b.signature = 0x2;
    b.input = {3};
    b.witnessInput = {3, 4};

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "compdiff_semdiff_merge_test")
            .string();
    std::filesystem::remove_all(dir);

    const std::string bundle =
        reduce::writeMergedReport(dir, {&a, &b});
    EXPECT_EQ(bundle,
              dir + "/" + reduce::signatureDirName(a.semanticKey));
    EXPECT_TRUE(std::filesystem::exists(bundle + "/program.mc"));
    EXPECT_TRUE(std::filesystem::exists(bundle +
                                        "/variants/v0/program.mc"));
    EXPECT_TRUE(std::filesystem::exists(bundle +
                                        "/variants/v1/input.bin"));
    std::ifstream in(bundle + "/report.md");
    std::string markdown((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(markdown.find("## Merged variants"),
              std::string::npos);
    EXPECT_NE(markdown.find("| v1 |"), std::string::npos);

    // Re-filing the bundle with a single variant (e.g. a resumed
    // campaign whose merge decision shrank) clears stale variants/.
    reduce::writeMergedReport(dir, {&a});
    EXPECT_FALSE(std::filesystem::exists(bundle + "/variants"));
    std::filesystem::remove_all(dir);
}

TEST(SemDedup, PipelineMergesEqualWitnessesIntoOneBundle)
{
    // Two campaign witnesses of the same divergence (same input —
    // the degenerate case of semantic equality) must file as ONE
    // bundle carrying both variants.
    auto program = minic::parseAndCheck(kRemPow2Slice);
    const auto impls = core::ImplementationRegistry::global().parse(
        "clang:-O2,clang:-O0");
    core::DiffOptions diff_options;
    core::DiffEngine engine(*program, impls, diff_options);
    const auto diff = engine.runInput({9}, 0);
    ASSERT_TRUE(diff.divergent);

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "compdiff_semdiff_pipeline_test")
            .string();
    std::filesystem::remove_all(dir);

    reduce::ReduceOptions options;
    options.diffOptions = diff_options;
    options.candidateBudget = 512;
    options.reportsDir = dir;
    const auto reports = reduce::reduceAndReport(
        *program, impls, {{{9}, diff}, {{9}, diff}}, options);
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].semanticKey, reports[1].semanticKey);
    EXPECT_NE(reports[0].semanticKey, 0u);

    std::size_t bundles = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.is_directory())
            bundles++;
    }
    EXPECT_EQ(bundles, 1u);
    const std::string bundle =
        dir + "/" +
        reduce::signatureDirName(reports[0].semanticKey);
    EXPECT_TRUE(std::filesystem::exists(bundle +
                                        "/variants/v1/program.mc"));
    std::filesystem::remove_all(dir);
}

} // namespace
