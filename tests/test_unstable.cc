/**
 * @file
 * Tests that each modeled UB class actually yields *unstable code*:
 * divergent observable behavior across compiler implementations.
 * These are the mechanisms the paper's detection rests on (its
 * Listings 1-4 and the RQ1 bug taxonomy).
 */

#include <gtest/gtest.h>

#include <set>

#include "compiler/compiler.hh"
#include "minic/parser.hh"
#include "vm/vm.hh"

namespace
{

using namespace compdiff;
using compiler::CompilerConfig;
using compiler::OptLevel;
using compiler::Sanitizer;
using compiler::Vendor;
using vm::Vm;

/** Run a program under all ten implementations; return the set of
 *  distinct (output, exitClass) observations. */
std::set<std::string>
observe(std::string_view source, const support::Bytes &input = {})
{
    auto program = minic::parseAndCheck(source);
    compiler::Compiler comp(*program);
    std::set<std::string> observations;
    for (const auto &config : compiler::standardImplementations()) {
        auto module = comp.compile(config);
        Vm machine(module, config);
        auto result = machine.run(input);
        observations.insert(result.output + "|" +
                            result.exitClass());
    }
    return observations;
}

std::string
runOne(std::string_view source, Vendor vendor, OptLevel opt,
       const support::Bytes &input = {})
{
    auto program = minic::parseAndCheck(source);
    compiler::Compiler comp(*program);
    const CompilerConfig config{vendor, opt, Sanitizer::None};
    auto module = comp.compile(config);
    Vm machine(module, config);
    auto result = machine.run(input);
    return result.output + "|" + result.exitClass();
}

// Listing 1 analog: the overflow guard `offset + len < offset` is
// folded away by optimizing configurations, so on an overflowing
// input the optimized binary "dumps" while -O0 rejects.
constexpr const char *kListing1 = R"(
    int dump_data(int offset, int len) {
        int size = 100;
        if (offset < 0 || len < 0) { return -1; }
        if (offset + len < offset) { return -1; }
        print_str("dump "); print_int(offset); newline();
        return 0;
    }
    int main() {
        // offset = INT_MAX - 100, len = 101: offset+len overflows.
        print_int(dump_data(2147483547, 101));
        return 0;
    }
)";

TEST(Unstable, Listing1OverflowGuardDiverges)
{
    EXPECT_EQ(runOne(kListing1, Vendor::Gcc, OptLevel::O0),
              "-1|exit:0");
    EXPECT_NE(runOne(kListing1, Vendor::Clang, OptLevel::O2),
              runOne(kListing1, Vendor::Gcc, OptLevel::O0));
    EXPECT_GE(observe(kListing1).size(), 2u);
}

// Listing 2 analog: relational comparison between pointers to
// different objects (a global and a heap block).
TEST(Unstable, PointerComparisonDiverges)
{
    const auto obs = observe(R"(
        char saved_start[8];
        char look_for_buf[64];
        int main() {
            char *saved = &saved_start[0];
            char *look_for = &look_for_buf[0];
            if (look_for <= saved) { print_str("below"); }
            else { print_str("above"); }
            return 0;
        }
    )");
    // Declaration order vs size-sorted global layout flips the
    // relation between the two objects.
    EXPECT_GE(obs.size(), 2u);
}

// Listing 3 analog: two calls returning the same static buffer used
// as arguments of one call; evaluation order decides which value
// both arguments see.
TEST(Unstable, EvalOrderDiverges)
{
    const char *source = R"(
        char buffer[32];
        char *get_str(int v) {
            buffer[0] = (char)(48 + v);
            buffer[1] = 0;
            return buffer;
        }
        void show(char *a, char *b) {
            print_str(a); print_str(" "); print_str(b);
        }
        int main() {
            show(get_str(1), get_str(2));
            return 0;
        }
    )";
    EXPECT_EQ(runOne(source, Vendor::Clang, OptLevel::O0),
              "2 2|exit:0"); // left-to-right: second call wins
    EXPECT_EQ(runOne(source, Vendor::Gcc, OptLevel::O0),
              "1 1|exit:0"); // right-to-left: first call wins
}

// Listing 4 analog: an uninitialized local whose "random" initial
// value is printed when the overwrite path is skipped.
TEST(Unstable, UninitializedLocalDiverges)
{
    const char *source = R"(
        int main() {
            int l;
            if (input_size() > 0) { l = input_byte(0); }
            print_int(l);
            return 0;
        }
    )";
    // Empty input leaves `l` holding frame garbage.
    const auto obs = observe(source, {});
    EXPECT_GE(obs.size(), 2u);
    // Initialized path is stable.
    const auto obs_ok = observe(source, {42});
    EXPECT_EQ(obs_ok.size(), 1u);
}

TEST(Unstable, UninitializedHeapDiverges)
{
    const auto obs = observe(R"(
        int main() {
            int *p = (int *)malloc(16L);
            print_int(p[2]);
            return 0;
        }
    )");
    EXPECT_GE(obs.size(), 2u);
}

// RQ1 IntError example: `long x = y + a * b` evaluated in 64 bits by
// the widening implementations.
TEST(Unstable, WidenedMultiplyDiverges)
{
    const char *source = R"(
        int main() {
            int a = 100000;
            int b = 100000;
            long y = 1L;
            long x = y + a * b;
            print_long(x);
            return 0;
        }
    )";
    // gcc computes the 32-bit wrapped product, clang-O1+ widens.
    EXPECT_EQ(runOne(source, Vendor::Gcc, OptLevel::O2),
              runOne(source, Vendor::Gcc, OptLevel::O0));
    EXPECT_NE(runOne(source, Vendor::Clang, OptLevel::O1),
              runOne(source, Vendor::Gcc, OptLevel::O0));
    EXPECT_EQ(runOne(source, Vendor::Clang, OptLevel::O1),
              "10000000001|exit:0");
}

// Dead-store elimination deletes an unused trapping division.
TEST(Unstable, DeadDivisionDiverges)
{
    const char *source = R"(
        int main() {
            int zero = input_size();
            int t = 7 / zero;
            print_str("ok");
            return 0;
        }
    )";
    EXPECT_EQ(runOne(source, Vendor::Gcc, OptLevel::O0),
              "|crash:fpe");
    EXPECT_EQ(runOne(source, Vendor::Gcc, OptLevel::O2),
              "ok|exit:0");
}

// Null-pointer stores are elided by the exploiting configurations.
TEST(Unstable, NullStoreDiverges)
{
    const char *source = R"(
        int main() {
            int *p = 0;
            *p = 42;
            print_str("alive");
            return 0;
        }
    )";
    EXPECT_EQ(runOne(source, Vendor::Gcc, OptLevel::O0),
              "|crash:segv");
    EXPECT_EQ(runOne(source, Vendor::Clang, OptLevel::O2),
              "alive|exit:0");
}

// Oversized shift counts: mask vs zero policies.
TEST(Unstable, OversizedShiftDiverges)
{
    const char *source = R"(
        int main() {
            int x = 1;
            int n = 33 + input_size();
            print_int(x << n);
            return 0;
        }
    )";
    EXPECT_EQ(runOne(source, Vendor::Gcc, OptLevel::O2),
              "2|exit:0"); // masked to 1
    EXPECT_EQ(runOne(source, Vendor::Clang, OptLevel::O2),
              "0|exit:0"); // poison-folded to zero
}

// memcpy with overlapping ranges (CWE-475 family).
TEST(Unstable, OverlappingMemcpyDiverges)
{
    const auto obs = observe(R"(
        int main() {
            char buf[16];
            strcpy(buf, "abcdefgh");
            memcpy(buf + 2, buf, 6L);
            buf[8] = 0;
            print_str(buf);
            return 0;
        }
    )");
    EXPECT_GE(obs.size(), 2u);
}

// cur_line() in a statement spanning several lines (LINE family).
TEST(Unstable, CurLineDiverges)
{
    const char *source = R"(
        int main() {
            int where = 0 +
                        0 +
                        cur_line();
            print_int(where);
            return 0;
        }
    )";
    EXPECT_NE(runOne(source, Vendor::Gcc, OptLevel::O0),
              runOne(source, Vendor::Clang, OptLevel::O0));
}

// pow() lowering imprecision (Misc / float family).
TEST(Unstable, PowPrecisionDiverges)
{
    const char *source = R"(
        int main() {
            double v = pow_f(1.7, 31.3);
            print_f(v);
            return 0;
        }
    )";
    EXPECT_NE(runOne(source, Vendor::Clang, OptLevel::O3),
              runOne(source, Vendor::Gcc, OptLevel::O3));
}

// Double free: glibc-style detection vs silent corruption.
TEST(Unstable, DoubleFreeDiverges)
{
    const char *source = R"(
        int main() {
            char *p = malloc(16L);
            free(p);
            free(p);
            print_str("survived");
            return 0;
        }
    )";
    EXPECT_EQ(runOne(source, Vendor::Gcc, OptLevel::O0),
              "free(): double free detected\n|crash:abort");
    EXPECT_EQ(runOne(source, Vendor::Clang, OptLevel::O0),
              "survived|exit:0");
}

// Free of a stack pointer: detection vs silent ignore.
TEST(Unstable, InvalidFreeDiverges)
{
    const char *source = R"(
        int main() {
            char buf[8];
            free(buf);
            print_str("survived");
            return 0;
        }
    )";
    EXPECT_EQ(runOne(source, Vendor::Gcc, OptLevel::O1),
              "free(): invalid pointer\n|crash:abort");
    EXPECT_EQ(runOne(source, Vendor::Clang, OptLevel::O1),
              "survived|exit:0");
}

// Use after free: poisoning and reuse order differ.
TEST(Unstable, UseAfterFreeDiverges)
{
    const auto obs = observe(R"(
        int main() {
            int *p = (int *)malloc(16L);
            p[0] = 1234;
            free((char *)p);
            char *q = malloc(16L);
            q[0] = 'X';
            print_int(p[0]);
            return 0;
        }
    )");
    EXPECT_GE(obs.size(), 2u);
}

// Stack OOB read: layout (order + padding) decides the victim.
TEST(Unstable, StackOverreadDiverges)
{
    const auto obs = observe(R"(
        int main() {
            int canary = 777;
            char small[4];
            long big = 123456789L;
            small[0] = 'a';
            int idx = 6 + input_size();
            print_int(small[idx]);
            return 0;
        }
    )");
    EXPECT_GE(obs.size(), 2u);
}

// Pointer subtraction across objects (CWE-469).
TEST(Unstable, CrossObjectPointerSubtractionDiverges)
{
    const auto obs = observe(R"(
        char first[64];
        char second[16];
        int main() {
            long apparent_size = &second[0] - &first[0];
            print_long(apparent_size);
            return 0;
        }
    )");
    EXPECT_GE(obs.size(), 2u);
}

// The seeded miscompilations (RQ2 compiler bugs).
TEST(Unstable, SeededRemPow2Miscompile)
{
    const char *source = R"(
        int main() {
            int v = -1 - input_size();
            print_int(v % 8);
            return 0;
        }
    )";
    EXPECT_EQ(runOne(source, Vendor::Gcc, OptLevel::O2),
              "-1|exit:0");
    EXPECT_EQ(runOne(source, Vendor::Clang, OptLevel::O2),
              "7|exit:0"); // the bug: x&7 has no negative fixup
}

TEST(Unstable, SeededDiv32Miscompile)
{
    const char *source = R"(
        int main() {
            int v = -33 - input_size();
            print_int(v / 32);
            return 0;
        }
    )";
    EXPECT_EQ(runOne(source, Vendor::Gcc, OptLevel::O0),
              "-1|exit:0");
    EXPECT_EQ(runOne(source, Vendor::Gcc, OptLevel::Os),
              "-2|exit:0"); // arithmetic shift rounds toward -inf
}

TEST(Unstable, SeededEmptyRangeMiscompile)
{
    const char *source = R"(
        int main() {
            int x = 4 + input_size();
            if (x < 5 && x > 3) { print_str("in-range"); }
            else { print_str("out"); }
            return 0;
        }
    )";
    EXPECT_EQ(runOne(source, Vendor::Gcc, OptLevel::O0),
              "in-range|exit:0");
    EXPECT_EQ(runOne(source, Vendor::Gcc, OptLevel::O3),
              "out|exit:0"); // folded to false although x==4 fits
}

// time_stamp() varies per execution, not per configuration — it is
// the RQ5 normalization workload.
TEST(Unstable, TimestampVariesPerRun)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            print_str("[ts:"); print_long(time_stamp());
            print_str("] hello");
            return 0;
        }
    )");
    compiler::Compiler comp(*program);
    const CompilerConfig config{Vendor::Gcc, OptLevel::O0,
                                Sanitizer::None};
    auto module = comp.compile(config);
    Vm machine(module, config);
    auto r1 = machine.run({}, nullptr, 1);
    auto r2 = machine.run({}, nullptr, 2);
    EXPECT_NE(r1.output, r2.output);
}

// Well-defined programs must NOT diverge: the zero-false-positive
// property (paper Finding 5).
TEST(Unstable, WellDefinedProgramIsStable)
{
    const auto obs = observe(R"(
        int work(int n) {
            int acc = 0;
            for (int i = 1; i <= n; i += 1) {
                acc += i * i;
                if (acc > 1000) { acc %= 997; }
            }
            return acc;
        }
        int main() {
            char buf[32];
            strcpy(buf, "stable");
            print_str(buf); newline();
            print_int(work(50)); newline();
            int guarded = input_size();
            if (guarded > 0 && guarded < 10) { print_int(guarded); }
            return 0;
        }
    )",
                             {5});
    EXPECT_EQ(obs.size(), 1u);
}

} // namespace
