/**
 * @file
 * Tests for the observability layer: metric semantics, span
 * recording and Chrome-trace export, stats-file formats, and the
 * disabled-mode no-op guarantee.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "support/logging.hh"

namespace
{

using namespace compdiff;
using obs::EnabledGuard;
using obs::Registry;
using obs::TraceRecorder;

/** Fresh global state for every test in this file. */
class Obs : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        Registry::global().reset();
        TraceRecorder::global().clear();
        obs::setEnabled(false);
    }
    void TearDown() override { obs::setEnabled(false); }
};

TEST_F(Obs, CounterAccumulatesWhenEnabled)
{
    EnabledGuard on(true);
    auto &counter = obs::counter("test.counter");
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
    // Same name -> same handle.
    EXPECT_EQ(&obs::counter("test.counter"), &counter);
    EXPECT_EQ(obs::counter("test.counter").value(), 42u);
}

TEST_F(Obs, DisabledBumpsAreNoOps)
{
    ASSERT_FALSE(obs::metricsEnabled());
    obs::counter("test.counter").add(5);
    obs::gauge("test.gauge").set(5);
    obs::histogram("test.hist").observe(5);
    EXPECT_EQ(obs::counter("test.counter").value(), 0u);
    EXPECT_EQ(obs::gauge("test.gauge").value(), 0u);
    EXPECT_EQ(obs::histogram("test.hist").count(), 0u);
}

TEST_F(Obs, GaugeSetAndHighWaterMark)
{
    EnabledGuard on(true);
    auto &gauge = obs::gauge("test.gauge");
    gauge.set(7);
    EXPECT_EQ(gauge.value(), 7u);
    gauge.max(3);
    EXPECT_EQ(gauge.value(), 7u);
    gauge.max(9);
    EXPECT_EQ(gauge.value(), 9u);
}

TEST_F(Obs, HistogramBucketsAndSum)
{
    EnabledGuard on(true);
    auto &hist =
        Registry::global().histogram("test.hist2", {10, 100});
    hist.observe(5);    // bucket 0 (<= 10)
    hist.observe(10);   // bucket 0 (boundary is inclusive)
    hist.observe(50);   // bucket 1 (<= 100)
    hist.observe(1000); // overflow bucket
    EXPECT_EQ(hist.count(), 4u);
    EXPECT_EQ(hist.sum(), 1065u);
    ASSERT_EQ(hist.buckets().size(), 3u);
    EXPECT_EQ(hist.buckets()[0], 2u);
    EXPECT_EQ(hist.buckets()[1], 1u);
    EXPECT_EQ(hist.buckets()[2], 1u);
}

TEST_F(Obs, SnapshotAndReset)
{
    EnabledGuard on(true);
    obs::counter("snap.c").add(3);
    obs::gauge("snap.g").set(4);
    Registry::global().histogram("snap.h", {8}).observe(6);

    auto snapshot = Registry::global().snapshot();
    const auto *c = snapshot.find("snap.c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->kind, "counter");
    EXPECT_EQ(c->value, 3u);
    const auto *h = snapshot.find("snap.h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 1u);
    // Entries are name-sorted.
    for (std::size_t i = 1; i < snapshot.entries.size(); i++) {
        EXPECT_LT(snapshot.entries[i - 1].name,
                  snapshot.entries[i].name);
    }

    Registry::global().reset();
    EXPECT_EQ(obs::counter("snap.c").value(), 0u);
    EXPECT_EQ(obs::gauge("snap.g").value(), 0u);
    // Registrations (and handles) survive a reset.
    auto after = Registry::global().snapshot();
    EXPECT_EQ(after.entries.size(), snapshot.entries.size());
}

TEST_F(Obs, SnapshotJsonlIsWellFormed)
{
    EnabledGuard on(true);
    obs::counter("jsonl.counter").add(1);
    obs::counter("jsonl.weird\"name\\").add(2);
    Registry::global().histogram("jsonl.hist", {1, 2}).observe(1);
    const std::string jsonl =
        Registry::global().snapshot().toJsonl();
    std::string error;
    EXPECT_TRUE(obs::jsonlWellFormed(jsonl, &error)) << error;
    const std::string table =
        Registry::global().snapshot().toTable();
    EXPECT_NE(table.find("jsonl.counter"), std::string::npos);
}

TEST_F(Obs, SpanNestingIsRecorded)
{
    EnabledGuard on(true);
    {
        obs::Span outer("outer");
        {
            obs::Span inner("inner");
        }
        {
            obs::Span inner2("inner2");
        }
    }
    auto events = TraceRecorder::global().events();
    ASSERT_EQ(events.size(), 3u);
    // Spans complete innermost-first.
    EXPECT_EQ(events[0].name, "inner");
    EXPECT_EQ(events[0].depth, 1u);
    EXPECT_EQ(events[1].name, "inner2");
    EXPECT_EQ(events[1].depth, 1u);
    EXPECT_EQ(events[2].name, "outer");
    EXPECT_EQ(events[2].depth, 0u);
    // The outer span encloses the inner ones in time.
    EXPECT_LE(events[2].startUs, events[0].startUs);
    EXPECT_EQ(TraceRecorder::global().dropped(), 0u);
}

TEST_F(Obs, DisabledSpansRecordNothing)
{
    {
        obs::Span span("ghost");
    }
    EXPECT_TRUE(TraceRecorder::global().events().empty());
}

TEST_F(Obs, ChromeTraceJsonIsWellFormed)
{
    EnabledGuard on(true);
    {
        obs::Span span("a \"quoted\" span\\name");
        obs::Span child("child");
    }
    const std::string json =
        TraceRecorder::global().chromeTraceJson();
    std::string error;
    EXPECT_TRUE(obs::jsonWellFormed(json, &error)) << error;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    const std::string flame =
        TraceRecorder::global().flameSummary();
    EXPECT_NE(flame.find("child"), std::string::npos);
}

TEST_F(Obs, RingBufferPinsHeadAndKeepsTail)
{
    EnabledGuard on(true);
    TraceRecorder::global().setCapacity(64); // pins 64/16 = 4
    for (int i = 0; i < 200; i++) {
        obs::Span span("span" + std::to_string(i));
    }
    auto events = TraceRecorder::global().events();
    EXPECT_EQ(events.size(), 68u); // 4 pinned + 64 ring
    EXPECT_GT(TraceRecorder::global().dropped(), 0u);
    // The head of the run survives...
    EXPECT_EQ(events[0].name, "span0");
    // ...and so does the most recent event.
    EXPECT_EQ(events.back().name, "span199");
    TraceRecorder::global().setCapacity(65536);
}

TEST_F(Obs, JsonValidatorAcceptsAndRejects)
{
    std::string error;
    EXPECT_TRUE(obs::jsonWellFormed("{}"));
    EXPECT_TRUE(obs::jsonWellFormed(
        R"({"a":[1,2.5,-3e2],"b":{"c":null,"d":"x\n"},"e":true})"));
    EXPECT_TRUE(obs::jsonWellFormed("  [1, 2, 3]  "));
    EXPECT_FALSE(obs::jsonWellFormed("", &error));
    EXPECT_FALSE(obs::jsonWellFormed("{", &error));
    EXPECT_FALSE(obs::jsonWellFormed("{\"a\":}", &error));
    EXPECT_FALSE(obs::jsonWellFormed("[1,]", &error));
    EXPECT_FALSE(obs::jsonWellFormed("\"unterminated", &error));
    EXPECT_FALSE(obs::jsonWellFormed("{} trailing", &error));
    EXPECT_FALSE(obs::jsonWellFormed("nulL", &error));
    EXPECT_TRUE(obs::jsonlWellFormed("{\"a\":1}\n[2]\n\n"));
    EXPECT_FALSE(obs::jsonlWellFormed("{\"a\":1}\noops\n", &error));
    EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST_F(Obs, FuzzerStatsRoundTrip)
{
    obs::FuzzerStatsSnapshot snapshot;
    snapshot.execsDone = 1234;
    snapshot.compdiffExecs = 12340;
    snapshot.perConfigExecs = {{"gcc-O0", 6170}, {"clang-O3", 6170}};
    snapshot.corpusSize = 17;
    snapshot.crashes = 2;
    snapshot.diffs = 3;
    snapshot.edges = 99;
    snapshot.lastFindExec = 1200;
    snapshot.lastDiffExec = 800;

    const std::string text = obs::renderFuzzerStats(snapshot);
    const auto kv = obs::parseFuzzerStats(text);
    EXPECT_EQ(kv.at("execs_done"), "1234");
    EXPECT_EQ(kv.at("compdiff_execs"), "12340");
    EXPECT_EQ(kv.at("saved_diffs"), "3");
    EXPECT_EQ(kv.at("last_diff_execs"), "800");
    EXPECT_EQ(kv.at("execs_impl_gcc_O0"), "6170");

    const auto back = obs::snapshotFromFuzzerStats(text);
    EXPECT_EQ(back.execsDone, snapshot.execsDone);
    EXPECT_EQ(back.compdiffExecs, snapshot.compdiffExecs);
    EXPECT_EQ(back.corpusSize, snapshot.corpusSize);
    EXPECT_EQ(back.lastFindExec, snapshot.lastFindExec);
    ASSERT_EQ(back.perConfigExecs.size(), 2u);
    std::uint64_t total = 0;
    for (const auto &[name, execs] : back.perConfigExecs)
        total += execs;
    EXPECT_EQ(total, back.compdiffExecs);
}

TEST_F(Obs, PlotWriterFormat)
{
    obs::PlotWriter plot;
    plot.addRow({100, 5, 0, 1, 20, 1000});
    plot.addRow({200, 6, 1, 1, 25, 2000});
    const std::string text = plot.str();
    EXPECT_EQ(text.find("# execs"), 0u);
    EXPECT_NE(text.find("100, 5, 0, 1, 20, 1000"),
              std::string::npos);
    EXPECT_EQ(plot.rows().size(), 2u);
}

TEST_F(Obs, EnabledGuardRestoresState)
{
    obs::setEnabled(false);
    {
        EnabledGuard on(true);
        EXPECT_TRUE(obs::metricsEnabled());
        EXPECT_TRUE(obs::tracingEnabled());
        {
            EnabledGuard off(false);
            EXPECT_FALSE(obs::metricsEnabled());
        }
        EXPECT_TRUE(obs::metricsEnabled());
    }
    EXPECT_FALSE(obs::metricsEnabled());
    EXPECT_FALSE(obs::tracingEnabled());
}

TEST_F(Obs, RegistryIsThreadSafe)
{
    // Regression test for the parallel execution layer: handle
    // registration (map mutation) and bumps (atomic adds) race from
    // worker threads during a sharded campaign. Hammer both from
    // several threads; every increment must survive and handles
    // must stay stable.
    EnabledGuard on(true);
    constexpr int kThreads = 8;
    constexpr int kIters = 2'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([t] {
            for (int i = 0; i < kIters; i++) {
                // Shared name: contended atomic bumps.
                obs::counter("mt.shared").add();
                // Rotating names: concurrent registration.
                obs::counter("mt.worker." +
                             std::to_string((t + i) % 4))
                    .add();
                obs::gauge("mt.gauge").max(
                    static_cast<std::uint64_t>(i));
                obs::histogram("mt.hist").observe(
                    static_cast<std::uint64_t>(i % 100));
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(obs::counter("mt.shared").value(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    std::uint64_t rotated = 0;
    for (int n = 0; n < 4; n++)
        rotated +=
            obs::counter("mt.worker." + std::to_string(n)).value();
    EXPECT_EQ(rotated, static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(obs::gauge("mt.gauge").value(), kIters - 1u);
    auto snapshot = Registry::global().snapshot();
    EXPECT_FALSE(snapshot.toJsonl().empty());
}

TEST_F(Obs, QuietGuardScopesNoticeSilencing)
{
    ASSERT_FALSE(support::isQuiet());
    {
        support::QuietGuard quiet;
        EXPECT_TRUE(support::isQuiet());
        {
            support::QuietGuard loud(false);
            EXPECT_FALSE(support::isQuiet());
        }
        EXPECT_TRUE(support::isQuiet());
    }
    EXPECT_FALSE(support::isQuiet());
}

} // namespace
