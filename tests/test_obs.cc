/**
 * @file
 * Tests for the observability layer: metric semantics, span
 * recording and Chrome-trace export, stats-file formats, and the
 * disabled-mode no-op guarantee.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace
{

using namespace compdiff;
using obs::EnabledGuard;
using obs::Registry;
using obs::TraceRecorder;

/** Fresh global state for every test in this file. */
class Obs : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        Registry::global().reset();
        TraceRecorder::global().clear();
        obs::setEnabled(false);
    }
    void TearDown() override { obs::setEnabled(false); }
};

TEST_F(Obs, CounterAccumulatesWhenEnabled)
{
    EnabledGuard on(true);
    auto &counter = obs::counter("test.counter");
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
    // Same name -> same handle.
    EXPECT_EQ(&obs::counter("test.counter"), &counter);
    EXPECT_EQ(obs::counter("test.counter").value(), 42u);
}

TEST_F(Obs, DisabledBumpsAreNoOps)
{
    ASSERT_FALSE(obs::metricsEnabled());
    obs::counter("test.counter").add(5);
    obs::gauge("test.gauge").set(5);
    obs::histogram("test.hist").observe(5);
    EXPECT_EQ(obs::counter("test.counter").value(), 0u);
    EXPECT_EQ(obs::gauge("test.gauge").value(), 0u);
    EXPECT_EQ(obs::histogram("test.hist").count(), 0u);
}

TEST_F(Obs, GaugeSetAndHighWaterMark)
{
    EnabledGuard on(true);
    auto &gauge = obs::gauge("test.gauge");
    gauge.set(7);
    EXPECT_EQ(gauge.value(), 7u);
    gauge.max(3);
    EXPECT_EQ(gauge.value(), 7u);
    gauge.max(9);
    EXPECT_EQ(gauge.value(), 9u);
}

TEST_F(Obs, HistogramBucketsAndSum)
{
    EnabledGuard on(true);
    auto &hist =
        Registry::global().histogram("test.hist2", {10, 100});
    hist.observe(5);    // bucket 0 (<= 10)
    hist.observe(10);   // bucket 0 (boundary is inclusive)
    hist.observe(50);   // bucket 1 (<= 100)
    hist.observe(1000); // overflow bucket
    EXPECT_EQ(hist.count(), 4u);
    EXPECT_EQ(hist.sum(), 1065u);
    ASSERT_EQ(hist.buckets().size(), 3u);
    EXPECT_EQ(hist.buckets()[0], 2u);
    EXPECT_EQ(hist.buckets()[1], 1u);
    EXPECT_EQ(hist.buckets()[2], 1u);
}

TEST_F(Obs, SnapshotAndReset)
{
    EnabledGuard on(true);
    obs::counter("snap.c").add(3);
    obs::gauge("snap.g").set(4);
    Registry::global().histogram("snap.h", {8}).observe(6);

    auto snapshot = Registry::global().snapshot();
    const auto *c = snapshot.find("snap.c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->kind, "counter");
    EXPECT_EQ(c->value, 3u);
    const auto *h = snapshot.find("snap.h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 1u);
    // Entries are name-sorted.
    for (std::size_t i = 1; i < snapshot.entries.size(); i++) {
        EXPECT_LT(snapshot.entries[i - 1].name,
                  snapshot.entries[i].name);
    }

    Registry::global().reset();
    EXPECT_EQ(obs::counter("snap.c").value(), 0u);
    EXPECT_EQ(obs::gauge("snap.g").value(), 0u);
    // Registrations (and handles) survive a reset.
    auto after = Registry::global().snapshot();
    EXPECT_EQ(after.entries.size(), snapshot.entries.size());
}

TEST_F(Obs, SnapshotJsonlIsWellFormed)
{
    EnabledGuard on(true);
    obs::counter("jsonl.counter").add(1);
    obs::counter("jsonl.weird\"name\\").add(2);
    Registry::global().histogram("jsonl.hist", {1, 2}).observe(1);
    const std::string jsonl =
        Registry::global().snapshot().toJsonl();
    std::string error;
    EXPECT_TRUE(obs::jsonlWellFormed(jsonl, &error)) << error;
    const std::string table =
        Registry::global().snapshot().toTable();
    EXPECT_NE(table.find("jsonl.counter"), std::string::npos);
}

TEST_F(Obs, SpanNestingIsRecorded)
{
    EnabledGuard on(true);
    {
        obs::Span outer("outer");
        {
            obs::Span inner("inner");
        }
        {
            obs::Span inner2("inner2");
        }
    }
    auto events = TraceRecorder::global().events();
    ASSERT_EQ(events.size(), 3u);
    // Spans complete innermost-first.
    EXPECT_EQ(events[0].name, "inner");
    EXPECT_EQ(events[0].depth, 1u);
    EXPECT_EQ(events[1].name, "inner2");
    EXPECT_EQ(events[1].depth, 1u);
    EXPECT_EQ(events[2].name, "outer");
    EXPECT_EQ(events[2].depth, 0u);
    // The outer span encloses the inner ones in time.
    EXPECT_LE(events[2].startUs, events[0].startUs);
    EXPECT_EQ(TraceRecorder::global().dropped(), 0u);
}

TEST_F(Obs, DisabledSpansRecordNothing)
{
    {
        obs::Span span("ghost");
    }
    EXPECT_TRUE(TraceRecorder::global().events().empty());
}

TEST_F(Obs, ChromeTraceJsonIsWellFormed)
{
    EnabledGuard on(true);
    {
        obs::Span span("a \"quoted\" span\\name");
        obs::Span child("child");
    }
    const std::string json =
        TraceRecorder::global().chromeTraceJson();
    std::string error;
    EXPECT_TRUE(obs::jsonWellFormed(json, &error)) << error;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    const std::string flame =
        TraceRecorder::global().flameSummary();
    EXPECT_NE(flame.find("child"), std::string::npos);
}

TEST_F(Obs, RingBufferPinsHeadAndKeepsTail)
{
    EnabledGuard on(true);
    TraceRecorder::global().setCapacity(64); // pins 64/16 = 4
    for (int i = 0; i < 200; i++) {
        obs::Span span("span" + std::to_string(i));
    }
    auto events = TraceRecorder::global().events();
    EXPECT_EQ(events.size(), 68u); // 4 pinned + 64 ring
    EXPECT_GT(TraceRecorder::global().dropped(), 0u);
    // The head of the run survives...
    EXPECT_EQ(events[0].name, "span0");
    // ...and so does the most recent event.
    EXPECT_EQ(events.back().name, "span199");
    TraceRecorder::global().setCapacity(65536);
}

TEST_F(Obs, JsonValidatorAcceptsAndRejects)
{
    std::string error;
    EXPECT_TRUE(obs::jsonWellFormed("{}"));
    EXPECT_TRUE(obs::jsonWellFormed(
        R"({"a":[1,2.5,-3e2],"b":{"c":null,"d":"x\n"},"e":true})"));
    EXPECT_TRUE(obs::jsonWellFormed("  [1, 2, 3]  "));
    EXPECT_FALSE(obs::jsonWellFormed("", &error));
    EXPECT_FALSE(obs::jsonWellFormed("{", &error));
    EXPECT_FALSE(obs::jsonWellFormed("{\"a\":}", &error));
    EXPECT_FALSE(obs::jsonWellFormed("[1,]", &error));
    EXPECT_FALSE(obs::jsonWellFormed("\"unterminated", &error));
    EXPECT_FALSE(obs::jsonWellFormed("{} trailing", &error));
    EXPECT_FALSE(obs::jsonWellFormed("nulL", &error));
    EXPECT_TRUE(obs::jsonlWellFormed("{\"a\":1}\n[2]\n\n"));
    EXPECT_FALSE(obs::jsonlWellFormed("{\"a\":1}\noops\n", &error));
    EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST_F(Obs, FuzzerStatsRoundTrip)
{
    obs::FuzzerStatsSnapshot snapshot;
    snapshot.execsDone = 1234;
    snapshot.compdiffExecs = 12340;
    snapshot.perConfigExecs = {{"gcc-O0", 6170}, {"clang-O3", 6170}};
    snapshot.corpusSize = 17;
    snapshot.crashes = 2;
    snapshot.diffs = 3;
    snapshot.edges = 99;
    snapshot.lastFindExec = 1200;
    snapshot.lastDiffExec = 800;

    const std::string text = obs::renderFuzzerStats(snapshot);
    const auto kv = obs::parseFuzzerStats(text);
    EXPECT_EQ(kv.at("execs_done"), "1234");
    EXPECT_EQ(kv.at("compdiff_execs"), "12340");
    EXPECT_EQ(kv.at("saved_diffs"), "3");
    EXPECT_EQ(kv.at("last_diff_execs"), "800");
    EXPECT_EQ(kv.at("execs_impl_gcc_O0"), "6170");

    const auto back = obs::snapshotFromFuzzerStats(text);
    EXPECT_EQ(back.execsDone, snapshot.execsDone);
    EXPECT_EQ(back.compdiffExecs, snapshot.compdiffExecs);
    EXPECT_EQ(back.corpusSize, snapshot.corpusSize);
    EXPECT_EQ(back.lastFindExec, snapshot.lastFindExec);
    ASSERT_EQ(back.perConfigExecs.size(), 2u);
    std::uint64_t total = 0;
    for (const auto &[name, execs] : back.perConfigExecs)
        total += execs;
    EXPECT_EQ(total, back.compdiffExecs);
}

TEST_F(Obs, PlotWriterFormat)
{
    obs::PlotWriter plot;
    plot.addRow({100, 5, 0, 1, 20, 1000});
    plot.addRow({200, 6, 1, 1, 25, 2000});
    const std::string text = plot.str();
    EXPECT_EQ(text.find("# execs"), 0u);
    EXPECT_NE(text.find("100, 5, 0, 1, 20, 1000"),
              std::string::npos);
    EXPECT_EQ(plot.rows().size(), 2u);
}

TEST_F(Obs, EnabledGuardRestoresState)
{
    obs::setEnabled(false);
    {
        EnabledGuard on(true);
        EXPECT_TRUE(obs::metricsEnabled());
        EXPECT_TRUE(obs::tracingEnabled());
        {
            EnabledGuard off(false);
            EXPECT_FALSE(obs::metricsEnabled());
        }
        EXPECT_TRUE(obs::metricsEnabled());
    }
    EXPECT_FALSE(obs::metricsEnabled());
    EXPECT_FALSE(obs::tracingEnabled());
}

TEST_F(Obs, RegistryIsThreadSafe)
{
    // Regression test for the parallel execution layer: handle
    // registration (map mutation) and bumps (atomic adds) race from
    // worker threads during a sharded campaign. Hammer both from
    // several threads; every increment must survive and handles
    // must stay stable.
    EnabledGuard on(true);
    constexpr int kThreads = 8;
    constexpr int kIters = 2'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([t] {
            for (int i = 0; i < kIters; i++) {
                // Shared name: contended atomic bumps.
                obs::counter("mt.shared").add();
                // Rotating names: concurrent registration.
                obs::counter("mt.worker." +
                             std::to_string((t + i) % 4))
                    .add();
                obs::gauge("mt.gauge").max(
                    static_cast<std::uint64_t>(i));
                obs::histogram("mt.hist").observe(
                    static_cast<std::uint64_t>(i % 100));
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(obs::counter("mt.shared").value(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    std::uint64_t rotated = 0;
    for (int n = 0; n < 4; n++)
        rotated +=
            obs::counter("mt.worker." + std::to_string(n)).value();
    EXPECT_EQ(rotated, static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(obs::gauge("mt.gauge").value(), kIters - 1u);
    auto snapshot = Registry::global().snapshot();
    EXPECT_FALSE(snapshot.toJsonl().empty());
}

TEST_F(Obs, QuietGuardScopesNoticeSilencing)
{
    ASSERT_FALSE(support::isQuiet());
    {
        support::QuietGuard quiet;
        EXPECT_TRUE(support::isQuiet());
        {
            support::QuietGuard loud(false);
            EXPECT_FALSE(support::isQuiet());
        }
        EXPECT_TRUE(support::isQuiet());
    }
    EXPECT_FALSE(support::isQuiet());
}

/**
 * Property test: a randomized FuzzerStatsSnapshot survives a
 * render→parse round trip with *every* field intact — including
 * perConfigExecs in configuration (file) order, not key-sorted, and
 * the wall-clock display fields. The strongest check is byte-level:
 * re-rendering the parsed snapshot reproduces the original text.
 */
TEST_F(Obs, FuzzerStatsSnapshotRoundTripProperty)
{
    // Deliberately not alphabetical: a key-sorted parse would
    // reorder these and fail the byte-identity check below.
    const char *kNames[] = {"zeta_O3", "gcc_O0",  "icx_O2",
                            "clang_O3", "bcc_O1", "alpha_Os"};
    const std::size_t kPool = sizeof(kNames) / sizeof(kNames[0]);
    support::Rng rng(0x5EEDFACE);
    for (int iter = 0; iter < 64; iter++) {
        SCOPED_TRACE("iter=" + std::to_string(iter));
        obs::FuzzerStatsSnapshot snapshot;
        snapshot.banner =
            "compdiff-afl-" + std::to_string(rng.below(1000));
        snapshot.execsDone = rng.below(1'000'000'000);
        snapshot.corpusSize = rng.below(100'000);
        snapshot.crashes = rng.below(10'000);
        snapshot.diffs = rng.below(10'000);
        snapshot.edges = rng.below(1'000'000);
        snapshot.lastFindExec = rng.below(1'000'000'000);
        snapshot.lastDiffExec = rng.below(1'000'000'000);
        // %.2f-exact doubles so the byte comparison is meaningful.
        snapshot.execsPerSec =
            static_cast<double>(rng.below(100'000'000)) / 100.0;
        snapshot.runTimeSecs =
            static_cast<double>(rng.below(1'000'000'00)) / 100.0;
        snapshot.restarts = rng.below(1000);
        const std::size_t configs = rng.below(kPool + 1);
        const std::size_t start = rng.below(kPool);
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < configs; i++) {
            const std::uint64_t execs = rng.below(1'000'000);
            snapshot.perConfigExecs.emplace_back(
                kNames[(start + i) % kPool], execs);
            total += execs;
        }
        snapshot.compdiffExecs = total;

        const std::string text = obs::renderFuzzerStats(snapshot);
        const obs::FuzzerStatsSnapshot back =
            obs::snapshotFromFuzzerStats(text);
        EXPECT_EQ(back.banner, snapshot.banner);
        EXPECT_EQ(back.execsDone, snapshot.execsDone);
        EXPECT_EQ(back.compdiffExecs, snapshot.compdiffExecs);
        EXPECT_EQ(back.corpusSize, snapshot.corpusSize);
        EXPECT_EQ(back.crashes, snapshot.crashes);
        EXPECT_EQ(back.diffs, snapshot.diffs);
        EXPECT_EQ(back.edges, snapshot.edges);
        EXPECT_EQ(back.lastFindExec, snapshot.lastFindExec);
        EXPECT_EQ(back.lastDiffExec, snapshot.lastDiffExec);
        EXPECT_EQ(back.execsPerSec, snapshot.execsPerSec);
        EXPECT_EQ(back.runTimeSecs, snapshot.runTimeSecs);
        EXPECT_EQ(back.restarts, snapshot.restarts);
        EXPECT_EQ(back.perConfigExecs, snapshot.perConfigExecs);
        EXPECT_EQ(obs::renderFuzzerStats(back), text);
    }
}

TEST_F(Obs, HistogramQuantileInterpolation)
{
    obs::MetricsSnapshot::Entry entry;
    entry.kind = "histogram";
    entry.bounds = {100, 200};
    entry.buckets = {50, 50, 0};
    entry.count = 100;
    // rank 50 lands exactly at the first bucket's upper bound...
    EXPECT_DOUBLE_EQ(entry.quantile(0.50), 100.0);
    // ...rank 90 interpolates 80% into the second bucket's span.
    EXPECT_DOUBLE_EQ(entry.quantile(0.90), 180.0);
    // Degenerate inputs: empty entries and out-of-range q are 0.
    EXPECT_EQ(entry.quantile(0.0), 0.0);
    EXPECT_EQ(entry.quantile(1.0), 0.0);
    obs::MetricsSnapshot::Entry empty;
    empty.kind = "histogram";
    empty.bounds = {10};
    empty.buckets = {0, 0};
    EXPECT_EQ(empty.quantile(0.5), 0.0);
    // Overflow-bucket observations clamp to the highest bound.
    obs::MetricsSnapshot::Entry over;
    over.kind = "histogram";
    over.bounds = {10};
    over.buckets = {0, 5};
    over.count = 5;
    EXPECT_DOUBLE_EQ(over.quantile(0.5), 10.0);
}

TEST_F(Obs, SnapshotJsonlCarriesPercentiles)
{
    EnabledGuard on(true);
    auto &hist =
        Registry::global().histogram("pct.hist", {10, 100});
    for (int i = 0; i < 10; i++)
        hist.observe(5);
    const std::string jsonl =
        Registry::global().snapshot().toJsonl();
    EXPECT_NE(jsonl.find("\"p50\":"), std::string::npos);
    EXPECT_NE(jsonl.find("\"p90\":"), std::string::npos);
    EXPECT_NE(jsonl.find("\"p99\":"), std::string::npos);
    std::string error;
    EXPECT_TRUE(obs::jsonlWellFormed(jsonl, &error)) << error;
    const std::string table =
        Registry::global().snapshot().toTable();
    EXPECT_NE(table.find("p50"), std::string::npos);
}

TEST_F(Obs, EventLineRoundTrip)
{
    obs::CampaignEvent event("divergence", 412);
    event.hex("signature", 0x00ab12cd34ef5678ULL)
        .num("size", 33)
        .text("note", "weird \"quoted\" value\n");
    const std::string line = obs::renderEventLine(event);
    EXPECT_EQ(line.find("{\"v\":1,\"kind\":\"divergence\""), 0u);

    obs::CampaignEvent back;
    std::string error;
    ASSERT_TRUE(obs::parseEventLine(line, &back, &error)) << error;
    EXPECT_EQ(back.kind, "divergence");
    EXPECT_EQ(back.exec, 412u);
    ASSERT_EQ(back.details.size(), 3u);
    ASSERT_NE(back.find("signature"), nullptr);
    EXPECT_EQ(back.find("signature")->value,
              obs::hex16(0x00ab12cd34ef5678ULL));
    EXPECT_EQ(back.numOr("size"), 33u);
    EXPECT_EQ(back.find("note")->value, "weird \"quoted\" value\n");
    // Round-tripping is byte-stable (details keep their order).
    EXPECT_EQ(obs::renderEventLine(back), line);
}

TEST_F(Obs, EventLineChecksumCatchesTampering)
{
    const std::string line = obs::renderEventLine(
        obs::CampaignEvent("discovery", 7).num("size", 16));
    obs::CampaignEvent out;
    ASSERT_TRUE(obs::parseEventLine(line, &out));
    // Flip one digit in the body: the crc no longer matches.
    std::string tampered = line;
    const std::size_t pos = tampered.find("\"exec\":7");
    ASSERT_NE(pos, std::string::npos);
    tampered[pos + 7] = '9';
    std::string error;
    EXPECT_FALSE(obs::parseEventLine(tampered, &out, &error));
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST_F(Obs, EventLogKeepsValidPrefixAndDropsTornTail)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "compdiff_obs_events_torn.jsonl")
            .string();
    std::filesystem::remove(path);

    // A missing file is an empty log, not an error.
    EXPECT_TRUE(obs::readEventLog(path).events.empty());
    EXPECT_FALSE(obs::readEventLog(path).droppedTail);

    std::vector<obs::CampaignEvent> events;
    for (std::uint64_t i = 1; i <= 5; i++)
        events.push_back(
            obs::CampaignEvent("discovery", i * 10).num("size", i));
    ASSERT_TRUE(obs::appendEventLines(path, events));
    EXPECT_EQ(obs::readEventLog(path).events.size(), 5u);

    // Tear the last line mid-checksum, as a hard kill would.
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) - 9);
    const obs::EventLog torn = obs::readEventLog(path);
    EXPECT_EQ(torn.events.size(), 4u);
    EXPECT_TRUE(torn.droppedTail);
    EXPECT_EQ(torn.events.back().exec, 40u);

    // writeEventLog rewinds the journal wholesale.
    ASSERT_TRUE(obs::writeEventLog(
        path, {obs::CampaignEvent("crash", 3)}));
    const obs::EventLog rewound = obs::readEventLog(path);
    ASSERT_EQ(rewound.events.size(), 1u);
    EXPECT_EQ(rewound.events[0].kind, "crash");
    EXPECT_FALSE(rewound.droppedTail);
    std::filesystem::remove(path);
}

} // namespace
