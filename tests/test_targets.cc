/**
 * @file
 * Tests for the target programs: they compile, run cleanly on their
 * seeds, plant the documented bug mix, and each bug's trigger input
 * actually produces divergence.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "compdiff/engine.hh"
#include "compiler/compiler.hh"
#include "minic/parser.hh"
#include "targets/campaign.hh"
#include "targets/targets.hh"
#include "vm/vm.hh"

namespace
{

using namespace compdiff;
using targets::allTargets;
using targets::BugCategory;
using targets::TargetProgram;

TEST(Targets, RegistryShape)
{
    const auto &list = allTargets();
    EXPECT_EQ(list.size(), 13u);
    EXPECT_EQ(targets::totalPlantedBugs(), 78u); // Table 5 total

    std::map<std::string, int> columns;
    std::set<int> probes;
    for (const auto &target : list) {
        EXPECT_FALSE(target.seeds.empty()) << target.name;
        EXPECT_GT(target.linesOfCode(), 40u) << target.name;
        for (const auto &bug : target.bugs) {
            columns[targets::categoryColumn(bug.category)]++;
            EXPECT_TRUE(probes.insert(bug.probeId).second)
                << "duplicate probe " << bug.probeId;
        }
    }
    // Table 5 "Reported" row.
    EXPECT_EQ(columns["EvalOrder"], 2);
    EXPECT_EQ(columns["UninitMem"], 27);
    EXPECT_EQ(columns["IntError"], 8);
    EXPECT_EQ(columns["MemError"], 13);
    EXPECT_EQ(columns["PointerCmp"], 1);
    EXPECT_EQ(columns["LINE"], 6);
    EXPECT_EQ(columns["Misc."], 21);
}

TEST(Targets, DeveloperResponseMatchesTable5)
{
    std::map<std::string, int> confirmed;
    std::map<std::string, int> fixed;
    for (const auto &target : allTargets()) {
        for (const auto &bug : target.bugs) {
            const std::string col =
                targets::categoryColumn(bug.category);
            confirmed[col] += bug.confirmed;
            fixed[col] += bug.fixed;
        }
    }
    EXPECT_EQ(confirmed["EvalOrder"], 2);
    EXPECT_EQ(confirmed["UninitMem"], 19);
    EXPECT_EQ(confirmed["IntError"], 8);
    EXPECT_EQ(confirmed["MemError"], 13);
    EXPECT_EQ(confirmed["PointerCmp"], 1);
    EXPECT_EQ(confirmed["LINE"], 5);
    EXPECT_EQ(confirmed["Misc."], 17);
    EXPECT_EQ(fixed["EvalOrder"], 2);
    EXPECT_EQ(fixed["UninitMem"], 15);
    EXPECT_EQ(fixed["IntError"], 6);
    EXPECT_EQ(fixed["MemError"], 12);
    EXPECT_EQ(fixed["PointerCmp"], 1);
    EXPECT_EQ(fixed["LINE"], 5);
    EXPECT_EQ(fixed["Misc."], 11);
}

TEST(Targets, AllCompileAndRunSeeds)
{
    for (const auto &target : allTargets()) {
        std::unique_ptr<minic::Program> program;
        ASSERT_NO_THROW(program = minic::parseAndCheck(target.source))
            << target.name;
        compiler::Compiler comp(*program);
        const compiler::CompilerConfig config{
            compiler::Vendor::Gcc, compiler::OptLevel::O0,
            compiler::Sanitizer::None};
        auto module = comp.compile(config);
        vm::Vm machine(module, config);
        for (const auto &seed : target.seeds) {
            auto run = machine.run(seed);
            EXPECT_FALSE(run.crashed())
                << target.name << ": seed crashed: "
                << run.exitClass();
            EXPECT_FALSE(run.timedOut()) << target.name;
        }
    }
}

// Every planted bug must be *triggerable*: there must exist an input
// that fires its probe and produces divergence. We drive each target
// with a short deterministic campaign and require high coverage of
// the planted set, then verify per-bug divergence on the witnesses.
TEST(Targets, CampaignsFindPlantedBugs)
{
    // A smoke-budget sweep over representative targets; the Table 5
    // bench runs the full-budget campaigns on all thirteen.
    targets::CampaignOptions options;
    options.maxExecs = 10'000;
    options.checkSanitizers = false;

    std::size_t planted = 0;
    std::size_t found = 0;
    for (const char *name :
         {"pktdump", "elfread", "arczip", "scriptvm", "jsonq"}) {
        const TargetProgram *target = targets::findTarget(name);
        ASSERT_NE(target, nullptr) << name;
        auto result = targets::runCampaign(*target, options);
        planted += target->bugs.size();
        found += result.found.size();
        EXPECT_EQ(result.untriagedDiffs(), 0u)
            << name << " produced unplanted divergences";
        for (const auto &finding : result.found) {
            ASSERT_NE(finding.bug, nullptr);
            EXPECT_FALSE(finding.hashVector.empty());
        }
    }
    EXPECT_GE(found, planted * 3 / 4)
        << "only " << found << " of " << planted << " bugs found";
}

TEST(Targets, NetsharkNeedsNormalization)
{
    const TargetProgram *netshark = targets::findTarget("netshark");
    ASSERT_NE(netshark, nullptr);
    EXPECT_TRUE(netshark->nonDeterministicOutput);

    auto program = minic::parseAndCheck(netshark->source);
    // Raw comparison diverges on the timestamped frame record...
    core::DiffOptions raw;
    raw.normalizer = core::OutputNormalizer();
    core::DiffEngine raw_engine(
        *program, compiler::standardImplementations(), raw);
    support::Bytes ts_input = {87, 1, 9};
    EXPECT_TRUE(raw_engine.runInput(ts_input).divergent);

    // ...while the default filters keep it stable (RQ5).
    core::DiffEngine engine(*program);
    EXPECT_FALSE(engine.runInput(ts_input).divergent);
}

TEST(Targets, ScriptvmHostsTheCompilerBugs)
{
    const TargetProgram *scriptvm = targets::findTarget("scriptvm");
    ASSERT_NE(scriptvm, nullptr);
    int compiler_bugs = 0;
    for (const auto &bug : scriptvm->bugs)
        compiler_bugs += bug.category == BugCategory::CompilerBug;
    EXPECT_EQ(compiler_bugs, 3); // RQ2: 2 gcc-sim + 1 clang-sim

    // Direct witness: push 3, push 9, sub -> -6, then op_hash (%8).
    auto program = minic::parseAndCheck(scriptvm->source);
    core::DiffEngine engine(*program);
    auto diff = engine.runInput({74, 1, 3, 1, 9, 3, 4, 10});
    EXPECT_TRUE(diff.divergent);
}

} // namespace
