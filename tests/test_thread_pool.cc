/**
 * @file
 * Tests for support::ThreadPool: FIFO dispatch, the runAll batch
 * primitive (output slots, caller participation, exception
 * discipline), and graceful drain-on-destruction.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/thread_pool.hh"

namespace
{

using compdiff::support::ThreadPool;

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder)
{
    // With exactly one worker the queue is strictly FIFO, so the
    // execution order must equal the submission order.
    ThreadPool pool(1);
    std::vector<int> order;
    std::mutex mu;
    for (int i = 0; i < 64; i++) {
        pool.submit([&order, &mu, i] {
            std::lock_guard<std::mutex> lock(mu);
            order.push_back(i);
        });
    }
    pool.waitIdle();
    std::vector<int> expected(64);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, RunAllFillsEverySlot)
{
    ThreadPool pool(4);
    std::vector<int> out(100, -1);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 100; i++)
        tasks.push_back([&out, i] { out[static_cast<std::size_t>(i)] = i * i; });
    pool.runAll(std::move(tasks));
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(ThreadPool, RunAllEmptyBatchIsANoOp)
{
    ThreadPool pool(2);
    pool.runAll({});
    EXPECT_EQ(pool.workerCount(), 2u);
}

TEST(ThreadPool, RunAllRethrowsLowestIndexException)
{
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; i++) {
        tasks.push_back([&completed, i] {
            if (i == 3 || i == 5)
                throw std::runtime_error("task " +
                                         std::to_string(i));
            completed.fetch_add(1);
        });
    }
    try {
        pool.runAll(std::move(tasks));
        FAIL() << "runAll should have rethrown";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "task 3");
    }
    // Every non-throwing task still ran (no early abort).
    EXPECT_EQ(completed.load(), 6);
    // The pool survives a throwing batch.
    std::atomic<bool> ran{false};
    pool.runAll({[&ran] { ran = true; }});
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; i++) {
            pool.submit([&done] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                done.fetch_add(1);
            });
        }
        // Destructor must finish the queue, not abandon it.
    }
    EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, WaitIdleBlocksUntilQueueEmpty)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 24; i++) {
        pool.submit([&done] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
            done.fetch_add(1);
        });
    }
    pool.waitIdle();
    EXPECT_EQ(done.load(), 24);
    pool.waitIdle(); // idempotent on an idle pool
    EXPECT_EQ(done.load(), 24);
}

TEST(ThreadPool, HardwareWorkersIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareWorkers(), 1u);
    ThreadPool pool(0); // 0 = hardware default
    EXPECT_GE(pool.workerCount(), 1u);
}

} // namespace
