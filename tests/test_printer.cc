/**
 * @file
 * Tests for the AST pretty-printer, including the reparse property:
 * printing an analyzed program and parsing the result again must
 * produce a program with identical observable behavior.
 */

#include <gtest/gtest.h>

#include "compdiff/engine.hh"
#include "compiler/compiler.hh"
#include "compiler/passes.hh"
#include "minic/parser.hh"
#include "minic/printer.hh"
#include "vm/vm.hh"

namespace
{

using namespace compdiff;
using minic::parseAndCheck;
using minic::printProgram;

TEST(Printer, RendersConstructs)
{
    auto program = parseAndCheck(R"(
        struct pair { int a; int b; };
        int g = 3;
        int sum(int *arr, int n) {
            int total = 0;
            for (int i = 0; i < n; i += 1) {
                total += arr[i];
            }
            return total;
        }
        int main() {
            struct pair p;
            p.a = 1;
            p.b = g > 2 ? 10 : 20;
            int data[4];
            while (p.a < 4) { p.a += 1; }
            if (!(p.a == 4)) { return 1; }
            char *s = "hi\n";
            print_str(s);
            return sum(data, 0) + p.b + (int)sizeof(long);
        }
    )");
    const std::string text = printProgram(*program);
    EXPECT_NE(text.find("int g = 3;"), std::string::npos);
    EXPECT_NE(text.find("int sum(int * arr, int n)"),
              std::string::npos);
    EXPECT_NE(text.find("for (int i = 0; (i < n); i += 1)"),
              std::string::npos);
    EXPECT_NE(text.find("p.a"), std::string::npos);
    EXPECT_NE(text.find("\"hi\\n\""), std::string::npos);
    EXPECT_NE(text.find("sizeof(long)"), std::string::npos);
}

/** Print -> reparse -> behavior must be identical. */
TEST(Printer, ReparseRoundTripPreservesBehavior)
{
    const char *source = R"(
        struct cell { int key; long val; char tag[4]; };
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        long stash(struct cell *c, int k) {
            c->key = k;
            c->val = (long)k * 7L;
            c->tag[0] = 'c';
            return c->val;
        }
        int main() {
            int acc = 0;
            for (int i = 0; i < 12; i += 1) {
                acc = (acc + fib(i)) % 1000;
            }
            print_int(acc);
            newline();
            char buf[8];
            strcpy(buf, "ok");
            print_str(buf);
            struct cell c;
            print_long(stash(&c, 6));
            return 0;
        }
    )";
    auto original = parseAndCheck(source);
    auto reparsed = parseAndCheck(printProgram(*original));

    const compiler::CompilerConfig config{compiler::Vendor::Gcc,
                                          compiler::OptLevel::O2};
    compiler::Compiler c1(*original);
    compiler::Compiler c2(*reparsed);
    auto m1 = c1.compile(config);
    auto m2 = c2.compile(config);
    vm::Vm v1(m1, config);
    vm::Vm v2(m2, config);
    auto r1 = v1.run({});
    auto r2 = v2.run({});
    EXPECT_EQ(r1.output, r2.output);
    EXPECT_EQ(r1.exitClass(), r2.exitClass());
}

/** The printer is the debugging lens for passes: the widened-mul
 *  marker must be visible after WidenMulPass. */
TEST(Printer, ShowsPassAnnotations)
{
    auto program = parseAndCheck(R"(
        int main() {
            int a = input_byte(0);
            long x = 1L + a * a;
            print_long(x);
            return 0;
        }
    )");
    auto clone = program->functions[0]->clone();
    compiler::normalizeBodies(*clone);
    const compiler::Traits traits =
        compiler::traitsFor({compiler::Vendor::Clang,
                             compiler::OptLevel::O2});
    for (const auto &pass : compiler::standardPasses())
        if (std::string(pass->name()) == "widenmul")
            pass->run(*clone, traits);
    const std::string text = minic::printFunction(*clone);
    EXPECT_NE(text.find("/*widened*/"), std::string::npos);
}

} // namespace
