/**
 * @file
 * Cross-dispatch identity and operand-stack hardening.
 *
 * The execution engine has two interpreter instantiations (computed-
 * goto threaded code and a portable switch loop) and two decodings of
 * every module (with and without superinstruction fusion). All four
 * combinations must produce byte-identical observable results —
 * output, exit classification, sanitizer reports, probes, coverage,
 * and the instruction count that drives the RQ6 budget discipline —
 * for every program, including ones that trap mid-expression. These
 * tests pin that invariant over the bundled seed-bug targets and a
 * randomized MiniC sweep, then pin the batch/retarget layers on top
 * (DiffEngine::runBatch and retarget() must match fresh serial runs
 * bit for bit).
 *
 * The hardening half feeds the Vm hand-assembled *malformed* modules
 * (compiler-lowered code is always stack-balanced) and requires a
 * deterministic Trap — exit class "crash:stack" — instead of
 * std::vector UB on operand-stack underflow/overflow, and a
 * deterministic "crash:segv" when the pc runs off the end of a
 * function (the decoded TrapEnd sentinel).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "bytecode/decode.hh"
#include "compdiff/engine.hh"
#include "compiler/compiler.hh"
#include "fuzz/fuzzer.hh"
#include "minic/parser.hh"
#include "support/rng.hh"
#include "support/strings.hh"
#include "targets/targets.hh"
#include "vm/coverage.hh"
#include "vm/vm.hh"

namespace
{

using namespace compdiff;
using support::format;

const compiler::CompilerConfig kGccO0{compiler::Vendor::Gcc,
                                      compiler::OptLevel::O0,
                                      compiler::Sanitizer::None};
const compiler::CompilerConfig kClangO3{compiler::Vendor::Clang,
                                        compiler::OptLevel::O3,
                                        compiler::Sanitizer::None};

/** Everything the oracle stack can observe about one execution. */
std::string
resultKey(const vm::ExecutionResult &result)
{
    std::string key = result.exitClass();
    key += "|" + std::to_string(result.exitCode);
    key += "|" + std::to_string(static_cast<int>(result.termination));
    key += "|" + std::to_string(static_cast<int>(result.trap));
    key += "|" + std::to_string(result.instructions);
    for (int probe : result.probes)
        key += ",p" + std::to_string(probe);
    for (const auto &report : result.sanReports)
        key += ",s" + report.str();
    key += "|" + result.output;
    return key;
}

struct ModeRun
{
    std::string key;
    support::Bytes coverage;
};

ModeRun
runOne(const bytecode::Module &module,
       const compiler::CompilerConfig &config,
       const support::Bytes &input, vm::DispatchMode mode,
       bool fused, std::uint64_t nonce)
{
    vm::Vm machine(module, config);
    machine.setDispatchMode(mode);
    if (!fused) {
        machine.setDecodedProgram(
            bytecode::decodeModule(module, {/*fuse=*/false}));
    }
    vm::CoverageMap coverage;
    auto result = machine.run(input, &coverage, nonce);
    support::Bytes map(coverage.data(),
                       coverage.data() + vm::kCoverageMapSize);
    return {resultKey(result), std::move(map)};
}

/**
 * Run (module, config, input) under every dispatch x decode
 * combination in one process and require identical observations.
 */
void
expectDispatchIdentity(const bytecode::Module &module,
                       const compiler::CompilerConfig &config,
                       const support::Bytes &input,
                       const std::string &label,
                       std::uint64_t nonce = 0)
{
    const ModeRun reference = runOne(module, config, input,
                                     vm::DispatchMode::Switch,
                                     /*fused=*/true, nonce);
    const struct
    {
        vm::DispatchMode mode;
        bool fused;
        const char *name;
    } combos[] = {
        {vm::DispatchMode::Switch, false, "switch/unfused"},
        {vm::DispatchMode::Threaded, true, "threaded/fused"},
        {vm::DispatchMode::Threaded, false, "threaded/unfused"},
    };
    for (const auto &combo : combos) {
        const ModeRun run = runOne(module, config, input, combo.mode,
                                   combo.fused, nonce);
        EXPECT_EQ(run.key, reference.key)
            << label << ": " << combo.name
            << " diverges from switch/fused";
        EXPECT_EQ(run.coverage, reference.coverage)
            << label << ": " << combo.name << " coverage differs";
    }
}

// ------------------------------------------------------------------
// Satellite: identity over the bundled seed-bug corpus.
// ------------------------------------------------------------------

TEST(DispatchIdentity, BundledTargetsAllModes)
{
    for (const auto &target : targets::allTargets()) {
        auto program = minic::parseAndCheck(target.source);
        compiler::Compiler comp(*program);
        for (const auto &config : {kGccO0, kClangO3}) {
            const auto module = comp.compile(config);
            std::uint64_t nonce = 0;
            for (const auto &seed : target.seeds) {
                expectDispatchIdentity(
                    module, config, seed,
                    target.name + "/" + config.name(), ++nonce);
                // A corrupted seed exercises the target's error and
                // trap paths, where fused handlers must stop at the
                // same instruction the unfused stream would.
                support::Bytes mutated = seed;
                if (!mutated.empty()) {
                    mutated[mutated.size() / 2] ^= 0xFF;
                    expectDispatchIdentity(
                        module, config, mutated,
                        target.name + "/" + config.name() +
                            "/mutated",
                        ++nonce);
                }
            }
        }
    }
}

// ------------------------------------------------------------------
// Satellite: identity over randomized MiniC programs. Unlike the
// well-definedness sweep in test_properties.cc, this generator
// *wants* runtime faults (unguarded division, oversized shifts):
// identity is per-configuration, and trap paths are exactly where a
// fused handler could stop one instruction early or late.
// ------------------------------------------------------------------

std::string
randomProgram(std::uint64_t seed)
{
    support::Rng rng(seed);
    std::string body;
    const int vars = static_cast<int>(rng.range(3, 6));
    for (int i = 0; i < vars; i++)
        body += format("int v%d = %ld;\n", i, rng.range(-40, 40));
    const auto var = [&] {
        return format("v%d", static_cast<int>(
                                 rng.range(0, vars - 1)));
    };
    const int stmts = static_cast<int>(rng.range(4, 12));
    for (int i = 0; i < stmts; i++) {
        switch (rng.below(6)) {
          case 0:
            body += var() + " = " + var() + " + " +
                    format("%ld", rng.range(-30, 30)) + ";\n";
            break;
          case 1: // unguarded division: may fault, identically
            body += var() + " = " + var() + " / " + var() + ";\n";
            break;
          case 2: // variable shift count: ShiftNorm paths
            body += var() + " = " + var() + " << (" + var() +
                    " & 40);\n";
            break;
          case 3:
            body += "if (" + var() + " < " + var() + ") { " + var() +
                    " = " + var() + " * 3; }\n";
            break;
          case 4: {
            const std::string v = var();
            body += "for (int it = 0; it < " +
                    format("%ld", rng.range(1, 9)) + "; it += 1) { " +
                    v + " = (" + v + " + it) & 2047; }\n";
            break;
          }
          default: {
            const std::string v = var();
            body += format("{ int arr[4]; arr[%s & 3] = %s; %s = "
                           "arr[0] + arr[3]; }\n",
                           v.c_str(), v.c_str(), v.c_str());
            break;
          }
        }
    }
    for (int i = 0; i < vars; i++)
        body += format("print_int(v%d); newline();\n", i);
    return "int main() {\n" + body + "return 0;\n}\n";
}

class RandomizedDispatchIdentity : public testing::TestWithParam<int>
{};

TEST_P(RandomizedDispatchIdentity, AllModesAgree)
{
    const std::string source = randomProgram(
        0xD15BA7C4ull + static_cast<std::uint64_t>(GetParam()));
    auto program = minic::parseAndCheck(source);
    compiler::Compiler comp(*program);
    for (const auto &config : {kGccO0, kClangO3}) {
        const auto module = comp.compile(config);
        expectDispatchIdentity(module, config, {},
                               "random/" + config.name());
    }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, RandomizedDispatchIdentity,
                         testing::Range(0, 40));

// ------------------------------------------------------------------
// Batch and retarget layers: the resident-module API must be
// bit-identical to fresh serial runs.
// ------------------------------------------------------------------

void
expectSameDiff(const core::DiffResult &a, const core::DiffResult &b,
               const std::string &label)
{
    EXPECT_EQ(a.divergent, b.divergent) << label;
    EXPECT_EQ(a.unresolvedTimeout, b.unresolvedTimeout) << label;
    EXPECT_EQ(a.attempts, b.attempts) << label;
    EXPECT_EQ(a.classCount, b.classCount) << label;
    EXPECT_EQ(a.classOf, b.classOf) << label;
    ASSERT_EQ(a.observations.size(), b.observations.size()) << label;
    for (std::size_t i = 0; i < a.observations.size(); i++) {
        const auto &oa = a.observations[i];
        const auto &ob = b.observations[i];
        EXPECT_EQ(oa.impl, ob.impl) << label;
        EXPECT_EQ(oa.hash, ob.hash) << label;
        EXPECT_EQ(oa.normalizedOutput, ob.normalizedOutput) << label;
        EXPECT_EQ(oa.exitClass, ob.exitClass) << label;
        EXPECT_EQ(oa.timedOut, ob.timedOut) << label;
        EXPECT_EQ(oa.instructions, ob.instructions) << label;
    }
}

std::vector<support::Bytes>
batchInputs(const targets::TargetProgram &target)
{
    std::vector<support::Bytes> inputs = target.seeds;
    const std::size_t base = inputs.size();
    for (std::size_t i = 0; i < base; i++) {
        support::Bytes mutated = inputs[i];
        if (mutated.empty())
            continue;
        mutated[i % mutated.size()] ^= 0x55;
        inputs.push_back(std::move(mutated));
    }
    return inputs;
}

TEST(BatchExecution, RunBatchMatchesSerialRunInput)
{
    const auto &target = *targets::findTarget("pktdump");
    auto program = minic::parseAndCheck(target.source);
    const auto inputs = batchInputs(target);
    std::vector<std::uint64_t> nonce_bases;
    for (std::size_t i = 0; i < inputs.size(); i++)
        nonce_bases.push_back(i * 7 + 1);

    for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        core::DiffOptions options;
        options.jobs = jobs;
        core::DiffEngine engine(*program, options);
        const auto batch = engine.runBatch(inputs, nonce_bases);
        ASSERT_EQ(batch.size(), inputs.size());
        for (std::size_t b = 0; b < inputs.size(); b++) {
            const auto serial =
                engine.runInput(inputs[b], nonce_bases[b]);
            expectSameDiff(batch[b], serial,
                           format("jobs=%zu input=%zu", jobs, b));
        }
    }
}

TEST(BatchExecution, RetargetMatchesFreshEngine)
{
    const auto &targets_list = targets::allTargets();
    ASSERT_GE(targets_list.size(), 2u);
    auto first = minic::parseAndCheck(targets_list[0].source);
    auto second = minic::parseAndCheck(targets_list[1].source);

    core::DiffOptions options;
    core::DiffEngine resident(*first, options);
    // Warm the resident executors on the first program, then swing
    // the whole engine — artifacts and executors — to the second.
    (void)resident.runInput(targets_list[0].seeds.front());
    resident.retarget(*second);

    core::DiffEngine fresh(*second, options);
    std::uint64_t nonce = 0;
    for (const auto &seed : targets_list[1].seeds) {
        ++nonce;
        expectSameDiff(resident.runInput(seed, nonce),
                       fresh.runInput(seed, nonce),
                       "retargeted vs fresh");
    }
    // And back again: rebinding must fully restore the first target.
    resident.retarget(*first);
    core::DiffEngine fresh_first(*first, options);
    expectSameDiff(
        resident.runInput(targets_list[0].seeds.front(), 99),
        fresh_first.runInput(targets_list[0].seeds.front(), 99),
        "retargeted back vs fresh");
}

TEST(BatchExecution, FuzzCampaignBatchedOracleIsBitIdentical)
{
    // The fuzzer defers oracle runs into DiffEngine::runBatch flushes
    // when oracleBatch is on; everything the campaign publishes —
    // stats, plot rows, found diffs with their signatures and exec
    // indices — must match the serial oracle byte for byte.
    const auto &target = *targets::findTarget("pktdump");
    auto program = minic::parseAndCheck(target.source);

    const auto campaign = [&](bool batched) {
        fuzz::FuzzOptions options;
        options.maxExecs = 600;
        options.oracleBatch = batched;
        fuzz::Fuzzer fuzzer(*program, target.seeds, options);
        fuzzer.run();
        return std::make_pair(fuzzer.plotData().str(),
                              fuzzer.captureState());
    };
    const auto [serial_plot, serial_state] = campaign(false);
    const auto [batch_plot, batch_state] = campaign(true);

    EXPECT_EQ(batch_plot, serial_plot);
    EXPECT_EQ(batch_state.stats.execs, serial_state.stats.execs);
    EXPECT_EQ(batch_state.stats.compdiffExecs,
              serial_state.stats.compdiffExecs);
    EXPECT_EQ(batch_state.stats.crashes, serial_state.stats.crashes);
    EXPECT_EQ(batch_state.stats.diffs, serial_state.stats.diffs);
    EXPECT_EQ(batch_state.stats.edges, serial_state.stats.edges);
    EXPECT_EQ(batch_state.stats.lastFindExec,
              serial_state.stats.lastFindExec);
    EXPECT_EQ(batch_state.stats.lastDiffExec,
              serial_state.stats.lastDiffExec);
    ASSERT_EQ(batch_state.diffs.size(), serial_state.diffs.size());
    for (std::size_t i = 0; i < serial_state.diffs.size(); i++) {
        EXPECT_EQ(batch_state.diffs[i].input,
                  serial_state.diffs[i].input);
        EXPECT_EQ(batch_state.diffs[i].signature,
                  serial_state.diffs[i].signature);
        EXPECT_EQ(batch_state.diffs[i].execIndex,
                  serial_state.diffs[i].execIndex);
    }
    EXPECT_EQ(batch_state.corpus.size(), serial_state.corpus.size());
    EXPECT_EQ(batch_state.virginMap, serial_state.virginMap);
    EXPECT_EQ(batch_state.perConfigExecs,
              serial_state.perConfigExecs);
}

// ------------------------------------------------------------------
// Satellite: operand-stack hardening on malformed modules.
// ------------------------------------------------------------------

bytecode::Module
handModule(std::vector<bytecode::Insn> code)
{
    bytecode::Module module;
    bytecode::Function fn;
    fn.name = "main";
    fn.index = 0;
    fn.code = std::move(code);
    module.functions.push_back(std::move(fn));
    module.mainIndex = 0;
    return module;
}

vm::ExecutionResult
runMalformed(const bytecode::Module &module, vm::DispatchMode mode,
             std::uint64_t budget = 10'000'000)
{
    vm::VmLimits limits;
    limits.maxInstructions = budget;
    vm::Vm machine(module, kGccO0, limits);
    machine.setDispatchMode(mode);
    return machine.run({});
}

class OperandStackHardening
    : public testing::TestWithParam<vm::DispatchMode>
{};

TEST_P(OperandStackHardening, UnderflowTrapsDeterministically)
{
    // A bare binary op on an empty stack: lowered code can never
    // produce this, and the legacy engine's vector::back() was UB.
    const auto module =
        handModule({{bytecode::Op::AddI, 0, 0, 0, 1}});
    const auto result = runMalformed(module, GetParam());
    EXPECT_EQ(result.termination, vm::Termination::Trap);
    EXPECT_EQ(result.trap, vm::TrapKind::OperandStack);
    EXPECT_EQ(result.exitClass(), "crash:stack");
}

TEST_P(OperandStackHardening, DeepUnderflowInRot3)
{
    // Rot3 needs three slots; give it one.
    const auto module =
        handModule({{bytecode::Op::PushI, 0, 0, 7, 1},
                    {bytecode::Op::Rot3, 0, 0, 0, 2}});
    const auto result = runMalformed(module, GetParam());
    EXPECT_EQ(result.trap, vm::TrapKind::OperandStack);
    EXPECT_EQ(result.exitClass(), "crash:stack");
}

TEST_P(OperandStackHardening, UnboundedPushLoopTrapsNotOom)
{
    // An infinite push loop must hit the operand-slot cap and trap
    // long before the instruction budget or host memory does.
    const auto module =
        handModule({{bytecode::Op::PushI, 0, 0, 1, 1},
                    {bytecode::Op::Jmp, 0, 0, 0, 1}});
    const auto result = runMalformed(module, GetParam());
    EXPECT_EQ(result.termination, vm::Termination::Trap);
    EXPECT_EQ(result.trap, vm::TrapKind::OperandStack);
    EXPECT_EQ(result.exitClass(), "crash:stack");
}

TEST_P(OperandStackHardening, PcRunawayHitsTrapEndSentinel)
{
    // No Halt/Ret: control falls off the end of the function onto
    // the decoded TrapEnd sentinel instead of running past code.end().
    const auto module =
        handModule({{bytecode::Op::Nop, 0, 0, 0, 1}});
    const auto result = runMalformed(module, GetParam());
    EXPECT_EQ(result.termination, vm::Termination::Trap);
    EXPECT_EQ(result.trap, vm::TrapKind::Segv);
    EXPECT_EQ(result.exitClass(), "crash:segv");
}

TEST_P(OperandStackHardening, MalformedRunsAreRepeatable)
{
    const auto module =
        handModule({{bytecode::Op::PushI, 0, 0, 3, 1},
                    {bytecode::Op::MulI, 0, 0, 0, 2}});
    const auto first = runMalformed(module, GetParam());
    const auto second = runMalformed(module, GetParam());
    EXPECT_EQ(resultKey(first), resultKey(second));
    EXPECT_EQ(first.exitClass(), "crash:stack");
}

INSTANTIATE_TEST_SUITE_P(
    BothModes, OperandStackHardening,
    testing::Values(vm::DispatchMode::Switch,
                    vm::DispatchMode::Threaded),
    [](const testing::TestParamInfo<vm::DispatchMode> &info) {
        return vm::dispatchModeName(info.param);
    });

} // namespace
