/**
 * @file
 * Monitor tests: the compdiff_monitor aggregation contract.
 *
 * The monitor is a read-only consumer of session artifacts, so the
 * properties under test are consumer-side: a finished session's
 * aggregate view must equal the campaign result the session itself
 * reported; rendering is byte-stable across repeat scans and across
 * the --jobs the campaign ran with (jobs never changes results, so
 * it must never change the monitor's view of them either); and
 * heartbeat-based health classification must flag killed or wedged
 * shards while still crediting the work their last checkpoint saved.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "minic/parser.hh"
#include "monitor/monitor.hh"
#include "obs/json.hh"
#include "session/checkpoint.hh"
#include "session/heartbeat.hh"
#include "session/session.hh"

namespace
{

using namespace compdiff;
using support::Bytes;

/** The oracle-carrying target from test_session.cc. */
const char *kUnstableTarget = R"(
    int main() {
        if (input_byte(0) == 'U') {
            int l;
            print_int(l);
            probe(42);
        } else {
            print_str("fine");
        }
        return 0;
    }
)";

const std::vector<Bytes> kSeeds = {{'A'}, {'B', 'C'}};

std::string
freshDir(const std::string &leaf)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("compdiff_" + std::string(info->test_suite_name()) + "_" +
         info->name() + "_" + leaf);
    std::filesystem::remove_all(dir);
    return dir.string();
}

/** Run one complete campaign session under dir; returns its result
 *  totals. */
fuzz::FuzzStats
runSession(const std::string &dir, std::size_t shards,
           std::size_t jobs, std::uint64_t maxExecs = 1'200)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    session::SessionConfig config;
    config.dir = dir;
    config.shards = shards;
    config.jobs = jobs;
    config.fuzz.maxExecs = maxExecs;
    session::CampaignSession session(*program, kSeeds, config);
    session.run();
    EXPECT_TRUE(session.completed());
    return session.result().total;
}

TEST(Monitor, FinishedSessionAggregatesMatchCampaignResult)
{
    const std::string dir = freshDir("dir");
    const fuzz::FuzzStats total = runSession(dir, 2, 1);

    monitor::MonitorOptions options;
    const monitor::SessionView view =
        monitor::inspectSession(dir, options);
    ASSERT_TRUE(view.valid);
    EXPECT_TRUE(view.finished);
    EXPECT_EQ(view.shards, 2u);
    EXPECT_EQ(view.execs, total.execs);
    EXPECT_EQ(view.crashes, total.crashes);
    EXPECT_EQ(view.diffs, total.diffs);
    EXPECT_EQ(view.edges, total.edges);
    EXPECT_GT(view.uniqueDiffs, 0u);
    ASSERT_EQ(view.shardViews.size(), 2u);
    for (const auto &shard : view.shardViews) {
        EXPECT_TRUE(shard.hasHeartbeat);
        EXPECT_EQ(shard.health, session::ShardHealth::Complete);
        EXPECT_TRUE(shard.hasCheckpoint);
        EXPECT_EQ(shard.checkpoint.execs, shard.budget);
        EXPECT_GT(shard.eventCount, 0u);
    }

    std::filesystem::remove_all(dir);
}

TEST(Monitor, OutputIsByteStableAcrossScansAndJobs)
{
    // The same campaign run with different worker-thread counts
    // (and under differently named roots, so the labels match).
    const std::string root_a = freshDir("a");
    const std::string root_b = freshDir("b");
    runSession(root_a + "/campaign", 3, 1);
    runSession(root_b + "/campaign", 3, 4);

    monitor::MonitorOptions options;
    options.stable = true;
    const auto scan_a = monitor::scanTree(root_a, options);
    const auto scan_b = monitor::scanTree(root_b, options);
    ASSERT_EQ(scan_a.size(), 1u);
    ASSERT_EQ(scan_b.size(), 1u);

    // jobs=1 vs jobs=4: identical bytes in every format.
    EXPECT_EQ(monitor::renderTable(scan_a, options),
              monitor::renderTable(scan_b, options));
    EXPECT_EQ(monitor::renderJson(scan_a, options),
              monitor::renderJson(scan_b, options));
    EXPECT_EQ(monitor::renderProm(scan_a, options),
              monitor::renderProm(scan_b, options));

    // Repeat scans of one finished tree: identical bytes.
    const auto rescan = monitor::scanTree(root_a, options);
    EXPECT_EQ(monitor::renderTable(scan_a, options),
              monitor::renderTable(rescan, options));
    EXPECT_EQ(monitor::renderJson(scan_a, options),
              monitor::renderJson(rescan, options));
    EXPECT_EQ(monitor::renderProm(scan_a, options),
              monitor::renderProm(rescan, options));

    // The JSON document is actually JSON.
    std::string error;
    EXPECT_TRUE(obs::jsonWellFormed(
        monitor::renderJson(scan_a, options), &error))
        << error;

    std::filesystem::remove_all(root_a);
    std::filesystem::remove_all(root_b);
}

TEST(Monitor, KilledShardIsDeadButKeepsCheckpointStats)
{
    // Stop a campaign at a checkpoint, then forge what a kill -9
    // leaves behind: a heartbeat still claiming "running", stamped in
    // the past, from a pid that no longer exists.
    const std::string dir = freshDir("dir");
    auto program = minic::parseAndCheck(kUnstableTarget);
    session::SessionConfig config;
    config.dir = dir;
    config.fuzz.maxExecs = 1'200;
    config.haltAfterExecs = 400;
    {
        session::CampaignSession cut(*program, kSeeds, config);
        cut.run();
        ASSERT_TRUE(cut.halted());
    }

    session::Heartbeat forged;
    forged.pid = 0x7fffffff; // vanishingly unlikely to be live
    forged.shard = 0;
    forged.phase = session::kPhaseRunning;
    forged.execs = 400;
    forged.budget = 1'200;
    forged.unixTime = 1'000'000.0;
    ASSERT_TRUE(session::writeHeartbeat(
        session::heartbeatPath(dir, 0), forged));

    monitor::MonitorOptions options;
    options.nowUnix = forged.unixTime + 1'000; // past dead-after
    const monitor::SessionView view =
        monitor::inspectSession(dir, options);
    ASSERT_TRUE(view.valid);
    EXPECT_FALSE(view.finished);
    ASSERT_EQ(view.shardViews.size(), 1u);
    const monitor::ShardView &shard = view.shardViews[0];
    EXPECT_EQ(shard.health, session::ShardHealth::Dead);
    // The kill cost the process, not the work: the last checkpoint
    // still reports the saved progress.
    ASSERT_TRUE(shard.hasCheckpoint);
    EXPECT_GT(shard.checkpoint.execs, 0u);
    EXPECT_EQ(view.execs, shard.checkpoint.execs);
    // The event stream agrees with the checkpoint: one divergence
    // signature per diff the fuzzer had saved by the halt.
    EXPECT_EQ(view.uniqueDiffs, shard.checkpoint.diffs);

    std::filesystem::remove_all(dir);
}

TEST(Monitor, HeartbeatClassification)
{
    session::HealthPolicy policy; // stall 30s, dead 300s
    session::Heartbeat beat;
    beat.pid = static_cast<std::uint64_t>(::getpid()); // alive
    beat.phase = session::kPhaseRunning;
    beat.unixTime = 10'000.0;

    using session::ShardHealth;
    // Fresh + live pid: running.
    EXPECT_EQ(session::classifyHeartbeat(beat, 10'001, policy),
              ShardHealth::Running);
    // Aging past stall-after degrades to stalled...
    EXPECT_EQ(session::classifyHeartbeat(beat, 10'060, policy),
              ShardHealth::Stalled);
    // ...and past dead-after to dead, live pid or not.
    EXPECT_EQ(session::classifyHeartbeat(beat, 10'500, policy),
              ShardHealth::Dead);
    // A vanished pid is dead immediately.
    session::Heartbeat gone = beat;
    gone.pid = 0x7fffffff;
    EXPECT_EQ(session::classifyHeartbeat(gone, 10'001, policy),
              ShardHealth::Dead);
    // Unless pid probing is off (foreign-host session trees): then
    // only age matters.
    session::HealthPolicy no_pid = policy;
    no_pid.checkPid = false;
    EXPECT_EQ(session::classifyHeartbeat(gone, 10'001, no_pid),
              ShardHealth::Running);
    // Terminal phases win outright, however stale the file is.
    session::Heartbeat done = gone;
    done.phase = session::kPhaseComplete;
    EXPECT_EQ(session::classifyHeartbeat(done, 99'999, policy),
              ShardHealth::Complete);
    session::Heartbeat halted = gone;
    halted.phase = session::kPhaseHalted;
    EXPECT_EQ(session::classifyHeartbeat(halted, 99'999, policy),
              ShardHealth::Halted);
}

TEST(Monitor, HeartbeatRoundTrip)
{
    session::Heartbeat beat;
    beat.pid = 4242;
    beat.shard = 3;
    beat.phase = session::kPhaseRunning;
    beat.execs = 1'000;
    beat.budget = 5'000;
    beat.corpus = 17;
    beat.diffs = 4;
    beat.crashes = 1;
    beat.unixTime = 1'700'000'000.125;
    beat.runSecs = 12.5;
    const std::string text = session::renderHeartbeat(beat);
    const session::Heartbeat back = session::parseHeartbeat(text);
    EXPECT_EQ(back.pid, beat.pid);
    EXPECT_EQ(back.shard, beat.shard);
    EXPECT_EQ(back.phase, beat.phase);
    EXPECT_EQ(back.execs, beat.execs);
    EXPECT_EQ(back.budget, beat.budget);
    EXPECT_EQ(back.corpus, beat.corpus);
    EXPECT_EQ(back.diffs, beat.diffs);
    EXPECT_EQ(back.crashes, beat.crashes);
    EXPECT_DOUBLE_EQ(back.unixTime, beat.unixTime);
    EXPECT_DOUBLE_EQ(back.runSecs, beat.runSecs);
    EXPECT_EQ(session::renderHeartbeat(back), text);
}

TEST(Monitor, FindSessionDirsWalksTheTree)
{
    const std::string root = freshDir("root");
    runSession(root + "/targets/pkt", 1, 1, 400);
    runSession(root + "/targets/img", 1, 1, 400);
    // Decoys: plain directories without a MANIFEST are skipped.
    std::filesystem::create_directories(root + "/notes/empty");

    const auto dirs = monitor::findSessionDirs(root);
    ASSERT_EQ(dirs.size(), 2u);
    EXPECT_EQ(dirs[0], root + "/targets/img");
    EXPECT_EQ(dirs[1], root + "/targets/pkt");

    // A session dir given directly is found as itself.
    const auto self = monitor::findSessionDirs(root + "/targets/pkt");
    ASSERT_EQ(self.size(), 1u);

    // A nonexistent root is empty, not fatal.
    EXPECT_TRUE(
        monitor::findSessionDirs(root + "/missing").empty());

    std::filesystem::remove_all(root);
}

} // namespace
