/**
 * @file
 * Tests for the sanitizer-checking subsystem (DESIGN.md §14): the
 * UB-certifying reference interpreter, the flipped FN/FP oracle, the
 * finding reduction bundles, and the sancheck campaign mode's
 * determinism contract (jobs-invariance, halt+resume bit-identity).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>

#include "minic/parser.hh"
#include "refinterp/refinterp.hh"
#include "sancheck/report.hh"
#include "sancheck/sancheck.hh"
#include "sanitizers/sanitizers.hh"
#include "session/checkpoint.hh"
#include "support/logging.hh"
#include "session/serial.hh"
#include "session/session.hh"

namespace
{

using namespace compdiff;
using compiler::Sanitizer;
using refinterp::UbKind;
using sancheck::FindingKind;
using sancheck::SanFinding;
using support::Bytes;

/** Certify one input against an inline program. */
refinterp::CertifiedRun
certify(std::string_view source, const Bytes &input = {})
{
    auto program = minic::parseAndCheck(source);
    refinterp::RefInterpreter interp(*program);
    return interp.certify(input);
}

/** Fresh scratch directory under the system temp dir. */
std::string
freshDir(const std::string &leaf)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("compdiff_" + std::string(info->test_suite_name()) + "_" +
         info->name() + "_" + leaf);
    std::filesystem::remove_all(dir);
    return dir.string();
}

// ---------------- certification edge cases ----------------

TEST(Certify, OversizedShiftCount)
{
    const auto run = certify(R"(
        int main() {
            int n = 30 + input_size();
            return 1 << (n + 10);
        }
    )");
    ASSERT_FALSE(run.certificates.empty());
    EXPECT_EQ(run.certificates.front().kind,
              UbKind::OversizedShift);
    EXPECT_EQ(run.certificates.front().function, "main");
}

TEST(Certify, NegativeShiftCount)
{
    // read_byte() at EOF yields -1: a negative shift count is the
    // same UB class as an oversized one.
    const auto run = certify(R"(
        int main() {
            int n = read_byte();
            return 1 << n;
        }
    )");
    ASSERT_FALSE(run.certificates.empty());
    EXPECT_EQ(run.certificates.front().kind,
              UbKind::OversizedShift);
}

TEST(Certify, InBoundsShiftIsClean)
{
    const auto run = certify(R"(
        int main() {
            int n = 20 + input_size();
            return 1 << n;
        }
    )");
    EXPECT_TRUE(run.certificates.empty());
    EXPECT_EQ(run.result.termination, vm::Termination::Exit);
}

TEST(Certify, UninitStackRead)
{
    const auto run = certify(R"(
        int main() {
            int l;
            print_int(l);
            return 0;
        }
    )");
    ASSERT_FALSE(run.certificates.empty());
    EXPECT_EQ(run.certificates.front().kind, UbKind::UninitRead);
}

TEST(Certify, PartiallyInitStructPadding)
{
    // Storing to one member leaves the neighbor's bytes never
    // written; a branch on them must certify, exactly the byte-
    // granular shadow the classifier relies on.
    const auto run = certify(R"(
        struct pair { int a; int b; };
        int main() {
            struct pair p;
            p.a = 1;
            if (p.b > 0) { print_str("pos"); }
            return p.a;
        }
    )");
    ASSERT_FALSE(run.certificates.empty());
    EXPECT_EQ(run.certificates.front().kind, UbKind::UninitRead);
}

TEST(Certify, OutOfBoundsPastAsanRedzone)
{
    // The sanlab station_heap_far shape: 48 bytes past a 16-byte
    // chunk lands beyond ASan's redzone on the neighboring live
    // object, but object-granular bounds still certify it.
    const auto run = certify(R"(
        int main() {
            char *p = malloc(16L);
            char *q = malloc(16L);
            q[0] = (char)77;
            int v = p[48 + input_size()];
            free(q);
            free(p);
            return v;
        }
    )");
    ASSERT_FALSE(run.certificates.empty());
    EXPECT_EQ(run.certificates.front().kind, UbKind::OutOfBounds);
}

TEST(Certify, SignedOverflowCertificateNamesSite)
{
    const auto run = certify(R"(
        int main() {
            int big = 2147483647 - input_size();
            return big + 1;
        }
    )");
    ASSERT_FALSE(run.certificates.empty());
    const refinterp::UbCertificate &cert = run.certificates.front();
    EXPECT_EQ(cert.kind, UbKind::SignedOverflow);
    EXPECT_EQ(cert.function, "main");
    EXPECT_GT(cert.line, 0u);
    EXPECT_NE(cert.detail.find("2147483647"), std::string::npos);
    EXPECT_NE(cert.str().find("signed-overflow"),
              std::string::npos);
}

TEST(Certify, CertificatesCappedNotUnbounded)
{
    const auto run = certify(R"(
        int main() {
            int big = 2147483647;
            int acc = 0;
            for (int i = 1; i < 100; i += 1) { acc += big + i; }
            return acc;
        }
    )");
    EXPECT_EQ(run.certificates.size(),
              refinterp::CertifiedRun::kMaxCertificates);
}

TEST(Certify, ResultBitIdenticalToPlainRun)
{
    // Certification is out-of-band evidence: the observable result
    // must match a plain run() byte for byte, for a UB-free and a
    // UB-bearing program alike.
    for (const char *source : {
             "int main() { print_str(\"ok\"); return input_size(); }",
             "int main() { int l; print_int(l); return 0; }",
         }) {
        auto program = minic::parseAndCheck(source);
        refinterp::RefInterpreter interp(*program);
        const Bytes input = {'x', 'y'};
        const vm::ExecutionResult plain = interp.run(input);
        const refinterp::CertifiedRun certified =
            interp.certify(input);
        EXPECT_EQ(certified.result.output, plain.output);
        EXPECT_EQ(certified.result.exitCode, plain.exitCode);
        EXPECT_EQ(certified.result.termination, plain.termination);
        EXPECT_EQ(certified.result.outputHash(),
                  plain.outputHash());
    }
}

// ---------------- classification ----------------

TEST(SancheckClassify, CoverageScopesPerSanitizer)
{
    EXPECT_TRUE(sancheck::sanitizerCovers(Sanitizer::ASan,
                                          UbKind::OutOfBounds));
    EXPECT_FALSE(sancheck::sanitizerCovers(Sanitizer::ASan,
                                           UbKind::SignedOverflow));
    EXPECT_TRUE(sancheck::sanitizerCovers(Sanitizer::UBSan,
                                          UbKind::OversizedShift));
    EXPECT_FALSE(sancheck::sanitizerCovers(Sanitizer::UBSan,
                                           UbKind::UninitRead));
    EXPECT_TRUE(sancheck::sanitizerCovers(Sanitizer::MSan,
                                          UbKind::UninitRead));
    EXPECT_FALSE(sancheck::sanitizerCovers(Sanitizer::MSan,
                                           UbKind::OutOfBounds));
    EXPECT_FALSE(sancheck::sanitizerCovers(Sanitizer::None,
                                           UbKind::OutOfBounds));
}

refinterp::CertifiedRun
certifiedOverflow()
{
    refinterp::CertifiedRun run;
    run.result.termination = vm::Termination::Exit;
    refinterp::UbCertificate cert;
    cert.kind = UbKind::SignedOverflow;
    cert.function = "main";
    cert.line = 7;
    cert.detail = "2147483647 + 1";
    run.certificates.push_back(cert);
    return run;
}

TEST(SancheckClassify, SilentSanitizerIsFalseNegative)
{
    vm::ExecutionResult sanitized; // clean exit, no reports
    SanFinding finding;
    ASSERT_TRUE(sancheck::classifyOne(certifiedOverflow(),
                                      "clang-O2+ubsan",
                                      Sanitizer::UBSan, sanitized,
                                      &finding));
    EXPECT_EQ(finding.kind, FindingKind::FalseNegative);
    EXPECT_EQ(finding.ubKind, UbKind::SignedOverflow);
    EXPECT_EQ(finding.signature(),
              "san:clang-O2+ubsan:signed-overflow:FN");
    EXPECT_NE(finding.str().find("main:7"), std::string::npos);
}

TEST(SancheckClassify, MatchingReportIsDetection)
{
    vm::ExecutionResult sanitized;
    sanitized.termination = vm::Termination::SanitizerAbort;
    sanitized.sanReports.push_back(
        {vm::SanReport::Tool::UBSan, "signed-integer-overflow", 7});
    SanFinding finding;
    EXPECT_FALSE(sancheck::classifyOne(certifiedOverflow(),
                                       "clang-O2+ubsan",
                                       Sanitizer::UBSan, sanitized,
                                       &finding));
}

TEST(SancheckClassify, OutOfScopeCertIsNotCharged)
{
    // MSan staying silent about a signed overflow is by design.
    vm::ExecutionResult sanitized;
    SanFinding finding;
    EXPECT_FALSE(sancheck::classifyOne(certifiedOverflow(),
                                       "clang-O1+msan",
                                       Sanitizer::MSan, sanitized,
                                       &finding));
}

TEST(SancheckClassify, AbortOnUnrelatedReportIsNotSilence)
{
    // The sanitizer stopped at an earlier, different report: the
    // run never reached the certified site, so charging an FN for
    // it would be bogus.
    vm::ExecutionResult sanitized;
    sanitized.termination = vm::Termination::SanitizerAbort;
    sanitized.sanReports.push_back(
        {vm::SanReport::Tool::UBSan, "shift-out-of-bounds", 3});
    SanFinding finding;
    EXPECT_FALSE(sancheck::classifyOne(certifiedOverflow(),
                                       "clang-O2+ubsan",
                                       Sanitizer::UBSan, sanitized,
                                       &finding));
}

TEST(SancheckClassify, CrashBeforeVerdictIsNotSilence)
{
    vm::ExecutionResult sanitized;
    sanitized.termination = vm::Termination::Trap;
    sanitized.trap = vm::TrapKind::Segv;
    SanFinding finding;
    EXPECT_FALSE(sancheck::classifyOne(certifiedOverflow(),
                                       "clang-O2+ubsan",
                                       Sanitizer::UBSan, sanitized,
                                       &finding));
}

TEST(SancheckClassify, TimeoutEitherSideYieldsNothing)
{
    SanFinding finding;
    vm::ExecutionResult slow;
    slow.termination = vm::Termination::BudgetExhausted;
    EXPECT_FALSE(sancheck::classifyOne(certifiedOverflow(),
                                       "clang-O2+ubsan",
                                       Sanitizer::UBSan, slow,
                                       &finding));
    refinterp::CertifiedRun ref_slow = certifiedOverflow();
    ref_slow.result.termination = vm::Termination::BudgetExhausted;
    vm::ExecutionResult sanitized;
    EXPECT_FALSE(sancheck::classifyOne(ref_slow, "clang-O2+ubsan",
                                       Sanitizer::UBSan, sanitized,
                                       &finding));
}

TEST(SancheckClassify, CertifiedCleanReportIsFalsePositive)
{
    refinterp::CertifiedRun clean;
    clean.result.termination = vm::Termination::Exit;
    vm::ExecutionResult sanitized;
    sanitized.termination = vm::Termination::SanitizerAbort;
    sanitized.sanReports.push_back(
        {vm::SanReport::Tool::UBSan, "signed-integer-overflow", 9});
    SanFinding finding;
    ASSERT_TRUE(sancheck::classifyOne(clean, "clang-O2+ubsan",
                                      Sanitizer::UBSan, sanitized,
                                      &finding));
    EXPECT_EQ(finding.kind, FindingKind::FalsePositive);
    EXPECT_EQ(finding.signature(),
              "san:clang-O2+ubsan:signed-overflow:FP");
    EXPECT_EQ(finding.reportLine, 9u);
}

TEST(SancheckClassify, AllocatorReportOutsideTaxonomySkipped)
{
    refinterp::CertifiedRun clean;
    clean.result.termination = vm::Termination::Exit;
    vm::ExecutionResult sanitized;
    sanitized.sanReports.push_back(
        {vm::SanReport::Tool::ASan, "double-free", 4});
    SanFinding finding;
    EXPECT_FALSE(sancheck::classifyOne(clean, "clang-O1+asan",
                                       Sanitizer::ASan, sanitized,
                                       &finding));
}

TEST(SancheckClassify, TrappingReferenceRunProvesNoFp)
{
    refinterp::CertifiedRun trapped;
    trapped.result.termination = vm::Termination::Trap;
    vm::ExecutionResult sanitized;
    sanitized.sanReports.push_back(
        {vm::SanReport::Tool::ASan, "heap-buffer-overflow", 2});
    SanFinding finding;
    EXPECT_FALSE(sancheck::classifyOne(trapped, "clang-O1+asan",
                                       Sanitizer::ASan, sanitized,
                                       &finding));
}

TEST(SancheckClassify, SignatureHashMatchesSignature)
{
    SanFinding a;
    a.implId = "clang-O1+msan";
    a.ubKind = UbKind::UninitRead;
    a.kind = FindingKind::FalseNegative;
    SanFinding b = a;
    EXPECT_EQ(a.signatureHash(), b.signatureHash());
    b.kind = FindingKind::FalsePositive;
    EXPECT_NE(a.signatureHash(), b.signatureHash());
    EXPECT_EQ(a.signature(), "san:clang-O1+msan:uninit-read:FN");
}

// ---------------- oracle + sanlab sweep ----------------

/** The four seeded defects the subsystem exists to catch. */
const std::set<std::string> kSeededSignatures = {
    "san:clang-O1+asan:out-of-bounds:FN",
    "san:clang-O2+ubsan:signed-overflow:FN",
    "san:clang-O2+ubsan:signed-overflow:FP",
    "san:clang-O1+msan:uninit-read:FN",
};

std::set<std::string>
sweepSignatures()
{
    auto program = minic::parseAndCheck(sancheck::sanlabSource());
    sancheck::SanCheckOracle oracle(
        *program, sancheck::defaultImplementations());
    std::set<std::string> signatures;
    for (const Bytes &seed : sancheck::sanlabSeeds()) {
        for (const SanFinding &finding :
             oracle.runInput(seed).findings)
            signatures.insert(finding.signature());
    }
    return signatures;
}

TEST(Sancheck, SanlabSweepFindsExactlySeededDefects)
{
    EXPECT_EQ(sweepSignatures(), kSeededSignatures);
}

TEST(Sancheck, OracleConfigIdsLeadWithRef)
{
    auto program = minic::parseAndCheck(sancheck::sanlabSource());
    sancheck::SanCheckOracle oracle(
        *program, sancheck::defaultImplementations());
    const auto ids = oracle.configIds();
    ASSERT_EQ(ids.size(), 5u);
    EXPECT_EQ(ids.front(), "ref");
    EXPECT_EQ(ids[1], "clang-O1+asan");
}

TEST(Sancheck, ValidateRejectsUnsanitizedImpls)
{
    EXPECT_THROW(sancheck::validateImpls(
                     core::ImplementationRegistry::global().parse(
                         "clang:-O1,clang:-O2")),
                 support::FatalError);
}

TEST(Sancheck, ReduceBundlesNameSiteAndSanitizer)
{
    auto program = minic::parseAndCheck(sancheck::sanlabSource());
    auto impls = sancheck::defaultImplementations();
    sancheck::SanCheckOracle oracle(*program, impls);

    // The MSan print-blind-spot seed.
    const Bytes witness = {1, 0};
    const auto outcome = oracle.runInput(witness);
    ASSERT_FALSE(outcome.findings.empty());
    const SanFinding &finding = outcome.findings.front();
    ASSERT_EQ(finding.signature(),
              "san:clang-O1+msan:uninit-read:FN");

    const std::string out_dir = freshDir("bundles");
    sancheck::FindingReduceOptions options;
    options.candidateBudget = 1024;
    options.reportsDir = out_dir;
    const auto reports = sancheck::reduceFindings(
        *program, impls, {{witness, finding}}, options);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(reports.front().reproduced);
    EXPECT_LE(reports.front().program.size(),
              std::string(sancheck::sanlabSource()).size());

    // The bundle's report.md names the certified UB site and the
    // silent sanitizer — the acceptance-criteria shape.
    char hex[32];
    std::snprintf(hex, sizeof hex, "sig-%016llx",
                  static_cast<unsigned long long>(
                      finding.signatureHash()));
    const auto report_md = session::readTextFile(
        out_dir + "/" + hex + "/report.md");
    ASSERT_TRUE(report_md.has_value());
    EXPECT_NE(report_md->find("uninit-read"), std::string::npos);
    EXPECT_NE(report_md->find("clang-O1+msan"), std::string::npos);
    EXPECT_NE(report_md->find("FN"), std::string::npos);
    for (const char *leaf :
         {"program.mc", "input.bin", "witness.bin"}) {
        EXPECT_TRUE(std::filesystem::exists(
            out_dir + "/" + hex + "/" + leaf))
            << leaf;
    }
    std::filesystem::remove_all(out_dir);
}

// ---------------- campaign mode ----------------

session::SessionConfig
sancheckConfig(const std::string &dir, std::size_t shards,
               std::size_t jobs, std::uint64_t max_execs)
{
    session::SessionConfig config;
    config.dir = dir;
    config.shards = shards;
    config.jobs = jobs;
    config.fuzz.sancheckMode = true;
    config.fuzz.maxExecs = max_execs;
    return config;
}

std::set<std::string>
campaignSignatures(const fuzz::ShardedResult &result)
{
    std::set<std::string> signatures;
    for (const auto &diff : result.diffs)
        signatures.insert(diff.sanFinding.signature());
    return signatures;
}

TEST(SancheckCampaign, DiscoversSeededDefects)
{
    auto program = minic::parseAndCheck(sancheck::sanlabSource());
    session::SessionConfig config =
        sancheckConfig(/*dir=*/"", /*shards=*/2, /*jobs=*/2,
                       /*max_execs=*/3'000);
    session::CampaignSession session(*program,
                                     sancheck::sanlabSeeds(),
                                     config);
    const fuzz::ShardedResult &result = session.run();
    ASSERT_TRUE(session.completed());
    EXPECT_EQ(campaignSignatures(result), kSeededSignatures);
}

TEST(SancheckCampaign, JobsNeverChangeResults)
{
    auto program = minic::parseAndCheck(sancheck::sanlabSource());
    std::set<std::string> baseline;
    std::uint64_t baseline_execs = 0;
    for (const std::size_t jobs : {1u, 3u}) {
        session::SessionConfig config =
            sancheckConfig("", /*shards=*/2, jobs,
                           /*max_execs=*/2'000);
        session::CampaignSession session(
            *program, sancheck::sanlabSeeds(), config);
        const fuzz::ShardedResult &result = session.run();
        ASSERT_TRUE(session.completed());
        if (jobs == 1) {
            baseline = campaignSignatures(result);
            baseline_execs = result.total.execs;
            continue;
        }
        EXPECT_EQ(campaignSignatures(result), baseline);
        EXPECT_EQ(result.total.execs, baseline_execs);
    }
}

TEST(SancheckCampaign, HaltResumeBitIdentical)
{
    auto program = minic::parseAndCheck(sancheck::sanlabSource());
    const auto seeds = sancheck::sanlabSeeds();
    const std::string dir_full = freshDir("full");
    const std::string dir_cut = freshDir("cut");
    const std::size_t shards = 2;
    const std::uint64_t max_execs = 2'000;

    session::CampaignSession full(
        *program, seeds,
        sancheckConfig(dir_full, shards, /*jobs=*/2, max_execs));
    full.run();
    ASSERT_TRUE(full.completed());

    // Kill at the half-budget safe point, then resume with a
    // different thread count — results may not change.
    session::SessionConfig cut_config =
        sancheckConfig(dir_cut, shards, /*jobs=*/2, max_execs);
    cut_config.haltAfterExecs = max_execs / (2 * shards);
    {
        session::CampaignSession cut(*program, seeds, cut_config);
        cut.run();
        ASSERT_TRUE(cut.halted());
    }
    session::SessionConfig resume_config =
        sancheckConfig(dir_cut, shards, /*jobs=*/1, max_execs);
    resume_config.resume = true;
    session::CampaignSession resumed(*program, seeds,
                                     resume_config);
    resumed.run();
    ASSERT_TRUE(resumed.completed());
    EXPECT_EQ(resumed.restarts(), 1u);

    EXPECT_EQ(campaignSignatures(full.result()),
              campaignSignatures(resumed.result()));
    EXPECT_EQ(full.result().total.execs,
              resumed.result().total.execs);

    // Per-shard checkpoints and event journals (which carry the
    // san_finding events) are byte-identical to the uninterrupted
    // run's.
    for (std::size_t s = 0; s < shards; s++) {
        const std::string journal =
            "/shard-" + std::to_string(s) + ".journal";
        EXPECT_EQ(session::readLastRecord(dir_full + journal),
                  session::readLastRecord(dir_cut + journal))
            << journal;
        const std::string leaf =
            "/shard-" + std::to_string(s) + ".events.jsonl";
        const auto events_full =
            session::readTextFile(dir_full + leaf);
        const auto events_cut =
            session::readTextFile(dir_cut + leaf);
        ASSERT_TRUE(events_full && events_cut) << leaf;
        EXPECT_EQ(*events_full, *events_cut) << leaf;
        EXPECT_NE(events_full->find("\"kind\":\"san_finding\""),
                  std::string::npos)
            << leaf;
    }

    // The MANIFEST records the mode, so the monitor and a resuming
    // process can tell a sancheck session from a diff session.
    const auto manifest =
        session::readTextFile(dir_cut + "/MANIFEST");
    ASSERT_TRUE(manifest.has_value());
    EXPECT_NE(manifest->find("mode : sancheck"),
              std::string::npos);

    std::filesystem::remove_all(dir_full);
    std::filesystem::remove_all(dir_cut);
}

} // namespace
