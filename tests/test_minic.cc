/**
 * @file
 * Unit tests for the MiniC frontend: lexer, parser, types, sema.
 */

#include <gtest/gtest.h>

#include "minic/lexer.hh"
#include "minic/parser.hh"
#include "minic/sema.hh"
#include "support/diagnostics.hh"

namespace
{

using namespace compdiff::minic;
using compdiff::support::CompileError;
using compdiff::support::DiagnosticEngine;

std::vector<Token>
lex(std::string_view source)
{
    DiagnosticEngine diags;
    Lexer lexer(source, diags);
    auto tokens = lexer.lexAll();
    EXPECT_FALSE(diags.hasErrors()) << diags.str();
    return tokens;
}

TEST(Lexer, BasicTokens)
{
    const auto tokens = lex("int x = 42; // comment\nx += 0x1f;");
    ASSERT_GE(tokens.size(), 9u);
    EXPECT_EQ(tokens[0].kind, TokKind::KwInt);
    EXPECT_EQ(tokens[1].kind, TokKind::Identifier);
    EXPECT_EQ(tokens[1].text, "x");
    EXPECT_EQ(tokens[2].kind, TokKind::Assign);
    EXPECT_EQ(tokens[3].intValue, 42);
    EXPECT_EQ(tokens[6].kind, TokKind::PlusAssign);
    EXPECT_EQ(tokens[7].intValue, 31);
}

TEST(Lexer, SuffixesAndLiterals)
{
    const auto tokens = lex("1L 2U 3UL 1.5 'a' '\\n' \"hi\\t\"");
    EXPECT_TRUE(tokens[0].isLong);
    EXPECT_TRUE(tokens[1].isUnsigned);
    EXPECT_TRUE(tokens[2].isLong && tokens[2].isUnsigned);
    EXPECT_DOUBLE_EQ(tokens[3].floatValue, 1.5);
    EXPECT_EQ(tokens[4].intValue, 'a');
    EXPECT_EQ(tokens[5].intValue, '\n');
    EXPECT_EQ(tokens[6].text, "hi\t");
}

TEST(Lexer, OperatorsDisambiguated)
{
    const auto tokens = lex("<< <<= < <= -> - -= >> >>=");
    EXPECT_EQ(tokens[0].kind, TokKind::Shl);
    EXPECT_EQ(tokens[1].kind, TokKind::ShlAssign);
    EXPECT_EQ(tokens[2].kind, TokKind::Less);
    EXPECT_EQ(tokens[3].kind, TokKind::LessEq);
    EXPECT_EQ(tokens[4].kind, TokKind::Arrow);
    EXPECT_EQ(tokens[5].kind, TokKind::Minus);
    EXPECT_EQ(tokens[6].kind, TokKind::MinusAssign);
    EXPECT_EQ(tokens[7].kind, TokKind::Shr);
    EXPECT_EQ(tokens[8].kind, TokKind::ShrAssign);
}

TEST(Lexer, TracksLines)
{
    const auto tokens = lex("int\nx\n;");
    EXPECT_EQ(tokens[0].loc.line, 1u);
    EXPECT_EQ(tokens[1].loc.line, 2u);
    EXPECT_EQ(tokens[2].loc.line, 3u);
}

TEST(Parser, FunctionAndGlobal)
{
    auto program = parseAndCheck(R"(
        int g = 7;
        int add(int a, int b) { return a + b; }
        int main() { return add(g, 2); }
    )");
    ASSERT_EQ(program->functions.size(), 2u);
    ASSERT_EQ(program->globals.size(), 1u);
    EXPECT_EQ(program->functions[0]->name, "add");
    EXPECT_EQ(program->functions[0]->params.size(), 2u);
    EXPECT_EQ(program->globals[0]->globalId, 0);
}

TEST(Parser, Structs)
{
    auto program = parseAndCheck(R"(
        struct point { int x; int y; char tag[8]; };
        int main() {
            struct point p;
            p.x = 1;
            p.y = 2;
            return p.x + p.y;
        }
    )");
    const Type *point = program->types->findStruct("point");
    ASSERT_NE(point, nullptr);
    EXPECT_EQ(point->size(), 16u);
    EXPECT_EQ(point->structInfo()->field("y")->offset, 4u);
    EXPECT_EQ(point->structInfo()->field("tag")->offset, 8u);
}

TEST(Parser, PrecedenceShape)
{
    auto program = parseAndCheck(
        "int main() { return 1 + 2 * 3 < 7 && 1; }");
    const auto &ret = static_cast<const ReturnStmt &>(
        *program->functions[0]->body->body[0]);
    const auto &top = static_cast<const BinaryExpr &>(*ret.value);
    EXPECT_EQ(top.op, BinaryOp::LogAnd);
    const auto &cmp = static_cast<const BinaryExpr &>(*top.lhs);
    EXPECT_EQ(cmp.op, BinaryOp::Lt);
}

TEST(Parser, SyntaxErrorThrows)
{
    EXPECT_THROW(parseAndCheck("int main( { return 0; }"),
                 CompileError);
    EXPECT_THROW(parseAndCheck("int main() { return 0 }"),
                 CompileError);
}

TEST(Sema, TypesExpressions)
{
    auto program = parseAndCheck(R"(
        int main() {
            int a = 1;
            long b = 2L;
            char c = 'x';
            double d = 1.5;
            uint u = 3U;
            return (int)(a + b + c + u + (long)d);
        }
    )");
    EXPECT_EQ(program->functions[0]->locals.size(), 5u);
}

TEST(Sema, RejectsErrors)
{
    // Undeclared identifier.
    EXPECT_THROW(parseAndCheck("int main() { return zz; }"),
                 CompileError);
    // Assignment to rvalue.
    EXPECT_THROW(parseAndCheck("int main() { 1 = 2; return 0; }"),
                 CompileError);
    // Break outside loop.
    EXPECT_THROW(parseAndCheck("int main() { break; return 0; }"),
                 CompileError);
    // Bad member.
    EXPECT_THROW(parseAndCheck(R"(
        struct s { int a; };
        int main() { struct s v; return v.b; }
    )"),
                 CompileError);
    // Pointer/integer comparison without a null literal.
    EXPECT_THROW(parseAndCheck(R"(
        int main(){ int x; int *p; if (p < 3) { x = 1; } return 0; }
    )"),
                 CompileError);
}

TEST(Sema, RejectsAggregateByValue)
{
    // Struct parameters, struct returns, and struct assignment are
    // all pointer-only territory in MiniC.
    EXPECT_THROW(parseAndCheck(R"(
        struct s { int a; };
        int use(struct s v) { return v.a; }
        int main() { return 0; }
    )"),
                 CompileError);
    EXPECT_THROW(parseAndCheck(R"(
        struct s { int a; };
        struct s make() { struct s v; return v; }
        int main() { return 0; }
    )"),
                 CompileError);
    EXPECT_THROW(parseAndCheck(R"(
        struct s { int a; };
        int main() {
            struct s x;
            struct s y;
            x = y;
            return 0;
        }
    )"),
                 CompileError);
    // Pointer-based struct use stays fine.
    EXPECT_NO_THROW(parseAndCheck(R"(
        struct s { int a; };
        int use(struct s *v) { return v->a; }
        int main() { struct s x; x.a = 3; return use(&x); }
    )"));
}

TEST(Sema, ArityMismatchIsAWarningNotError)
{
    // Pre-prototype-C semantics: required for CWE-685 tests.
    auto program = parseAndCheck(R"(
        int two(int a, int b) { return a + b; }
        int main() { return two(1); }
    )");
    ASSERT_EQ(program->functions.size(), 2u);
}

TEST(Sema, PointerRules)
{
    auto program = parseAndCheck(R"(
        int main() {
            int a[4];
            int *p = a;
            int *q = p + 2;
            long d = q - p;
            if (p < q) { return (int)d; }
            return *q;
        }
    )");
    ASSERT_NE(program->findFunction("main"), nullptr);
}

TEST(Sema, LocalIdsAssignedInOrder)
{
    auto program = parseAndCheck(R"(
        int f(int p0, int p1) {
            int l2 = 0;
            { int l3 = 1; l2 = l3; }
            return l2 + p0 + p1;
        }
        int main() { return f(1, 2); }
    )");
    const auto &f = *program->functions[0];
    ASSERT_EQ(f.locals.size(), 4u);
    EXPECT_TRUE(f.locals[0].isParam);
    EXPECT_TRUE(f.locals[1].isParam);
    EXPECT_EQ(f.locals[2].name, "l2");
    EXPECT_EQ(f.locals[3].name, "l3");
}

TEST(Ast, CloneIsDeepAndAnnotated)
{
    auto program = parseAndCheck(R"(
        int main() { int a = 3; return a * 2; }
    )");
    auto clone = program->functions[0]->clone();
    // Mutating the clone must not affect the original.
    clone->body->body.clear();
    EXPECT_EQ(program->functions[0]->body->body.size(), 2u);
    EXPECT_EQ(clone->locals.size(),
              program->functions[0]->locals.size());
}

TEST(Types, InterningAndLayout)
{
    TypeContext types;
    const Type *p1 = types.pointerTo(types.intType());
    const Type *p2 = types.pointerTo(types.intType());
    EXPECT_EQ(p1, p2);
    const Type *arr = types.arrayOf(types.charType(), 10);
    EXPECT_EQ(arr->size(), 10u);
    EXPECT_EQ(types.arrayOf(types.charType(), 10), arr);
    EXPECT_EQ(p1->size(), 8u);
    EXPECT_TRUE(types.longType()->isSigned());
    EXPECT_FALSE(types.ulongType()->isSigned());
}

} // namespace
