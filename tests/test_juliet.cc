/**
 * @file
 * Tests for the Juliet-style suite: every generated case must
 * compile; good variants must be clean for the dynamic tools (the
 * zero-false-positive property); representative bad variants must be
 * detected by the intended tools.
 */

#include <gtest/gtest.h>

#include "compdiff/engine.hh"
#include "juliet/evaluate.hh"
#include "juliet/suite.hh"
#include "minic/parser.hh"
#include "sanitizers/sanitizers.hh"

namespace
{

using namespace compdiff;
using juliet::JulietCase;
using juliet::SuiteBuilder;

// A tiny scale keeps the exhaustive tests fast while still touching
// all five flow variants of every CWE.
SuiteBuilder
smallBuilder()
{
    return SuiteBuilder(0.0, 42); // max(5, 0) = 5 cases per CWE
}

TEST(JulietSuite, CatalogMatchesTable2)
{
    const auto &catalog = juliet::cweCatalog();
    ASSERT_EQ(catalog.size(), 20u);
    int total = 0;
    for (const auto &info : catalog)
        total += info.paperCount;
    EXPECT_EQ(total, 18142); // Table 2 bottom line
}

TEST(JulietSuite, AllCasesCompile)
{
    for (const auto &test : smallBuilder().buildAll()) {
        EXPECT_NO_THROW({
            auto bad = minic::parseAndCheck(test.badSource);
            auto good = minic::parseAndCheck(test.goodSource);
        }) << test.id << "\n"
           << test.badSource;
    }
}

TEST(JulietSuite, CountsScaleWithFactor)
{
    SuiteBuilder big(1.0 / 16, 1);
    EXPECT_EQ(big.countFor(122), 3575u / 16);
    EXPECT_EQ(big.countFor(475), 5u); // floor is 5
    SuiteBuilder small(0.0, 1);
    EXPECT_EQ(small.countFor(121), 5u);
}

TEST(JulietSuite, DeterministicGeneration)
{
    auto a = SuiteBuilder(0.0, 7).buildCwe(457);
    auto b = SuiteBuilder(0.0, 7).buildCwe(457);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].badSource, b[i].badSource);
        EXPECT_EQ(a[i].goodSource, b[i].goodSource);
    }
}

// The zero-false-positive property (paper Finding 5): on good
// variants, CompDiff must never report and sanitizers must stay
// silent.
TEST(JulietSuite, GoodVariantsAreCleanForDynamicTools)
{
    for (const auto &test : smallBuilder().buildAll()) {
        auto good = minic::parseAndCheck(test.goodSource);

        core::DiffEngine engine(*good);
        auto diff = engine.runInput(test.input);
        EXPECT_FALSE(diff.divergent)
            << test.id << "\n"
            << diff.summary() << test.goodSource;

        sanitizers::SanitizerRunner runner(*good);
        EXPECT_FALSE(runner.anyFires(test.input))
            << test.id << "\n"
            << test.goodSource;
    }
}

// Every bad variant must misbehave for at least one tool in at least
// one family — otherwise the case is inert filler.
TEST(JulietSuite, BadVariantsAreDetectedSomewhere)
{
    std::size_t inert = 0;
    std::size_t total = 0;
    for (const auto &test : smallBuilder().buildAll()) {
        total++;
        auto bad = minic::parseAndCheck(test.badSource);
        core::DiffEngine engine(*bad);
        if (engine.runInput(test.input).divergent)
            continue;
        sanitizers::SanitizerRunner runner(*bad);
        if (runner.anyFires(test.input))
            continue;
        // Deliberately undetectable variants exist (e.g. consistent
        // traps); they must stay a small minority.
        inert++;
    }
    EXPECT_LT(inert, total / 3)
        << inert << " of " << total << " cases inert";
}

TEST(JulietEvaluate, SmallSuiteShapes)
{
    juliet::EvaluationOptions options;
    auto cases = SuiteBuilder(0.0, 11).buildAll();
    auto result = juliet::evaluateSuite(cases, options);

    ASSERT_EQ(result.groups.size(), 10u);
    EXPECT_EQ(result.totalCases, cases.size());
    EXPECT_EQ(result.badHashVectors.size(), cases.size());

    // CWE-469: CompDiff must own the row (paper: 100% vs all-zero).
    const auto *ptr_sub = result.findGroup("UB of pointer sub.");
    ASSERT_NE(ptr_sub, nullptr);
    EXPECT_EQ(ptr_sub->tools.at("compdiff").detected,
              ptr_sub->tools.at("compdiff").badTotal);
    EXPECT_EQ(ptr_sub->tools.at("asan").detected, 0u);
    EXPECT_EQ(ptr_sub->tools.at("ubsan").detected, 0u);
    EXPECT_EQ(ptr_sub->tools.at("msan").detected, 0u);
    EXPECT_EQ(ptr_sub->tools.at("deepscan").detected, 0u);
    EXPECT_EQ(ptr_sub->compdiffUnique,
              ptr_sub->tools.at("compdiff").detected);

    // Memory errors: sanitizers strong; CompDiff non-zero.
    const auto *memory = result.findGroup("Memory error");
    ASSERT_NE(memory, nullptr);
    EXPECT_GT(memory->tools.at("asan").detected,
              memory->tools.at("asan").badTotal / 2);
    EXPECT_GT(memory->tools.at("compdiff").detected, 0u);

    // Integer errors: UBSan ahead of CompDiff.
    const auto *integer = result.findGroup("Integer error");
    ASSERT_NE(integer, nullptr);
    EXPECT_GT(integer->tools.at("ubsan").detected,
              integer->tools.at("compdiff").detected);

    // Uninitialized memory: CompDiff far ahead of MSan.
    const auto *uninit = result.findGroup("Uninitialized memory");
    ASSERT_NE(uninit, nullptr);
    EXPECT_GT(uninit->tools.at("compdiff").detected,
              uninit->tools.at("msan").detected);

    // Dynamic tools: zero false positives everywhere.
    for (const auto &group : result.groups) {
        for (const char *tool :
             {"asan", "ubsan", "msan", "compdiff"}) {
            auto it = group.tools.find(tool);
            if (it != group.tools.end()) {
                EXPECT_EQ(it->second.falsePositives, 0u)
                    << group.group << " / " << tool;
            }
        }
    }
}

TEST(JulietEvaluate, StaticToolsHaveFalsePositives)
{
    // Across a slightly larger slice, the aggressive static tools
    // must show their Table 3 signature: non-zero false positives.
    juliet::EvaluationOptions options;
    options.runSanitizers = false;
    options.runCompDiff = false;
    auto cases = SuiteBuilder(0.002, 3).buildAll();
    auto result = juliet::evaluateSuite(cases, options);

    std::size_t inferlite_fp = 0;
    std::size_t lintcheck_detected = 0;
    for (const auto &group : result.groups) {
        auto infer = group.tools.find("inferlite");
        if (infer != group.tools.end())
            inferlite_fp += infer->second.falsePositives;
        auto lint = group.tools.find("lintcheck");
        if (lint != group.tools.end())
            lintcheck_detected += lint->second.detected;
    }
    EXPECT_GT(inferlite_fp, 0u);
    EXPECT_GT(lintcheck_detected, 0u);
}

} // namespace
