/**
 * @file
 * Tests for the CompDiff core: the differential engine, output
 * normalization, timeout handling, and subset analysis.
 */

#include <gtest/gtest.h>

#include "compdiff/engine.hh"
#include "compdiff/normalizer.hh"
#include "compdiff/subset.hh"
#include "minic/parser.hh"

namespace
{

using namespace compdiff;
using core::DiffEngine;
using core::DiffOptions;
using core::OutputNormalizer;
using core::SubsetAnalysis;

TEST(Normalizer, StripsTimestamps)
{
    auto normalizer = OutputNormalizer::withDefaultFilters();
    EXPECT_EQ(normalizer.normalize("a [ts:12345] b [ts:6] c"),
              "a  b  c");
    EXPECT_EQ(normalizer.normalize("no stamps"), "no stamps");
}

TEST(Normalizer, CustomPatterns)
{
    OutputNormalizer normalizer;
    normalizer.addPattern("[0-9]{2}:[0-9]{2}:[0-9]{2}\\.[0-9]+",
                          "<time>");
    EXPECT_EQ(normalizer.normalize("10:44:23.405830 [Epan WARNING]"),
              "<time> [Epan WARNING]");
}

TEST(Normalizer, EmptyOutput)
{
    auto normalizer = OutputNormalizer::withDefaultFilters();
    EXPECT_EQ(normalizer.normalize(""), "");
    // No filters at all must also be the identity on empty input.
    EXPECT_EQ(OutputNormalizer().normalize(""), "");
}

TEST(Normalizer, TrailingNulBytesSurvive)
{
    auto normalizer = OutputNormalizer::withDefaultFilters();
    // Program output is binary-safe: embedded and trailing NULs are
    // compared bytes, not C-string terminators.
    const std::string with_nuls("ab\0[ts:1]\0\0", 11);
    const std::string expect("ab\0\0\0", 5);
    EXPECT_EQ(normalizer.normalize(with_nuls), expect);
    EXPECT_EQ(normalizer.normalize(std::string("\0", 1)),
              std::string("\0", 1));
}

TEST(Normalizer, MixedCrLfLineEndings)
{
    auto normalizer = OutputNormalizer::withDefaultFilters();
    // Filters strip the stamp on every line but never touch the
    // line-ending bytes themselves — a CR/LF mix stays a CR/LF mix.
    EXPECT_EQ(
        normalizer.normalize("a [ts:1]\r\nb [ts:22]\nc [ts:3]\r"),
        "a \r\nb \nc \r");
    // A digit run must not match across a CRLF boundary.
    EXPECT_EQ(normalizer.normalize("[ts:12\r\n34]"), "[ts:12\r\n34]");
}

TEST(Normalizer, PointerTokensAtLineBoundaries)
{
    OutputNormalizer normalizer;
    normalizer.addPattern("0x[0-9a-f]+", "<ptr>");
    // Token at line start, line end, and as the entire line.
    EXPECT_EQ(normalizer.normalize("0xdeadbeef leaked\n"),
              "<ptr> leaked\n");
    EXPECT_EQ(normalizer.normalize("at 0x7ffe01\nnext"),
              "at <ptr>\nnext");
    EXPECT_EQ(normalizer.normalize("0xabc"), "<ptr>");
    EXPECT_EQ(normalizer.normalize("0x1 0x2\n0x3"),
              "<ptr> <ptr>\n<ptr>");
    // Not a pointer: no hex digits after the prefix.
    EXPECT_EQ(normalizer.normalize("0x"), "0x");
}

TEST(DiffEngine, DetectsListing1)
{
    auto program = minic::parseAndCheck(R"(
        int dump_data(int offset, int len) {
            if (offset < 0 || len < 0) { return -1; }
            if (offset + len < offset) { return -1; }
            print_str("dump"); newline();
            return 0;
        }
        int main() {
            print_int(dump_data(2147483547, 101));
            return 0;
        }
    )");
    DiffEngine engine(*program);
    EXPECT_EQ(engine.size(), 10u);
    auto result = engine.runInput({});
    EXPECT_TRUE(result.divergent);
    EXPECT_GE(result.classCount, 2u);
    EXPECT_FALSE(result.summary().empty());
}

TEST(DiffEngine, StableProgramIsConsistent)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            print_str("deterministic");
            print_int(input_size());
            return 0;
        }
    )");
    DiffEngine engine(*program);
    auto result = engine.runInput({1, 2, 3});
    EXPECT_FALSE(result.divergent);
    EXPECT_EQ(result.classCount, 1u);
}

TEST(DiffEngine, TimestampNormalizationPreventsFalsePositive)
{
    const char *source = R"(
        int main() {
            print_str("[ts:"); print_long(time_stamp());
            print_str("] payload");
            return 0;
        }
    )";
    auto program = minic::parseAndCheck(source);

    // With the default filters: stable.
    DiffEngine engine(*program);
    EXPECT_FALSE(engine.runInput({}).divergent);

    // Without filters: every binary saw a different timestamp.
    DiffOptions raw;
    raw.normalizer = OutputNormalizer();
    DiffEngine raw_engine(*program,
                          compiler::standardImplementations(), raw);
    EXPECT_TRUE(raw_engine.runInput({}).divergent);
}

TEST(DiffEngine, PartialTimeoutIsNotDivergence)
{
    // gcc-O0 keeps a dead infinite-ish loop that O2 removes... build
    // instead a program whose runtime exceeds the budget only for
    // unoptimized configurations via a dead expensive loop.
    auto program = minic::parseAndCheck(R"(
        int main() {
            int acc = 0;
            for (int i = 0; i < 100000000; i += 1) { acc = acc + 1; }
            int unused = acc;
            print_str("done");
            return 0;
        }
    )");
    DiffOptions options;
    options.limits.maxInstructions = 10'000; // everything times out
    options.retryTimeouts = false;
    DiffEngine engine(*program,
                      compiler::standardImplementations(), options);
    auto result = engine.runInput({});
    // All time out -> identical "timeout" class, not divergent.
    EXPECT_FALSE(result.divergent);
}

TEST(DiffEngine, TimeoutRetryResolvesPartialTimeout)
{
    // The loop bound comes from an uninitialized local: 0 under the
    // O0 fill pattern (fast) and 0xBE-derived under optimized fills
    // (slow). With a small budget the first attempt partially times
    // out; the RQ6 retry raises the budget until all runs finish,
    // and only then is the (real) divergence reported.
    auto program = minic::parseAndCheck(R"(
        int main() {
            char n;
            int bound = (n & 255) * 40;
            int acc = 0;
            for (int i = 0; i < bound; i += 1) { acc += 3; }
            print_int(acc);
            return 0;
        }
    )");
    DiffOptions options;
    options.limits.maxInstructions = 20'000;
    DiffEngine engine(*program,
                      compiler::standardImplementations(), options);
    auto result = engine.runInput({});
    EXPECT_TRUE(result.divergent);
    EXPECT_FALSE(result.unresolvedTimeout);
    for (const auto &obs : result.observations)
        EXPECT_EQ(obs.exitClass, "exit:0") << obs.impl;

    // Without the retry discipline, the same input would surface as
    // a (spurious, truncated-output) partial timeout.
    DiffOptions no_retry = options;
    no_retry.retryTimeouts = false;
    DiffEngine strict(*program, compiler::standardImplementations(),
                      no_retry);
    auto raw = strict.runInput({});
    EXPECT_TRUE(raw.unresolvedTimeout);
    EXPECT_FALSE(raw.divergent);
}

TEST(DiffEngine, FindDivergenceScansInputs)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            if (input_byte(0) == 7) {
                int l;
                print_int(l);  // uninitialized only on this path
            } else {
                print_str("clean");
            }
            return 0;
        }
    )");
    DiffEngine engine(*program);
    std::vector<support::Bytes> inputs = {{1}, {2}, {7}, {9}};
    auto hit = engine.findDivergence(inputs);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->divergent);
}

TEST(DiffEngine, SubsetQueries)
{
    auto program = minic::parseAndCheck(R"(
        int main() {
            int l;
            print_int(l);
            return 0;
        }
    )");
    DiffEngine engine(*program);
    auto result = engine.runInput({});
    ASSERT_TRUE(result.divergent);
    // gcc-O0 (index 0) vs gcc-O2 (index 2) differ in stack fill.
    EXPECT_TRUE(result.divergesWithin({0, 2}));
    // gcc-O2 vs gcc-O3 (indices 2, 3) share the fill pattern.
    EXPECT_FALSE(result.divergesWithin({2, 3}));
    EXPECT_FALSE(result.divergesWithin({2}));
}

TEST(SubsetAnalysis, CountsDetections)
{
    SubsetAnalysis analysis(4);
    // Case A: impls {0,1} see X, {2,3} see Y.
    analysis.addCase({10, 10, 20, 20});
    // Case B: only impl 3 differs.
    analysis.addCase({5, 5, 5, 6});
    // Case C: stable (never detected).
    analysis.addCase({9, 9, 9, 9});

    auto pairs = analysis.enumerateSize(2);
    ASSERT_EQ(pairs.size(), 6u);
    std::size_t best = 0;
    for (const auto &r : pairs)
        best = std::max(best, r.detected);
    EXPECT_EQ(best, 2u); // e.g. {0,3} catches A and B

    // {0,1} catches nothing; {2,3} catches only B.
    for (const auto &r : pairs) {
        if (r.members == std::vector<std::size_t>{0, 1}) {
            EXPECT_EQ(r.detected, 0u);
        }
        if (r.members == std::vector<std::size_t>{2, 3}) {
            EXPECT_EQ(r.detected, 1u);
        }
    }

    auto full = analysis.enumerateSize(4);
    ASSERT_EQ(full.size(), 1u);
    EXPECT_EQ(full[0].detected, 2u);

    auto all = analysis.enumerateAll();
    EXPECT_EQ(all.size(), 3u); // sizes 2, 3, 4
    const auto stats = SubsetAnalysis::stats(pairs);
    EXPECT_LE(stats.min, stats.max);
}

TEST(SubsetAnalysis, MonotoneInSubsetSize)
{
    // Detection counts of the best subset can only grow with size.
    SubsetAnalysis analysis(5);
    analysis.addCase({1, 1, 2, 2, 3});
    analysis.addCase({7, 8, 7, 7, 7});
    analysis.addCase({4, 4, 4, 4, 4});
    std::size_t prev_best = 0;
    for (std::size_t size = 2; size <= 5; size++) {
        const auto results = analysis.enumerateSize(size);
        const auto &best = SubsetAnalysis::best(results);
        EXPECT_GE(best.detected, prev_best);
        prev_best = best.detected;
    }
    EXPECT_EQ(prev_best, 2u);
}

TEST(SubsetAnalysis, NamesSubsets)
{
    SubsetAnalysis analysis(3);
    analysis.addCase({1, 2, 3});
    auto results = analysis.enumerateSize(2);
    const auto impls = core::paper10Implementations();
    EXPECT_EQ(results[0].name(impls), "{gcc-O0, gcc-O1}");
}

} // namespace
