/**
 * @file
 * Determinism tests for the parallel execution layer: the engine's
 * ExecutionService (DiffOptions::jobs), sharded fuzz campaigns, and
 * the content-addressed compile cache. The contract under test is
 * the strongest one: results must be bit-identical between jobs=1
 * and jobs=N — parallelism buys wall-clock only, never different
 * observations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "compdiff/engine.hh"
#include "compiler/cache.hh"
#include "compiler/config.hh"
#include "fuzz/sharded.hh"
#include "minic/parser.hh"
#include "obs/stats.hh"

namespace
{

using namespace compdiff;
using core::DiffEngine;
using core::DiffOptions;
using core::DiffResult;
using support::Bytes;

void
expectIdentical(const DiffResult &a, const DiffResult &b)
{
    EXPECT_EQ(a.divergent, b.divergent);
    EXPECT_EQ(a.unresolvedTimeout, b.unresolvedTimeout);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.classOf, b.classOf);
    EXPECT_EQ(a.classCount, b.classCount);
    EXPECT_EQ(a.hashVector(), b.hashVector());
    ASSERT_EQ(a.observations.size(), b.observations.size());
    for (std::size_t i = 0; i < a.observations.size(); i++) {
        const auto &oa = a.observations[i];
        const auto &ob = b.observations[i];
        EXPECT_EQ(oa.impl, ob.impl);
        EXPECT_EQ(oa.normalizedOutput, ob.normalizedOutput);
        EXPECT_EQ(oa.exitClass, ob.exitClass);
        EXPECT_EQ(oa.hash, ob.hash);
        EXPECT_EQ(oa.timedOut, ob.timedOut);
        EXPECT_EQ(oa.instructions, ob.instructions);
    }
}

TEST(ParallelEngine, BitIdenticalAcrossJobCounts)
{
    // Listing 1's unstable overflow guard: inputs steer it across
    // the accept/reject boundary, and the engine diverges on some.
    auto program = minic::parseAndCheck(R"(
        int check(int offset, int len) {
            if (offset < 0 || len < 0) { return -1; }
            if (offset + len < offset) { return -1; }
            return 0;
        }
        int main() {
            int offset = 2147483647 - input_byte(0);
            int len = input_byte(1);
            if (check(offset, len) < 0) { print_str("rejected"); }
            else { print_str("accepted"); }
            print_int(offset % 7);
            return 0;
        }
    )");
    DiffOptions serial;
    serial.jobs = 1;
    DiffOptions parallel = serial;
    parallel.jobs = 4;
    DiffEngine engine1(*program,
                       compiler::standardImplementations(), serial);
    DiffEngine engine4(*program,
                       compiler::standardImplementations(),
                       parallel);
    bool saw_divergent = false;
    for (std::uint8_t a = 0; a < 12; a++) {
        const Bytes input = {a, static_cast<std::uint8_t>(a * 21)};
        auto r1 = engine1.runInput(input, a);
        auto r4 = engine4.runInput(input, a);
        expectIdentical(r1, r4);
        saw_divergent |= r1.divergent;
    }
    EXPECT_TRUE(saw_divergent);
}

TEST(ParallelEngine, TimeoutRoundsIdenticalAcrossJobCounts)
{
    // A loop whose cost varies per optimization level (the constant
    // subexpression folds away above O0), run under a budget wedged
    // between the cheapest and the costliest implementation: that
    // forces a *partial* timeout and hence the RQ6 retry machinery.
    // The retry accounting must not depend on scheduling either.
    auto program = minic::parseAndCheck(R"(
        int main() {
            int n = 200 + input_byte(0);
            int sum = 0;
            for (int i = 0; i < n; i = i + 1) {
                sum = sum + (3 * 4 + 5) + i - (7 * 2);
            }
            print_int(sum);
            return 0;
        }
    )");
    // Calibrate: measure every implementation's true cost first.
    DiffEngine probe(*program);
    const auto base = probe.runInput({5}, 99);
    std::uint64_t lo = UINT64_MAX;
    std::uint64_t hi = 0;
    for (const auto &obs : base.observations) {
        lo = std::min(lo, obs.instructions);
        hi = std::max(hi, obs.instructions);
    }
    ASSERT_LT(lo, hi) << "costs must differ across configs";

    DiffOptions serial;
    serial.limits.maxInstructions = (lo + hi) / 2;
    serial.jobs = 1;
    DiffOptions parallel = serial;
    parallel.jobs = 4;
    DiffEngine engine1(*program,
                       compiler::standardImplementations(), serial);
    DiffEngine engine4(*program,
                       compiler::standardImplementations(),
                       parallel);
    bool saw_retry = false;
    for (std::uint8_t b = 0; b < 8; b++) {
        auto r1 = engine1.runInput({b}, b);
        auto r4 = engine4.runInput({b}, b);
        expectIdentical(r1, r4);
        saw_retry |= r1.attempts > 1;
    }
    EXPECT_TRUE(saw_retry);
}

/** The oracle-carrying fuzz target from test_fuzz.cc. */
const char *kUnstableTarget = R"(
    int main() {
        if (input_byte(0) == 'U') {
            int l;
            print_int(l);
            probe(42);
        } else {
            print_str("fine");
        }
        return 0;
    }
)";

void
expectIdentical(const fuzz::FuzzStats &a, const fuzz::FuzzStats &b)
{
    EXPECT_EQ(a.execs, b.execs);
    EXPECT_EQ(a.compdiffExecs, b.compdiffExecs);
    EXPECT_EQ(a.seeds, b.seeds);
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_EQ(a.diffs, b.diffs);
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_EQ(a.lastFindExec, b.lastFindExec);
    EXPECT_EQ(a.lastDiffExec, b.lastDiffExec);
}

TEST(ShardedCampaign, BitIdenticalAcrossJobCounts)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    fuzz::FuzzOptions options;
    options.maxExecs = 1'500;
    const std::vector<Bytes> seeds = {{'A'}, {'B', 'C'}};

    auto serial = fuzz::runShardedCampaign(*program, seeds, options,
                                           /*shards=*/3, /*jobs=*/1);
    auto threaded = fuzz::runShardedCampaign(*program, seeds,
                                             options, /*shards=*/3,
                                             /*jobs=*/4);

    expectIdentical(serial.total, threaded.total);
    ASSERT_EQ(serial.perShard.size(), 3u);
    ASSERT_EQ(threaded.perShard.size(), 3u);
    for (std::size_t s = 0; s < 3; s++)
        expectIdentical(serial.perShard[s], threaded.perShard[s]);
    ASSERT_EQ(serial.diffs.size(), threaded.diffs.size());
    for (std::size_t i = 0; i < serial.diffs.size(); i++) {
        EXPECT_EQ(serial.diffs[i].input, threaded.diffs[i].input);
        EXPECT_EQ(serial.diffs[i].execIndex,
                  threaded.diffs[i].execIndex);
    }
    // The merged fuzzer_stats render must match byte-for-byte
    // (execsPerSec stays 0 in the snapshot: exec-count time axis).
    EXPECT_EQ(obs::renderFuzzerStats(serial.statsSnapshot()),
              obs::renderFuzzerStats(threaded.statsSnapshot()));
}

TEST(ShardedCampaign, SingleShardReproducesPlainFuzzer)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    fuzz::FuzzOptions options;
    options.maxExecs = 1'000;
    const std::vector<Bytes> seeds = {{'A'}};

    fuzz::Fuzzer plain(*program, seeds, options);
    plain.run();
    auto sharded = fuzz::runShardedCampaign(
        *program, seeds, options, /*shards=*/1, /*jobs=*/1);

    expectIdentical(plain.stats(), sharded.total);
    ASSERT_EQ(plain.diffs().size(), sharded.diffs.size());
    for (std::size_t i = 0; i < sharded.diffs.size(); i++)
        EXPECT_EQ(plain.diffs()[i].input, sharded.diffs[i].input);
    EXPECT_EQ(obs::renderFuzzerStats(plain.statsSnapshot()),
              obs::renderFuzzerStats(sharded.statsSnapshot()));
}

TEST(ShardedCampaign, ShardCountSplitsBudgetExactly)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    fuzz::FuzzOptions options;
    options.maxExecs = 1'001; // deliberately not divisible by 3
    auto result = fuzz::runShardedCampaign(*program, {{'A'}},
                                           options, /*shards=*/3);
    EXPECT_EQ(result.total.execs, 1'001u);
    ASSERT_EQ(result.perShard.size(), 3u);
    EXPECT_EQ(result.perShard[0].execs, 334u);
    EXPECT_EQ(result.perShard[1].execs, 334u);
    EXPECT_EQ(result.perShard[2].execs, 333u);
}

TEST(CompileCache, SecondEngineIsAllHits)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    auto &cache = compiler::CompileCache::global();
    cache.clear();
    DiffEngine first(*program);
    const std::size_t entries = cache.size();
    EXPECT_GE(entries, first.size());
    const std::uint64_t hits_before = cache.hits();
    DiffEngine second(*program);
    EXPECT_EQ(cache.size(), entries); // nothing recompiled
    EXPECT_GE(cache.hits() - hits_before, second.size());
}

TEST(CompileCache, TraitsTweakGetsOwnEntries)
{
    auto program = minic::parseAndCheck(kUnstableTarget);
    auto &cache = compiler::CompileCache::global();
    cache.clear();
    DiffEngine stock(*program);
    const std::size_t entries = cache.size();
    DiffOptions ablated;
    ablated.traitsTweak = [](compiler::Traits &traits) {
        traits.foldUbGuards = false;
        traits.alwaysTrueIncCmp = false;
    };
    DiffEngine tweaked(*program,
                       compiler::standardImplementations(), ablated);
    // The ablation changes at least one configuration's traits, so
    // the cache must grow — tweaked modules are distinct entries.
    EXPECT_GT(cache.size(), entries);
}

TEST(CompileCache, FingerprintSeesEveryTraitFlip)
{
    compiler::Traits traits;
    const std::uint64_t base = compiler::traitsFingerprint(traits);
    compiler::Traits flipped = traits;
    flipped.foldUbGuards = !flipped.foldUbGuards;
    EXPECT_NE(compiler::traitsFingerprint(flipped), base);
    flipped = traits;
    flipped.stackFill = 0xAA;
    EXPECT_NE(compiler::traitsFingerprint(flipped), base);
    flipped = traits;
    flipped.freelistLifo = !flipped.freelistLifo;
    EXPECT_NE(compiler::traitsFingerprint(flipped), base);
}

} // namespace
