/**
 * @file
 * Multi-process fleet front end: one coordinator process supervising
 * N fuzzing worker processes over a shared crash-safe session
 * directory (DESIGN.md §12).
 *
 *   # 3 worker processes over 6 deterministic shards
 *   ./build/examples/compdiff_fleet --target=pktdump --fuzz=60000 \
 *       --shards=6 --workers=3 --session=/tmp/fleet
 *
 * The same binary is both sides of the protocol: without `--worker`
 * it runs the coordinator (fleet::runFleet), which re-execs itself
 * with `--worker --worker-shards=...` per spawned worker. Workers
 * that die — crash, OOM-kill, kill -9 — are revived from their shard
 * checkpoints and the finished campaign's artifacts are
 * byte-identical to a single-process run (kill one and watch:
 * `kill -9 $(awk '/^pid/{print $3}' /tmp/fleet/shard-0.lease)`).
 *
 * Campaign flags (forwarded verbatim to workers):
 *   --target=NAME / prog.mc   what to fuzz (built-in target, or a
 *                             MiniC source file)
 *   --impls=SPECS             the oracle (default "paper10")
 *   --fuzz=N                  campaign budget in executions
 *   --shards=N                deterministic campaign shards (the
 *                             unit of distribution — use >= workers)
 *   --jobs=N                  threads per worker (never changes
 *                             results)
 *   --checkpoint-every=N      shard checkpoint cadence in execs
 *   --heartbeat-every=S       shard heartbeat cadence in seconds
 *   --sync-every=S            cross-worker corpus sync cadence in
 *                             seconds (0 = off; syncing trades the
 *                             bit-identity guarantee for coverage
 *                             sharing — see src/fleet/fleet.hh)
 *   --quiet                   silence warn()/inform() notices
 *
 * Coordinator flags:
 *   --workers=N               worker process slots (default 2);
 *                             elastic — rerun with a higher N and
 *                             late joiners pick up unleased shards
 *   --deadline=S              wall-clock budget: SIGTERM workers at
 *                             S seconds (they checkpoint and exit;
 *                             rerun the same command to continue)
 *   --poll-every=S            supervision poll interval (default .2)
 *   --status-every=S          print the aggregated monitor table
 *                             every S seconds (0 = off)
 *   --dead-after=S            heartbeat age that marks a worker hung
 *                             (SIGKILL + revive; default 30)
 *   --max-spawns=N            per-shard spawn cap (crash-loop brake)
 *   --reduce[=BUDGET]         triage divergences after completion
 *   --reports-out=DIR         bundle reduced divergences under DIR
 *
 * Exit codes: 0 campaign complete and stable, 1 complete with
 * divergences, 2 usage/session error, 4 deadline hit (incomplete,
 * resumable).
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "compdiff/implementation.hh"
#include "fleet/fleet.hh"
#include "minic/parser.hh"
#include "obs/stats.hh"
#include "support/logging.hh"
#include "targets/targets.hh"

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

const char *kUsage =
    "usage: compdiff_fleet [options] [prog.mc]\n"
    "\n"
    "campaign (forwarded to workers):\n"
    "  --target=NAME         fuzz a built-in target (pktdump, ...)\n"
    "  --impls=SPECS         oracle specs or \"paper10\"/\"all\"\n"
    "  --fuzz=N              campaign budget in executions\n"
    "  --shards=N            deterministic shards (>= workers)\n"
    "  --jobs=N              threads per worker\n"
    "  --checkpoint-every=N  shard checkpoint cadence in execs\n"
    "  --heartbeat-every=S   heartbeat cadence in seconds\n"
    "  --sync-every=S        cross-worker corpus sync cadence\n"
    "                        (0 = off; forfeits bit-identity)\n"
    "  --session=DIR         session directory (required)\n"
    "  --quiet               silence warn()/inform() notices\n"
    "\n"
    "coordinator:\n"
    "  --workers=N           worker process slots (default 2)\n"
    "  --deadline=S          wall-clock budget in seconds\n"
    "  --poll-every=S        supervision poll interval\n"
    "  --status-every=S      aggregated status table cadence\n"
    "  --dead-after=S        heartbeat age marking a worker hung\n"
    "  --max-spawns=N        per-shard spawn cap\n"
    "  --reduce[=BUDGET]     triage divergences after completion\n"
    "  --reports-out=DIR     bundle reduced divergences under DIR\n"
    "  --help                show this text\n";

struct FleetCli
{
    // Campaign identity (forwarded to workers verbatim).
    std::string target;
    std::string program;
    std::string impls = "paper10";
    std::uint64_t fuzzExecs = 20'000;
    std::size_t shards = 1;
    std::size_t jobs = 1;
    std::uint64_t checkpointEvery = 0;
    double heartbeatSecs = 1.0;
    double syncSecs = 0;
    std::string sessionDir;
    bool quiet = false;

    // Coordinator side.
    std::size_t workers = 2;
    double deadlineSecs = 0;
    double pollSecs = 0.2;
    double statusSecs = 0;
    double deadAfterSecs = 30.0;
    std::size_t maxSpawns = 64;
    bool reduce = false;
    std::uint64_t reduceBudget = 4096;
    std::string reportsOut;

    // Worker side.
    bool worker = false;
    compdiff::fleet::WorkerSpec spec;
};

bool
matchFlag(const std::string &arg, const char *name,
          std::string *value)
{
    const std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) == 0) {
        *value = arg.substr(prefix.size());
        return true;
    }
    return false;
}

FleetCli
parseArgs(int argc, char **argv)
{
    FleetCli options;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--worker") {
            options.worker = true;
        } else if (compdiff::fleet::parseWorkerArg(arg,
                                                   &options.spec)) {
        } else if (matchFlag(arg, "--target", &value)) {
            options.target = value;
        } else if (matchFlag(arg, "--impls", &value)) {
            options.impls = value;
        } else if (matchFlag(arg, "--fuzz", &value)) {
            options.fuzzExecs = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--shards", &value)) {
            options.shards = static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--jobs", &value)) {
            options.jobs = static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--checkpoint-every", &value)) {
            options.checkpointEvery = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--heartbeat-every", &value)) {
            options.heartbeatSecs =
                std::strtod(value.c_str(), nullptr);
        } else if (matchFlag(arg, "--sync-every", &value)) {
            options.syncSecs = std::strtod(value.c_str(), nullptr);
        } else if (matchFlag(arg, "--session", &value)) {
            options.sessionDir = value;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (matchFlag(arg, "--workers", &value)) {
            options.workers = static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--deadline", &value)) {
            options.deadlineSecs =
                std::strtod(value.c_str(), nullptr);
        } else if (matchFlag(arg, "--poll-every", &value)) {
            options.pollSecs = std::strtod(value.c_str(), nullptr);
        } else if (matchFlag(arg, "--status-every", &value)) {
            options.statusSecs = std::strtod(value.c_str(), nullptr);
        } else if (matchFlag(arg, "--dead-after", &value)) {
            options.deadAfterSecs =
                std::strtod(value.c_str(), nullptr);
        } else if (matchFlag(arg, "--max-spawns", &value)) {
            options.maxSpawns = static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (arg == "--reduce") {
            options.reduce = true;
        } else if (matchFlag(arg, "--reduce", &value)) {
            options.reduce = true;
            options.reduceBudget = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--reports-out", &value)) {
            options.reportsOut = value;
        } else if (arg == "--help") {
            std::fputs(kUsage, stdout);
            std::exit(0);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option %s\n\n%s",
                         arg.c_str(), kUsage);
            std::exit(2);
        } else if (options.program.empty()) {
            options.program = arg;
        } else {
            std::fprintf(stderr, "unexpected argument %s\n\n%s",
                         arg.c_str(), kUsage);
            std::exit(2);
        }
    }
    return options;
}

/** This binary's path, for the worker re-exec. */
std::string
selfExecutable(const char *argv0)
{
    char buffer[4096];
    const ssize_t got =
        ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
    if (got > 0) {
        buffer[got] = '\0';
        return buffer;
    }
    return argv0;
}

/** Re-serialize the campaign flags for the worker command line. */
std::vector<std::string>
workerCommand(const FleetCli &options, const char *argv0)
{
    std::vector<std::string> command;
    command.push_back(selfExecutable(argv0));
    if (!options.target.empty())
        command.push_back("--target=" + options.target);
    else
        command.push_back(options.program);
    command.push_back("--impls=" + options.impls);
    command.push_back("--fuzz=" +
                      std::to_string(options.fuzzExecs));
    command.push_back("--shards=" +
                      std::to_string(options.shards));
    command.push_back("--jobs=" + std::to_string(options.jobs));
    command.push_back("--checkpoint-every=" +
                      std::to_string(options.checkpointEvery));
    command.push_back("--heartbeat-every=" +
                      std::to_string(options.heartbeatSecs));
    command.push_back("--sync-every=" +
                      std::to_string(options.syncSecs));
    command.push_back("--session=" + options.sessionDir);
    if (options.quiet)
        command.push_back("--quiet");
    command.push_back("--worker");
    return command;
}

compdiff::session::SessionConfig
sessionConfig(const FleetCli &options)
{
    using namespace compdiff;
    session::SessionConfig config;
    config.dir = options.sessionDir;
    config.checkpointEvery = options.checkpointEvery;
    config.heartbeatSecs = options.heartbeatSecs;
    config.fuzz.diffImpls =
        core::ImplementationRegistry::global().parse(options.impls);
    config.fuzz.maxExecs = options.fuzzExecs;
    config.fuzz.jobs = options.jobs;
    config.shards = options.shards;
    config.jobs = options.jobs;
    if (options.syncSecs > 0) {
        config.syncPath = options.sessionDir + "/sync.journal";
        config.syncSecs = options.syncSecs;
    }
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace compdiff;

    const FleetCli options = parseArgs(argc, argv);
    support::QuietGuard quiet(options.quiet);

    if (options.sessionDir.empty()) {
        std::fprintf(stderr,
                     "a fleet needs --session=DIR\n\n%s", kUsage);
        return 2;
    }

    std::string source;
    std::vector<support::Bytes> seeds;
    if (!options.target.empty()) {
        const targets::TargetProgram *target =
            targets::findTarget(options.target);
        if (!target) {
            std::fprintf(stderr, "unknown target %s\n",
                         options.target.c_str());
            return 2;
        }
        source = target->source;
        seeds = target->seeds;
    } else if (!options.program.empty()) {
        source = readFile(options.program);
        if (source.empty()) {
            std::fprintf(stderr, "cannot read %s\n",
                         options.program.c_str());
            return 2;
        }
    } else {
        std::fprintf(stderr,
                     "a fleet needs --target=NAME or a program "
                     "file\n\n%s",
                     kUsage);
        return 2;
    }

    std::unique_ptr<minic::Program> program;
    try {
        program = minic::parseAndCheck(source);
    } catch (const support::CompileError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
    }

    if (options.worker)
        return fleet::runWorker(*program, seeds,
                                sessionConfig(options),
                                options.spec);

    session::SessionConfig config = sessionConfig(options);
    config.triage.reduceFound = options.reduce;
    config.triage.candidateBudget = options.reduceBudget;
    config.triage.reportsDir = options.reportsOut;

    fleet::FleetOptions fleet_options;
    fleet_options.workers = options.workers;
    fleet_options.workerCommand = workerCommand(options, argv[0]);
    fleet_options.pollSecs = options.pollSecs;
    fleet_options.deadlineSecs = options.deadlineSecs;
    fleet_options.statusSecs = options.statusSecs;
    fleet_options.syncSecs = options.syncSecs;
    fleet_options.deadAfterSecs = options.deadAfterSecs;
    fleet_options.maxSpawnsPerShard = options.maxSpawns;

    try {
        const fleet::FleetResult result =
            fleet::runFleet(*program, seeds, config, fleet_options);
        if (!result.completed) {
            std::printf(
                "fleet deadline reached after %zu spawns (%zu "
                "revivals); rerun the same command to continue "
                "from the checkpoints in %s\n",
                result.spawns, result.revivals,
                options.sessionDir.c_str());
            return 4;
        }
        std::printf("%s", obs::renderFuzzerStats(result.stats)
                              .c_str());
        std::printf("\nfleet: %zu spawns, %zu revivals, %zu lease "
                    "conflicts, %zu unique divergences\n",
                    result.spawns, result.revivals,
                    result.leaseConflicts, result.result.diffs.size());
        for (const auto &report : result.reports) {
            std::printf("reduced %s: input %zu -> %zu bytes\n",
                        reduce::signatureDirName(report.signature)
                            .c_str(),
                        report.witnessInput.size(),
                        report.input.size());
        }
        return result.result.diffs.empty() ? 0 : 1;
    } catch (const session::SessionError &error) {
        std::fprintf(stderr, "fleet error: %s\n", error.what());
        return 2;
    }
}
