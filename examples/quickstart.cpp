/**
 * @file
 * Quickstart: detect unstable code in five minutes.
 *
 * The program below is the paper's Listing 1: an integer-overflow
 * guard (`offset + len < offset`) that optimizing compilers may fold
 * away. We compile it under the ten standard implementations, run
 * one overflowing input, and let the CompDiff oracle report the
 * divergence.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "compdiff/engine.hh"
#include "minic/parser.hh"

int
main()
{
    using namespace compdiff;

    // 1. The target program (MiniC). dump_data() rejects ranges that
    //    overflow -- unless the compiler deleted the check.
    const char *source = R"(
        int dump_data(int offset, int len) {
            int size = 100;
            if (offset < 0 || len < 0) { return -1; }
            if (offset + len < offset) { return -1; }
            print_str("dumping ");
            print_int(len);
            print_str(" bytes at ");
            print_int(offset);
            newline();
            return 0;
        }
        int main() {
            // INT_MAX - 100 + 101 overflows: UB.
            print_int(dump_data(2147483547, 101));
            newline();
            return 0;
        }
    )";

    // 2. Parse + semantic analysis (shared by every configuration).
    auto program = minic::parseAndCheck(source);

    // 3. The CompDiff engine: compiles the program under the ten
    //    standard implementations ({gcc,clang} x {O0,O1,O2,O3,Os})
    //    and compares normalized outputs per input.
    core::DiffEngine engine(*program);
    std::printf("compiled %zu binaries\n", engine.size());

    // 4. Run one input through every binary and compare.
    auto diff = engine.runInput({});
    std::printf("\n%s\n", diff.summary().c_str());

    if (diff.divergent) {
        std::printf("unstable code detected: the overflow guard was "
                    "folded away by the optimizing implementations.\n");
        return 0;
    }
    std::printf("no divergence found (unexpected!)\n");
    return 1;
}
