/**
 * @file
 * A small command-line front end: run CompDiff on your own MiniC
 * program, and when a divergence is found, localize it.
 *
 *   ./build/examples/compdiff_cli prog.mc [input-file]
 *
 * With no arguments it writes a demo program to /tmp and analyzes
 * that, so it is safe to run from the bench/example sweep.
 *
 * The report mirrors the paper's bug reports (Section 5): the
 * triggering input, two configurations that reproduce the issue, the
 * divergent outputs, plus the trace-alignment root-cause candidate.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "compdiff/engine.hh"
#include "compdiff/localize.hh"
#include "minic/parser.hh"
#include "support/bytes.hh"

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

const char *kDemoProgram = R"(// demo: unstable overflow guard
int check_range(int offset, int len) {
    if (offset < 0 || len < 0) { return -1; }
    if (offset + len < offset) { return -1; }
    return 0;
}
int main() {
    int offset = 2147483647 - input_byte(0);
    int len = input_byte(1);
    if (check_range(offset, len) < 0) {
        print_str("rejected");
    } else {
        print_str("accepted");
    }
    newline();
    return 0;
}
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace compdiff;

    std::string source;
    support::Bytes input;
    if (argc > 1) {
        source = readFile(argv[1]);
        if (source.empty()) {
            std::fprintf(stderr, "cannot read %s\n", argv[1]);
            return 2;
        }
    } else {
        std::printf("no program given; analyzing the built-in demo "
                    "(see --help in the source header)\n\n");
        source = kDemoProgram;
        input = {10, 50}; // offset INT_MAX-10, len 50: overflows
    }
    if (argc > 2) {
        const std::string raw = readFile(argv[2]);
        input.assign(raw.begin(), raw.end());
    }

    std::unique_ptr<minic::Program> program;
    try {
        program = minic::parseAndCheck(source);
    } catch (const support::CompileError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
    }

    core::DiffEngine engine(*program);
    auto diff = engine.runInput(input);
    std::printf("%s", diff.summary().c_str());
    if (!diff.divergent) {
        std::printf("\nThis input shows no instability. Try other "
                    "inputs, or plug the program into the fuzzer "
                    "(see examples/fuzz_packetdump.cpp).\n");
        return 0;
    }

    // Pick one representative from two different behavior classes
    // and align their traces.
    std::size_t a = 0;
    std::size_t b = 0;
    for (std::size_t i = 1; i < diff.observations.size(); i++) {
        if (diff.classOf[i] != diff.classOf[a]) {
            b = i;
            break;
        }
    }
    auto loc = core::localizeDivergence(
        *program, diff.observations[a].config,
        diff.observations[b].config, input);
    std::printf("\nroot-cause candidate (%s vs %s):\n  %s\n",
                diff.observations[a].config.name().c_str(),
                diff.observations[b].config.name().c_str(),
                loc.str().c_str());
    return 1;
}
