/**
 * @file
 * A small command-line front end: run CompDiff on your own MiniC
 * program, and when a divergence is found, localize it.
 *
 *   ./build/examples/compdiff_cli [options] [prog.mc [input-file]]
 *
 * Options (observability, see DESIGN.md "Observability"):
 *   --impls=SPECS       the oracle: comma-separated implementation
 *                       specs ("gcc:-O2", "clang:-Os:ubsan", "ref")
 *                       or the aliases "paper10" (default — the
 *                       paper's ten) and "all" (paper10 + the
 *                       reference interpreter); see DESIGN.md §7
 *   --mode=sancheck     flip the oracle: instead of differential
 *                       testing, certify each input's UB-ness with
 *                       the reference interpreter and classify
 *                       per-sanitizer false negatives / false
 *                       positives (DESIGN.md §14). With no program
 *                       argument the built-in `sanlab` target runs.
 *   --san-impls=SPECS   sanitized implementations for
 *                       --mode=sancheck (default: the sancheck
 *                       subsystem's standard four)
 *   --fuzz[=N]          run a CompDiff-AFL++ campaign (default
 *                       20000 execs) instead of a single input
 *   --target=NAME       fuzz a built-in campaign target (pktdump,
 *                       elfread, ...) instead of a program file;
 *                       uses the target's official seeds
 *   --reduce[=BUDGET]   after a --fuzz campaign, minimize every
 *                       unique divergence (ddmin the input, shrink
 *                       the program) under a per-divergence oracle
 *                       budget (default 4096 candidates)
 *   --reports-out=DIR   bundle each reduced divergence under
 *                       DIR/sig-<hex>/ (program.mc, input.bin,
 *                       witness.bin, report.md), keyed by the
 *                       semantic key; witnesses whose minimized
 *                       programs canonicalize identically merge
 *                       into one bundle (variants/ subdirs)
 *   --jobs=N            worker threads (0 = hardware); results are
 *                       bit-identical for every value
 *   --shards=N          split a --fuzz campaign into N deterministic
 *                       shards (this *does* change the campaign;
 *                       see DESIGN.md "Parallel execution")
 *   --session=DIR       persist the --fuzz campaign as a crash-safe
 *                       session under DIR (checkpoint journals,
 *                       manifest, cumulative stats; DESIGN.md §10)
 *   --resume            continue the session in --session=DIR from
 *                       its last checkpoint (the configuration must
 *                       match the persisted campaign exactly)
 *   --checkpoint-every=N  checkpoint every N shard executions
 *                       (default: a twentieth of the budget)
 *   --halt-after=N      stop each shard at its first safe point at
 *                       or beyond N executions (testing/interrupt
 *                       hook; resume finishes the campaign)
 *   --heartbeat-every=S shard heartbeat cadence in seconds
 *                       (display/health only; default 1)
 *   --cache-entries=N   bound the compile cache to N modules (LRU;
 *                       watch cache.hit/miss/evict in --metrics-out)
 *   --stats-out=FILE    write an AFL++-style fuzzer_stats snapshot
 *   --plot-out=FILE     write an AFL++-style plot_data time series
 *   --trace-out=FILE    write Chrome-trace JSON (chrome://tracing)
 *   --metrics-out=FILE  write the metrics registry as JSONL
 *   --flame             print the span flame summary to stdout
 *   --quiet             silence warn()/inform() notices
 *   --validate-json=F   check that F parses as JSON and exit
 *
 * With no program argument it writes a demo program to /tmp and
 * analyzes that, so it is safe to run from the bench/example sweep.
 *
 * The report mirrors the paper's bug reports (Section 5): the
 * triggering input, two configurations that reproduce the issue, the
 * divergent outputs, plus the trace-alignment root-cause candidate.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "compdiff/engine.hh"
#include "compdiff/implementation.hh"
#include "compdiff/localize.hh"
#include "compiler/cache.hh"
#include "compiler/config.hh"
#include "fuzz/sharded.hh"
#include "minic/parser.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "reduce/report.hh"
#include "sancheck/report.hh"
#include "sancheck/sancheck.hh"
#include "session/session.hh"
#include "support/bytes.hh"
#include "support/logging.hh"
#include "targets/targets.hh"

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

const char *kDemoProgram = R"(// demo: unstable overflow guard
int check_range(int offset, int len) {
    if (offset < 0 || len < 0) { return -1; }
    if (offset + len < offset) { return -1; }
    return 0;
}
int main() {
    int offset = 2147483647 - input_byte(0);
    int len = input_byte(1);
    if (check_range(offset, len) < 0) {
        print_str("rejected");
    } else {
        print_str("accepted");
    }
    newline();
    return 0;
}
)";

const char *kUsage =
    "usage: compdiff_cli [options] [prog.mc [input-file]]\n"
    "\n"
    "  --impls=SPECS         oracle implementation specs, or the\n"
    "                        aliases \"paper10\" (default) / \"all\"\n"
    "  --mode=sancheck       sanitizer-checking oracle: certify UB\n"
    "                        with the reference interpreter and\n"
    "                        classify sanitizer FN/FP findings\n"
    "  --san-impls=SPECS     sanitized implementations for\n"
    "                        --mode=sancheck (default: the standard\n"
    "                        four)\n"
    "  --fuzz[=N]            run a fuzz campaign (default 20000\n"
    "                        execs) instead of a single input\n"
    "  --target=NAME         fuzz a built-in target (pktdump, ...)\n"
    "  --reduce[=BUDGET]     minimize each unique divergence found\n"
    "  --reports-out=DIR     bundle reduced divergences under DIR\n"
    "                        (semantically equal witnesses merge\n"
    "                        into one bundle)\n"
    "  --jobs=N              worker threads (never changes results)\n"
    "  --shards=N            deterministic campaign shards\n"
    "  --session=DIR         persist the campaign as a crash-safe\n"
    "                        session under DIR\n"
    "  --resume              continue the session in --session=DIR\n"
    "  --checkpoint-every=N  checkpoint every N shard executions\n"
    "  --halt-after=N        stop each shard at the first safe\n"
    "                        point at or beyond N executions\n"
    "  --heartbeat-every=S   shard heartbeat cadence in seconds\n"
    "                        (display/health only; default 1)\n"
    "  --cache-entries=N     bound the compile cache to N modules\n"
    "                        (LRU eviction; 0 = unbounded)\n"
    "  --stats-out=FILE      AFL++-style fuzzer_stats snapshot\n"
    "  --plot-out=FILE       AFL++-style plot_data time series\n"
    "  --trace-out=FILE      Chrome-trace JSON\n"
    "  --metrics-out=FILE    metrics registry as JSONL\n"
    "  --flame               print the span flame summary\n"
    "  --quiet               silence warn()/inform() notices\n"
    "  --validate-json=F     check that F parses as JSON and exit\n"
    "  --help                show this text\n"
    "\n"
    "With no program argument, analyzes a built-in demo program.\n";

/** Parsed command line. */
struct CliOptions
{
    std::string impls = "paper10";
    bool sancheck = false;
    std::string sanImpls;
    bool fuzz = false;
    std::uint64_t fuzzExecs = 20'000;
    std::string target;
    bool reduce = false;
    std::uint64_t reduceBudget = 4096;
    std::string reportsOut;
    std::size_t jobs = 1;
    std::size_t shards = 1;
    std::string sessionDir;
    bool resume = false;
    std::uint64_t checkpointEvery = 0;
    std::uint64_t haltAfter = 0;
    double heartbeatSecs = 1.0;
    bool cacheLimitSet = false;
    std::size_t cacheEntries = 0;
    std::string statsOut;
    std::string plotOut;
    std::string traceOut;
    std::string metricsOut;
    bool flame = false;
    bool quiet = false;
    std::string validateJson;
    std::vector<std::string> positional;

    bool wantsTelemetry() const
    {
        return !statsOut.empty() || !plotOut.empty() ||
               !traceOut.empty() || !metricsOut.empty() || flame;
    }
};

bool
matchFlag(const std::string &arg, const char *name,
          std::string *value)
{
    const std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) == 0) {
        *value = arg.substr(prefix.size());
        return true;
    }
    return false;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--fuzz") {
            options.fuzz = true;
        } else if (matchFlag(arg, "--impls", &value)) {
            options.impls = value;
        } else if (matchFlag(arg, "--mode", &value)) {
            if (value != "sancheck" && value != "diff") {
                std::fprintf(stderr, "unknown mode %s\n\n%s",
                             value.c_str(), kUsage);
                std::exit(2);
            }
            options.sancheck = value == "sancheck";
        } else if (matchFlag(arg, "--san-impls", &value)) {
            options.sanImpls = value;
        } else if (matchFlag(arg, "--fuzz", &value)) {
            options.fuzz = true;
            options.fuzzExecs = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (arg == "--reduce") {
            options.reduce = true;
        } else if (matchFlag(arg, "--reduce", &value)) {
            options.reduce = true;
            options.reduceBudget = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--reports-out", &value)) {
            options.reportsOut = value;
        } else if (matchFlag(arg, "--target", &value)) {
            options.target = value;
        } else if (matchFlag(arg, "--jobs", &value)) {
            options.jobs = static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--shards", &value)) {
            options.shards = static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--session", &value)) {
            options.sessionDir = value;
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (matchFlag(arg, "--checkpoint-every", &value)) {
            options.checkpointEvery = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--halt-after", &value)) {
            options.haltAfter = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--heartbeat-every", &value)) {
            options.heartbeatSecs =
                std::strtod(value.c_str(), nullptr);
        } else if (matchFlag(arg, "--cache-entries", &value)) {
            options.cacheLimitSet = true;
            options.cacheEntries = static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--stats-out", &value)) {
            options.statsOut = value;
        } else if (matchFlag(arg, "--plot-out", &value)) {
            options.plotOut = value;
        } else if (matchFlag(arg, "--trace-out", &value)) {
            options.traceOut = value;
        } else if (matchFlag(arg, "--metrics-out", &value)) {
            options.metricsOut = value;
        } else if (arg == "--flame") {
            options.flame = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (matchFlag(arg, "--validate-json", &value)) {
            options.validateJson = value;
        } else if (arg == "--help") {
            std::fputs(kUsage, stdout);
            std::exit(0);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option %s\n\n%s",
                         arg.c_str(), kUsage);
            std::exit(2);
        } else {
            options.positional.push_back(arg);
        }
    }
    return options;
}

/** Flush requested telemetry files at exit (any mode). */
void
exportTelemetry(const CliOptions &options)
{
    using namespace compdiff;
    if (!options.traceOut.empty()) {
        obs::writeTextFile(
            options.traceOut,
            obs::TraceRecorder::global().chromeTraceJson());
    }
    if (!options.metricsOut.empty()) {
        obs::writeTextFile(
            options.metricsOut,
            obs::Registry::global().snapshot().toJsonl());
    }
    if (options.flame) {
        std::printf("\nspan flame summary:\n%s",
                    obs::TraceRecorder::global()
                        .flameSummary()
                        .c_str());
    }
}

int
runFuzzMode(const compdiff::minic::Program &program,
            const std::vector<compdiff::support::Bytes> &seeds,
            const CliOptions &options)
{
    using namespace compdiff;

    fuzz::FuzzOptions fuzz_options;
    if (options.sancheck) {
        fuzz_options.sancheckMode = true;
        if (!options.sanImpls.empty()) {
            fuzz_options.sancheckImpls =
                core::ImplementationRegistry::global().parse(
                    options.sanImpls);
        }
    } else {
        fuzz_options.diffImpls =
            core::ImplementationRegistry::global().parse(
                options.impls);
    }
    fuzz_options.maxExecs = options.fuzzExecs;
    fuzz_options.statsOutPath = options.statsOut;
    fuzz_options.plotOutPath = options.plotOut;
    fuzz_options.jobs = options.jobs;

    // The session owns the whole lifecycle; with --session=DIR it
    // persists checkpoints there, otherwise it runs ephemerally.
    session::SessionConfig session_config;
    session_config.dir = options.sessionDir;
    session_config.resume = options.resume;
    session_config.checkpointEvery = options.checkpointEvery;
    session_config.haltAfterExecs = options.haltAfter;
    session_config.heartbeatSecs = options.heartbeatSecs;
    session_config.fuzz = fuzz_options;
    session_config.shards = options.shards;
    session_config.jobs = options.jobs;
    session_config.triage.reduceFound = options.reduce;
    session_config.triage.candidateBudget = options.reduceBudget;
    session_config.triage.reportsDir = options.reportsOut;

    session::CampaignSession session(program, seeds,
                                     session_config);
    const fuzz::ShardedResult &sharded = session.run();

    std::printf("%s",
                obs::renderFuzzerStats(session.statsSnapshot())
                    .c_str());
    if (session.halted()) {
        std::printf("\nsession halted at a checkpoint after %llu "
                    "execs; rerun with --session=%s --resume to "
                    "finish the campaign\n",
                    static_cast<unsigned long long>(
                        sharded.total.execs),
                    options.sessionDir.c_str());
        exportTelemetry(options);
        return 0;
    }
    if (options.sancheck) {
        for (const auto &diff : sharded.diffs) {
            std::printf("\nfinding at exec %llu "
                        "(%zu-byte input):\n  %s\n",
                        static_cast<unsigned long long>(
                            diff.execIndex),
                        diff.input.size(),
                        diff.sanFinding.str().c_str());
        }
        const std::vector<sancheck::FindingReport> reports =
            session.triageSancheck();
        for (const auto &report : reports) {
            std::printf(
                "\nreduced %s: input %zu -> %zu bytes, "
                "program %zu -> %zu statements%s\n",
                reduce::signatureDirName(
                    report.finding.signatureHash())
                    .c_str(),
                report.witnessInput.size(), report.input.size(),
                report.programStats.stmtsBefore,
                report.programStats.stmtsAfter,
                report.reproduced
                    ? ""
                    : " (witness did not reproduce; kept as-is)");
        }
        exportTelemetry(options);
        return sharded.total.diffs > 0 ? 1 : 0;
    }
    for (const auto &diff : sharded.diffs) {
        std::printf("\ndivergence at exec %llu "
                    "(%zu-byte input):\n%s",
                    static_cast<unsigned long long>(diff.execIndex),
                    diff.input.size(),
                    diff.result.summary().c_str());
    }
    const std::vector<reduce::DivergenceReport> reports =
        session.triage();
    for (const auto &report : reports) {
        std::printf("\nreduced %s: input %zu -> %zu bytes, "
                    "program %zu -> %zu statements%s\n",
                    reduce::signatureDirName(report.semanticKey)
                        .c_str(),
                    report.witnessInput.size(), report.input.size(),
                    report.programStats.stmtsBefore,
                    report.programStats.stmtsAfter,
                    report.reproduced
                        ? ""
                        : " (witness did not reproduce; kept as-is)");
        std::printf("  semantic key: %016llx (canonical form "
                    "%016llx, behavior signature %016llx)\n",
                    static_cast<unsigned long long>(
                        report.semanticKey),
                    static_cast<unsigned long long>(
                        report.canonicalFingerprint),
                    static_cast<unsigned long long>(
                        report.signature));
        std::printf("  slice: %s\n", report.slice.str().c_str());
        if (report.localization.attempted) {
            std::printf("  localization (%s vs %s): %s\n",
                        report.localization.implA.c_str(),
                        report.localization.implB.c_str(),
                        report.localization.localization.str()
                            .c_str());
            if (report.localization.bridged)
                std::printf("  note: %s\n",
                            report.localization.note.c_str());
        } else if (!report.localization.note.empty()) {
            std::printf("  localization: %s\n",
                        report.localization.note.c_str());
        }
    }
    exportTelemetry(options);
    return sharded.total.diffs > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace compdiff;

    const CliOptions options = parseArgs(argc, argv);

    if (!options.validateJson.empty()) {
        const std::string text = readFile(options.validateJson);
        if (text.empty()) {
            std::fprintf(stderr, "cannot read %s\n",
                         options.validateJson.c_str());
            return 2;
        }
        std::string error;
        if (!obs::jsonWellFormed(text, &error)) {
            std::fprintf(stderr, "%s: invalid JSON (%s)\n",
                         options.validateJson.c_str(),
                         error.c_str());
            return 1;
        }
        std::printf("%s: well-formed JSON (%zu bytes)\n",
                    options.validateJson.c_str(), text.size());
        return 0;
    }

    support::QuietGuard quiet(options.quiet);
    if (options.wantsTelemetry())
        obs::setEnabled(true);
    if (options.cacheLimitSet) {
        compiler::CompileCache::global().setLimits(
            options.cacheEntries,
            compiler::CompileCache::kDefaultMaxBytes);
    }

    std::string source;
    support::Bytes input;
    std::vector<support::Bytes> seeds;
    if (!options.target.empty()) {
        const targets::TargetProgram *target =
            targets::findTarget(options.target);
        if (!target) {
            std::fprintf(stderr, "unknown target %s\n",
                         options.target.c_str());
            return 2;
        }
        source = target->source;
        seeds = target->seeds;
        if (!seeds.empty())
            input = seeds.front();
    } else if (!options.positional.empty()) {
        source = readFile(options.positional[0]);
        if (source.empty()) {
            std::fprintf(stderr, "cannot read %s\n",
                         options.positional[0].c_str());
            return 2;
        }
    } else if (options.sancheck) {
        std::printf("no program given; running the built-in sanlab "
                    "target (see DESIGN.md section 14)\n\n");
        source = sancheck::sanlabSource();
        seeds = sancheck::sanlabSeeds();
        if (!seeds.empty())
            input = seeds.front();
    } else {
        std::printf("no program given; analyzing the built-in demo "
                    "(see --help in the source header)\n\n");
        source = kDemoProgram;
        input = {10, 50}; // offset INT_MAX-10, len 50: overflows
    }
    if (options.target.empty() && options.positional.size() > 1) {
        const std::string raw = readFile(options.positional[1]);
        input.assign(raw.begin(), raw.end());
    }
    if (seeds.empty() && !input.empty())
        seeds.push_back(input);

    std::unique_ptr<minic::Program> program;
    try {
        program = minic::parseAndCheck(source);
    } catch (const support::CompileError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
    }

    if (options.fuzz) {
        try {
            return runFuzzMode(*program, seeds, options);
        } catch (const session::SessionError &error) {
            std::fprintf(stderr, "session error: %s\n",
                         error.what());
            return 2;
        }
    }

    if (options.sancheck) {
        sancheck::SanCheckOracle oracle(
            *program,
            options.sanImpls.empty()
                ? sancheck::defaultImplementations()
                : core::ImplementationRegistry::global().parse(
                      options.sanImpls));
        const sancheck::Outcome outcome = oracle.runInput(input);
        std::printf("certified reference run: %s, "
                    "%zu certificate(s)\n",
                    outcome.certified.result.exitClass().c_str(),
                    outcome.certified.certificates.size());
        for (const auto &cert : outcome.certified.certificates)
            std::printf("  %s\n", cert.str().c_str());
        if (outcome.findings.empty()) {
            std::printf("\nno sanitizer findings on this input. "
                        "Try other inputs, or run a campaign with "
                        "--mode=sancheck --fuzz.\n");
            exportTelemetry(options);
            return 0;
        }
        for (const auto &finding : outcome.findings)
            std::printf("\nfinding: %s\n", finding.str().c_str());
        exportTelemetry(options);
        return 1;
    }

    core::DiffOptions diff_options;
    diff_options.jobs = options.jobs;
    core::DiffEngine engine(
        *program,
        core::ImplementationRegistry::global().parse(options.impls),
        diff_options);
    auto diff = engine.runInput(input);
    std::printf("%s", diff.summary().c_str());
    if (!diff.divergent) {
        std::printf("\nThis input shows no instability. Try other "
                    "inputs, or plug the program into the fuzzer "
                    "(see examples/fuzz_packetdump.cpp).\n");
        exportTelemetry(options);
        return 0;
    }

    // Localize between two behavior-class representatives. With
    // cross-backend pairs (e.g. against "ref"), localizeAcross
    // bridges to a same-class simulated member when one exists and
    // reports exactly which pair it aligned.
    auto pair = core::localizeAcross(
        *program, engine.implementations(), diff, input);
    if (pair.attempted) {
        std::printf("\nroot-cause candidate (%s vs %s):\n  %s\n",
                    pair.implA.c_str(), pair.implB.c_str(),
                    pair.localization.str().c_str());
        if (pair.bridged)
            std::printf("  note: %s\n", pair.note.c_str());
    } else {
        std::printf("\n(no root-cause candidate: %s)\n",
                    pair.note.c_str());
    }
    exportTelemetry(options);
    return 1;
}
