/**
 * @file
 * A small command-line front end: run CompDiff on your own MiniC
 * program, and when a divergence is found, localize it.
 *
 *   ./build/examples/compdiff_cli [options] [prog.mc [input-file]]
 *
 * Options (observability, see DESIGN.md "Observability"):
 *   --impls=SPECS       the oracle: comma-separated implementation
 *                       specs ("gcc:-O2", "clang:-Os:ubsan", "ref")
 *                       or the aliases "paper10" (default — the
 *                       paper's ten) and "all" (paper10 + the
 *                       reference interpreter); see DESIGN.md §7
 *   --fuzz[=N]          run a CompDiff-AFL++ campaign (default
 *                       20000 execs) instead of a single input
 *   --jobs=N            worker threads (0 = hardware); results are
 *                       bit-identical for every value
 *   --shards=N          split a --fuzz campaign into N deterministic
 *                       shards (this *does* change the campaign;
 *                       see DESIGN.md "Parallel execution")
 *   --stats-out=FILE    write an AFL++-style fuzzer_stats snapshot
 *   --plot-out=FILE     write an AFL++-style plot_data time series
 *   --trace-out=FILE    write Chrome-trace JSON (chrome://tracing)
 *   --metrics-out=FILE  write the metrics registry as JSONL
 *   --flame             print the span flame summary to stdout
 *   --quiet             silence warn()/inform() notices
 *   --validate-json=F   check that F parses as JSON and exit
 *
 * With no program argument it writes a demo program to /tmp and
 * analyzes that, so it is safe to run from the bench/example sweep.
 *
 * The report mirrors the paper's bug reports (Section 5): the
 * triggering input, two configurations that reproduce the issue, the
 * divergent outputs, plus the trace-alignment root-cause candidate.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "compdiff/engine.hh"
#include "compdiff/implementation.hh"
#include "compdiff/localize.hh"
#include "compiler/config.hh"
#include "fuzz/sharded.hh"
#include "minic/parser.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "support/bytes.hh"
#include "support/logging.hh"

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

const char *kDemoProgram = R"(// demo: unstable overflow guard
int check_range(int offset, int len) {
    if (offset < 0 || len < 0) { return -1; }
    if (offset + len < offset) { return -1; }
    return 0;
}
int main() {
    int offset = 2147483647 - input_byte(0);
    int len = input_byte(1);
    if (check_range(offset, len) < 0) {
        print_str("rejected");
    } else {
        print_str("accepted");
    }
    newline();
    return 0;
}
)";

/** Parsed command line. */
struct CliOptions
{
    std::string impls = "paper10";
    bool fuzz = false;
    std::uint64_t fuzzExecs = 20'000;
    std::size_t jobs = 1;
    std::size_t shards = 1;
    std::string statsOut;
    std::string plotOut;
    std::string traceOut;
    std::string metricsOut;
    bool flame = false;
    bool quiet = false;
    std::string validateJson;
    std::vector<std::string> positional;

    bool wantsTelemetry() const
    {
        return !statsOut.empty() || !plotOut.empty() ||
               !traceOut.empty() || !metricsOut.empty() || flame;
    }
};

bool
matchFlag(const std::string &arg, const char *name,
          std::string *value)
{
    const std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) == 0) {
        *value = arg.substr(prefix.size());
        return true;
    }
    return false;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--fuzz") {
            options.fuzz = true;
        } else if (matchFlag(arg, "--impls", &value)) {
            options.impls = value;
        } else if (matchFlag(arg, "--fuzz", &value)) {
            options.fuzz = true;
            options.fuzzExecs = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--jobs", &value)) {
            options.jobs = static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--shards", &value)) {
            options.shards = static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--stats-out", &value)) {
            options.statsOut = value;
        } else if (matchFlag(arg, "--plot-out", &value)) {
            options.plotOut = value;
        } else if (matchFlag(arg, "--trace-out", &value)) {
            options.traceOut = value;
        } else if (matchFlag(arg, "--metrics-out", &value)) {
            options.metricsOut = value;
        } else if (arg == "--flame") {
            options.flame = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (matchFlag(arg, "--validate-json", &value)) {
            options.validateJson = value;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            std::exit(2);
        } else {
            options.positional.push_back(arg);
        }
    }
    return options;
}

/** Flush requested telemetry files at exit (any mode). */
void
exportTelemetry(const CliOptions &options)
{
    using namespace compdiff;
    if (!options.traceOut.empty()) {
        obs::writeTextFile(
            options.traceOut,
            obs::TraceRecorder::global().chromeTraceJson());
    }
    if (!options.metricsOut.empty()) {
        obs::writeTextFile(
            options.metricsOut,
            obs::Registry::global().snapshot().toJsonl());
    }
    if (options.flame) {
        std::printf("\nspan flame summary:\n%s",
                    obs::TraceRecorder::global()
                        .flameSummary()
                        .c_str());
    }
}

int
runFuzzMode(const compdiff::minic::Program &program,
            const compdiff::support::Bytes &input,
            const CliOptions &options)
{
    using namespace compdiff;

    fuzz::FuzzOptions fuzz_options;
    fuzz_options.diffImpls =
        core::ImplementationRegistry::global().parse(options.impls);
    fuzz_options.maxExecs = options.fuzzExecs;
    fuzz_options.statsOutPath = options.statsOut;
    fuzz_options.plotOutPath = options.plotOut;
    fuzz_options.jobs = options.jobs;
    std::vector<support::Bytes> seeds;
    if (!input.empty())
        seeds.push_back(input);

    fuzz::ShardedResult sharded = fuzz::runShardedCampaign(
        program, seeds, fuzz_options, options.shards,
        options.jobs);

    std::printf("%s",
                obs::renderFuzzerStats(sharded.statsSnapshot())
                    .c_str());
    for (const auto &diff : sharded.diffs) {
        std::printf("\ndivergence at exec %llu "
                    "(%zu-byte input):\n%s",
                    static_cast<unsigned long long>(diff.execIndex),
                    diff.input.size(),
                    diff.result.summary().c_str());
    }
    exportTelemetry(options);
    return sharded.total.diffs > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace compdiff;

    const CliOptions options = parseArgs(argc, argv);

    if (!options.validateJson.empty()) {
        const std::string text = readFile(options.validateJson);
        if (text.empty()) {
            std::fprintf(stderr, "cannot read %s\n",
                         options.validateJson.c_str());
            return 2;
        }
        std::string error;
        if (!obs::jsonWellFormed(text, &error)) {
            std::fprintf(stderr, "%s: invalid JSON (%s)\n",
                         options.validateJson.c_str(),
                         error.c_str());
            return 1;
        }
        std::printf("%s: well-formed JSON (%zu bytes)\n",
                    options.validateJson.c_str(), text.size());
        return 0;
    }

    support::QuietGuard quiet(options.quiet);
    if (options.wantsTelemetry())
        obs::setEnabled(true);

    std::string source;
    support::Bytes input;
    if (!options.positional.empty()) {
        source = readFile(options.positional[0]);
        if (source.empty()) {
            std::fprintf(stderr, "cannot read %s\n",
                         options.positional[0].c_str());
            return 2;
        }
    } else {
        std::printf("no program given; analyzing the built-in demo "
                    "(see --help in the source header)\n\n");
        source = kDemoProgram;
        input = {10, 50}; // offset INT_MAX-10, len 50: overflows
    }
    if (options.positional.size() > 1) {
        const std::string raw = readFile(options.positional[1]);
        input.assign(raw.begin(), raw.end());
    }

    std::unique_ptr<minic::Program> program;
    try {
        program = minic::parseAndCheck(source);
    } catch (const support::CompileError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
    }

    if (options.fuzz)
        return runFuzzMode(*program, input, options);

    core::DiffOptions diff_options;
    diff_options.jobs = options.jobs;
    core::DiffEngine engine(
        *program,
        core::ImplementationRegistry::global().parse(options.impls),
        diff_options);
    auto diff = engine.runInput(input);
    std::printf("%s", diff.summary().c_str());
    if (!diff.divergent) {
        std::printf("\nThis input shows no instability. Try other "
                    "inputs, or plug the program into the fuzzer "
                    "(see examples/fuzz_packetdump.cpp).\n");
        exportTelemetry(options);
        return 0;
    }

    // Pick one representative from two different behavior classes
    // and align their traces.
    std::size_t a = 0;
    std::size_t b = 0;
    for (std::size_t i = 1; i < diff.observations.size(); i++) {
        if (diff.classOf[i] != diff.classOf[a]) {
            b = i;
            break;
        }
    }
    // Trace-alignment localization replays the traits-specific
    // simulated pipelines, so it needs a CompilerConfig on both
    // sides; cross-backend pairs (e.g. against "ref") report the
    // divergence without a root-cause candidate.
    const auto &impls = engine.implementations();
    const compiler::CompilerConfig *config_a =
        impls[a]->simulatedConfig();
    const compiler::CompilerConfig *config_b =
        impls[b]->simulatedConfig();
    if (config_a && config_b) {
        auto loc = core::localizeDivergence(*program, *config_a,
                                            *config_b, input);
        std::printf("\nroot-cause candidate (%s vs %s):\n  %s\n",
                    diff.observations[a].impl.c_str(),
                    diff.observations[b].impl.c_str(),
                    loc.str().c_str());
    } else {
        std::printf("\n(no root-cause candidate: trace-alignment "
                    "localization needs two simulated compiler "
                    "implementations; %s vs %s crosses backends)\n",
                    diff.observations[a].impl.c_str(),
                    diff.observations[b].impl.c_str());
    }
    exportTelemetry(options);
    return 1;
}
