/**
 * @file
 * Sanitizer-checking front end (DESIGN.md section 14): certify each
 * input's UB-ness with the reference interpreter, run the sanitized
 * implementations, and classify per-sanitizer false negatives /
 * false positives.
 *
 *   ./build/examples/compdiff_sancheck [options]
 *
 * Three modes:
 *
 *   (default)            sweep the seed set (the built-in sanlab
 *                        target's unless --program/--input override
 *                        it) and print the Table-6-style FN/FP
 *                        overlap matrix — implementations down,
 *                        UB classes across
 *   --input=FILE         classify one input; prints the certified
 *                        reference run and every finding, exits 1
 *                        when a finding fires (the reproduce
 *                        command sig-<hex>/report.md bundles name)
 *   --fuzz[=N]           run a sancheck fuzz campaign instead of
 *                        the fixed sweep, then print the matrix
 *                        over the campaign's unique findings
 *
 * Options:
 *   --program=FILE   MiniC program (default: built-in sanlab)
 *   --impls=SPECS    sanitized implementation specs (simulated
 *                    configs with a sanitizer; default: the
 *                    standard four — clang O1 asan/ubsan/msan plus
 *                    clang O2 ubsan)
 *   --seeds=DIR      extra seed files for the sweep/campaign
 *   --jobs=N         worker threads (never changes results)
 *   --shards=N       deterministic campaign shards (--fuzz)
 *   --session=DIR    persist the --fuzz campaign as a crash-safe
 *                    session (checkpoints, events, MANIFEST)
 *   --resume         continue the session in --session=DIR
 *   --halt-after=N   stop each shard at its first safe point at or
 *                    beyond N executions (resume finishes)
 *   --reduce[=B]     reduce each unique finding (oracle budget B)
 *   --reports-out=D  write sig-<hex>/ bundles under D
 *   --quiet          silence warn()/inform() notices
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "compdiff/implementation.hh"
#include "minic/parser.hh"
#include "reduce/report.hh"
#include "sancheck/report.hh"
#include "sancheck/sancheck.hh"
#include "session/session.hh"
#include "support/bytes.hh"
#include "support/logging.hh"
#include "support/table.hh"

namespace
{

const char *kUsage =
    "usage: compdiff_sancheck [options]\n"
    "\n"
    "  --program=FILE   MiniC program (default: built-in sanlab)\n"
    "  --input=FILE     classify one input; exit 1 on a finding\n"
    "  --impls=SPECS    sanitized implementation specs\n"
    "  --seeds=DIR      extra seed files for the sweep/campaign\n"
    "  --fuzz[=N]       run a sancheck fuzz campaign (default\n"
    "                   20000 execs), then print the matrix\n"
    "  --jobs=N         worker threads (never changes results)\n"
    "  --shards=N       deterministic campaign shards\n"
    "  --session=DIR    persist the campaign as a session\n"
    "  --resume         continue the session in --session=DIR\n"
    "  --halt-after=N   stop shards at the first safe point at or\n"
    "                   beyond N executions\n"
    "  --reduce[=B]     reduce each unique finding\n"
    "  --reports-out=D  write sig-<hex>/ bundles under D\n"
    "  --quiet          silence warn()/inform() notices\n"
    "  --help           show this text\n";

struct CliOptions
{
    std::string program;
    std::string input;
    std::string impls;
    std::string seedsDir;
    bool fuzz = false;
    std::uint64_t fuzzExecs = 20'000;
    std::size_t jobs = 1;
    std::size_t shards = 1;
    std::string sessionDir;
    bool resume = false;
    std::uint64_t haltAfter = 0;
    bool reduce = false;
    std::uint64_t reduceBudget = 4096;
    std::string reportsOut;
    bool quiet = false;
};

bool
matchFlag(const std::string &arg, const char *name,
          std::string *value)
{
    const std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) == 0) {
        *value = arg.substr(prefix.size());
        return true;
    }
    return false;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        std::string value;
        if (matchFlag(arg, "--program", &value)) {
            options.program = value;
        } else if (matchFlag(arg, "--input", &value)) {
            options.input = value;
        } else if (matchFlag(arg, "--impls", &value)) {
            options.impls = value;
        } else if (matchFlag(arg, "--seeds", &value)) {
            options.seedsDir = value;
        } else if (arg == "--fuzz") {
            options.fuzz = true;
        } else if (matchFlag(arg, "--fuzz", &value)) {
            options.fuzz = true;
            options.fuzzExecs = std::strtoull(value.c_str(),
                                              nullptr, 10);
        } else if (matchFlag(arg, "--jobs", &value)) {
            options.jobs = static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--shards", &value)) {
            options.shards = static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (matchFlag(arg, "--session", &value)) {
            options.sessionDir = value;
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (matchFlag(arg, "--halt-after", &value)) {
            options.haltAfter = std::strtoull(value.c_str(),
                                              nullptr, 10);
        } else if (arg == "--reduce") {
            options.reduce = true;
        } else if (matchFlag(arg, "--reduce", &value)) {
            options.reduce = true;
            options.reduceBudget = std::strtoull(value.c_str(),
                                                 nullptr, 10);
        } else if (matchFlag(arg, "--reports-out", &value)) {
            options.reportsOut = value;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help") {
            std::fputs(kUsage, stdout);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument %s\n\n%s",
                         arg.c_str(), kUsage);
            std::exit(2);
        }
    }
    return options;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/**
 * Table-6-style overlap matrix: one row per sanitized
 * implementation, one column per UB class, each cell the unique
 * FN/FP signature counts observed for that pair.
 */
std::string
renderMatrix(const std::vector<std::string> &impl_ids,
             const std::vector<compdiff::sancheck::SanFinding>
                 &findings)
{
    using namespace compdiff;
    static const refinterp::UbKind kKinds[] = {
        refinterp::UbKind::SignedOverflow,
        refinterp::UbKind::DivideByZero,
        refinterp::UbKind::OversizedShift,
        refinterp::UbKind::NullDeref,
        refinterp::UbKind::OutOfBounds,
        refinterp::UbKind::UninitRead,
    };
    // One unique signature is one cell entry: the campaign already
    // dedups, the fixed sweep dedups here.
    std::set<std::string> seen;
    std::map<std::pair<std::string, refinterp::UbKind>,
             std::pair<std::uint64_t, std::uint64_t>>
        cells;
    std::uint64_t total_fn = 0, total_fp = 0;
    for (const auto &finding : findings) {
        if (!seen.insert(finding.signature()).second)
            continue;
        auto &cell = cells[{finding.implId, finding.ubKind}];
        if (finding.kind == sancheck::FindingKind::FalseNegative) {
            cell.first++;
            total_fn++;
        } else {
            cell.second++;
            total_fp++;
        }
    }

    support::TextTable table;
    std::vector<std::string> header = {"impl"};
    std::vector<support::Align> align = {support::Align::Left};
    for (const auto kind : kKinds) {
        header.push_back(refinterp::ubKindName(kind));
        align.push_back(support::Align::Left);
    }
    table.setHeader(std::move(header));
    table.setAlign(std::move(align));
    for (const auto &impl : impl_ids) {
        std::vector<std::string> row = {impl};
        for (const auto kind : kKinds) {
            const auto it = cells.find({impl, kind});
            if (it == cells.end()) {
                row.push_back(".");
                continue;
            }
            std::string cell;
            if (it->second.first) {
                cell += "FN x" +
                        std::to_string(it->second.first);
            }
            if (it->second.second) {
                if (!cell.empty())
                    cell += " ";
                cell += "FP x" +
                        std::to_string(it->second.second);
            }
            row.push_back(cell);
        }
        table.addRow(std::move(row));
    }
    std::ostringstream os;
    os << "sanitizer FN/FP matrix (unique signatures):\n"
       << table.str() << "\n"
       << "findings : " << total_fn << " FN, " << total_fp
       << " FP\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace compdiff;

    const CliOptions options = parseArgs(argc, argv);
    support::QuietGuard quiet(options.quiet);

    core::ImplementationSet impls =
        options.impls.empty()
            ? sancheck::defaultImplementations()
            : core::ImplementationRegistry::global().parse(
                  options.impls);
    try {
        sancheck::validateImpls(impls);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
    }

    std::string source;
    std::vector<support::Bytes> seeds;
    if (options.program.empty()) {
        source = sancheck::sanlabSource();
        seeds = sancheck::sanlabSeeds();
    } else {
        source = readFile(options.program);
        if (source.empty()) {
            std::fprintf(stderr, "cannot read %s\n",
                         options.program.c_str());
            return 2;
        }
    }
    if (!options.seedsDir.empty()) {
        std::vector<std::string> paths;
        for (const auto &entry :
             std::filesystem::directory_iterator(options.seedsDir)) {
            if (entry.is_regular_file())
                paths.push_back(entry.path().string());
        }
        std::sort(paths.begin(), paths.end());
        for (const auto &path : paths) {
            const std::string raw = readFile(path);
            seeds.emplace_back(raw.begin(), raw.end());
        }
    }

    std::unique_ptr<minic::Program> program;
    try {
        program = minic::parseAndCheck(source);
    } catch (const support::CompileError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
    }

    std::vector<std::string> impl_ids;
    for (const auto &impl : impls)
        impl_ids.push_back(impl->id());

    // --input: classify exactly one pair — the reproduce command
    // that sig-<hex>/report.md bundles name. Exit 1 on a finding.
    if (!options.input.empty()) {
        const std::string raw = readFile(options.input);
        const support::Bytes input(raw.begin(), raw.end());
        sancheck::SanCheckOracle oracle(*program, impls);
        const sancheck::Outcome outcome = oracle.runInput(input);
        std::printf("certified reference run: %s, "
                    "%zu certificate(s)\n",
                    outcome.certified.result.exitClass().c_str(),
                    outcome.certified.certificates.size());
        for (const auto &cert : outcome.certified.certificates)
            std::printf("  %s\n", cert.str().c_str());
        for (const auto &finding : outcome.findings)
            std::printf("finding: %s\n", finding.str().c_str());
        if (outcome.findings.empty())
            std::printf("no sanitizer findings on this input\n");
        return outcome.findings.empty() ? 0 : 1;
    }

    std::vector<sancheck::SanFinding> findings;
    if (options.fuzz) {
        fuzz::FuzzOptions fuzz_options;
        fuzz_options.sancheckMode = true;
        fuzz_options.sancheckImpls = impls;
        fuzz_options.maxExecs = options.fuzzExecs;
        fuzz_options.jobs = options.jobs;

        session::SessionConfig session_config;
        session_config.dir = options.sessionDir;
        session_config.resume = options.resume;
        session_config.haltAfterExecs = options.haltAfter;
        session_config.fuzz = fuzz_options;
        session_config.shards = options.shards;
        session_config.jobs = options.jobs;
        session_config.triage.reduceFound = options.reduce;
        session_config.triage.candidateBudget =
            options.reduceBudget;
        session_config.triage.reportsDir = options.reportsOut;

        try {
            session::CampaignSession session(*program, seeds,
                                             session_config);
            const fuzz::ShardedResult &sharded = session.run();
            if (session.halted()) {
                std::printf(
                    "session halted after %llu execs; rerun with "
                    "--session=%s --resume to finish\n",
                    static_cast<unsigned long long>(
                        sharded.total.execs),
                    options.sessionDir.c_str());
                return 0;
            }
            for (const auto &diff : sharded.diffs) {
                std::printf("finding at exec %llu: %s\n",
                            static_cast<unsigned long long>(
                                diff.execIndex),
                            diff.sanFinding.str().c_str());
                findings.push_back(diff.sanFinding);
            }
            const auto reports = session.triageSancheck();
            for (const auto &report : reports) {
                std::printf(
                    "reduced %s: input %zu -> %zu bytes, "
                    "program %zu -> %zu statements%s\n",
                    reduce::signatureDirName(
                        report.finding.signatureHash())
                        .c_str(),
                    report.witnessInput.size(),
                    report.input.size(),
                    report.programStats.stmtsBefore,
                    report.programStats.stmtsAfter,
                    report.reproduced ? ""
                                      : " (witness did not "
                                        "reproduce; kept as-is)");
            }
        } catch (const session::SessionError &error) {
            std::fprintf(stderr, "session error: %s\n",
                         error.what());
            return 2;
        }
    } else {
        // Fixed sweep: classify every seed against every
        // implementation — nonce 0, seed order, fully
        // deterministic.
        sancheck::SanCheckOracle oracle(*program, impls);
        std::vector<sancheck::FindingWitness> witnesses;
        std::set<std::string> seen;
        for (const auto &seed : seeds) {
            const sancheck::Outcome outcome =
                oracle.runInput(seed);
            for (const auto &finding : outcome.findings) {
                findings.push_back(finding);
                if (seen.insert(finding.signature()).second)
                    witnesses.push_back({seed, finding});
            }
        }
        if (options.reduce && !witnesses.empty()) {
            sancheck::FindingReduceOptions reduce_options;
            reduce_options.candidateBudget = options.reduceBudget;
            reduce_options.jobs = options.jobs;
            reduce_options.reportsDir = options.reportsOut;
            const auto reports = sancheck::reduceFindings(
                *program, impls, witnesses, reduce_options);
            for (const auto &report : reports) {
                std::printf(
                    "reduced %s: input %zu -> %zu bytes\n",
                    reduce::signatureDirName(
                        report.finding.signatureHash())
                        .c_str(),
                    report.witnessInput.size(),
                    report.input.size());
            }
        }
    }

    std::printf("\n%s",
                renderMatrix(impl_ids, findings).c_str());
    return findings.empty() ? 0 : 1;
}
