/**
 * @file
 * Tool triage on one CWE family: synthesize the CWE-457
 * (uninitialized variable) slice of the Juliet-style suite and show,
 * case by case, which tools catch the bad variant and whether any
 * tool false-positives on the good variant — the per-case view
 * behind one Table 3 row.
 *
 * Build & run:  ./build/examples/juliet_triage [cwe]
 */

#include <cstdio>
#include <cstdlib>

#include "analysis/static_analyzer.hh"
#include "compdiff/engine.hh"
#include "juliet/evaluate.hh"
#include "juliet/suite.hh"
#include "minic/parser.hh"
#include "obs/metrics.hh"
#include "sanitizers/sanitizers.hh"
#include "support/table.hh"

int
main(int argc, char **argv)
{
    using namespace compdiff;

    const int cwe = argc > 1 ? std::atoi(argv[1]) : 457;
    juliet::SuiteBuilder builder(0.01);
    const auto cases = builder.buildCwe(cwe);
    if (cases.empty()) {
        std::fprintf(stderr, "unknown CWE %d\n", cwe);
        return 1;
    }
    std::printf("CWE-%d: %zu synthesized cases\n\n", cwe,
                cases.size());

    const auto analyzers = analysis::allStaticAnalyzers();
    const auto kinds = juliet::expectedFindingKinds(cwe);

    support::TextTable table;
    table.setHeader({"case", "deepscan", "lintcheck", "inferlite",
                     "ASan", "UBSan", "MSan", "CompDiff",
                     "good-variant FPs"});

    auto mark = [](bool detected) {
        return std::string(detected ? "hit" : "-");
    };

    // With metrics on, DiffResult::summary() carries per-
    // implementation instruction counts; show one full report below.
    obs::EnabledGuard metrics(true);
    std::string sample_report;

    for (const auto &test : cases) {
        auto bad = minic::parseAndCheck(test.badSource);
        auto good = minic::parseAndCheck(test.goodSource);

        std::vector<std::string> row = {test.id};
        std::string fps;

        for (const auto &tool : analyzers) {
            bool hit = false;
            for (const auto &finding : tool->analyze(*bad))
                for (int k : kinds)
                    hit |= static_cast<int>(finding.kind) == k;
            row.push_back(mark(hit));
            bool fp = false;
            for (const auto &finding : tool->analyze(*good))
                for (int k : kinds)
                    fp |= static_cast<int>(finding.kind) == k;
            if (fp)
                fps += std::string(tool->name()) + " ";
        }

        sanitizers::SanitizerRunner runner(*bad);
        row.push_back(mark(
            runner.check(compiler::Sanitizer::ASan, test.input)
                .fired));
        row.push_back(mark(
            runner.check(compiler::Sanitizer::UBSan, test.input)
                .fired));
        row.push_back(mark(
            runner.check(compiler::Sanitizer::MSan, test.input)
                .fired));

        core::DiffEngine engine(*bad);
        auto diff = engine.runInput(test.input);
        row.push_back(mark(diff.divergent));
        if (diff.divergent && sample_report.empty()) {
            sample_report = "telemetry for " + test.id + ":\n" +
                            diff.summary();
        }

        core::DiffEngine good_engine(*good);
        if (good_engine.runInput(test.input).divergent)
            fps += "compdiff ";
        row.push_back(fps.empty() ? "none" : fps);
        table.addRow(row);
    }
    std::printf("%s\n", table.str().c_str());
    if (!sample_report.empty())
        std::printf("%s\n", sample_report.c_str());

    std::printf("Try other rows: ./juliet_triage 369 (div-by-zero), "
                "476 (null deref), 469 (pointer subtraction)...\n");
    return 0;
}
