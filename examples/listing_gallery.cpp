/**
 * @file
 * The paper's illustrative examples (Listings 1-4), reproduced end to
 * end: for each listing we show the per-implementation outputs and
 * which tools can see the bug.
 *
 * Build & run:  ./build/examples/listing_gallery
 */

#include <cstdio>

#include "compdiff/engine.hh"
#include "minic/parser.hh"
#include "sanitizers/sanitizers.hh"

namespace
{

using namespace compdiff;

void
show(const char *title, const char *source,
     const support::Bytes &input)
{
    std::printf("=== %s ===\n", title);
    auto program = minic::parseAndCheck(source);

    core::DiffEngine engine(*program);
    auto diff = engine.runInput(input);
    std::printf("%s", diff.summary().c_str());

    sanitizers::SanitizerRunner runner(*program);
    std::printf("sanitizers: ASan=%s UBSan=%s MSan=%s\n\n",
                runner.check(compiler::Sanitizer::ASan, input).fired
                    ? "FIRES"
                    : "silent",
                runner.check(compiler::Sanitizer::UBSan, input).fired
                    ? "FIRES"
                    : "silent",
                runner.check(compiler::Sanitizer::MSan, input).fired
                    ? "FIRES"
                    : "silent");
}

} // namespace

int
main()
{
    // Listing 1: the signed-overflow guard that optimizers delete.
    show("Listing 1: optimization-unstable overflow guard", R"(
        int dump_data(int offset, int len) {
            if (offset < 0 || len < 0) { return -1; }
            if (offset + len < offset) { return -1; }
            print_str("dump from ");
            print_int(offset);
            newline();
            return 0;
        }
        int main() {
            print_int(dump_data(2147483547, 101));
            newline();
            return 0;
        }
    )",
         {});

    // Listing 2: relational comparison of pointers to two objects.
    show("Listing 2: cross-object pointer comparison (binutils)", R"(
        char object_a[8];
        char object_b[64];
        int main() {
            char *saved_start = &object_a[0];
            char *look_for = &object_b[0];
            if (look_for <= saved_start) {
                print_str("display_debug_frames: backward");
            } else {
                print_str("display_debug_frames: forward");
            }
            newline();
            return 0;
        }
    )",
         {});

    // Listing 3: unsequenced side effects through a static buffer.
    show("Listing 3: evaluation order of arguments (tcpdump)", R"(
        char buffer[16];
        char *get_linkaddr_string(int p) {
            buffer[0] = (char)(65 + (p & 15));
            buffer[1] = 0;
            return buffer;
        }
        void nd_print(char *who, char *tell) {
            print_str("who-is ");
            print_str(who);
            print_str(" tell ");
            print_str(tell);
            newline();
        }
        int main() {
            nd_print(get_linkaddr_string(1),
                     get_linkaddr_string(2));
            return 0;
        }
    )",
         {});

    // Listing 4: an empty field leaves the parsed value
    // uninitialized; MSan deliberately does not flag the print.
    show("Listing 4: uninitialized value printed (exiv2)", R"(
        int main() {
            int l;
            int len = input_size();
            int seen = 0;
            for (int i = 0; i < len; i += 1) {
                int c = input_byte(i);
                if (c >= 48 && c <= 57) {
                    if (seen == 0) { l = 0; }
                    l = l * 10 + (c - 48);
                    seen = 1;
                }
            }
            print_str("value 0x");
            print_hex((ulong)((uint)l / 65536U));
            newline();
            return 0;
        }
    )",
         {}); // empty "string": l stays uninitialized

    return 0;
}
