/**
 * @file
 * compdiff_monitor: the afl-whatsup analog for campaign sessions.
 *
 *   ./build/examples/compdiff_monitor [options] <session-root>...
 *
 * Scans each root for session directories (any directory holding a
 * MANIFEST counts, so both a single `--session=DIR` run and a whole
 * targets-mode tree work), merges every shard's heartbeats, last
 * checkpoints, and event/divergence feeds into one campaign
 * snapshot, and renders it:
 *
 *   --format=table      aligned text table + summary (default)
 *   --format=json       one JSON document (machine-readable)
 *   --format=prom       Prometheus text-exposition format
 *   --watch[=SECS]      re-scan and re-render every SECS (default 2)
 *   --stall-after=SECS  heartbeat age that classifies a shard as
 *                       stalled (default 30)
 *   --dead-after=SECS   heartbeat age that classifies a shard as
 *                       dead (default 300)
 *   --no-pid-check      skip the kill(pid, 0) liveness probe (for
 *                       session trees copied from another host)
 *   --stable            omit wall-clock-derived fields (ages,
 *                       rates, run time, pids) so two scans of a
 *                       finished tree byte-compare equal
 *   --now=UNIX_SECS     classify against this reader clock instead
 *                       of the system clock (testing)
 *
 * Exit status: 0 on success, 1 when no session was found under any
 * root, 2 on usage errors. Scanning is read-only and crash-tolerant;
 * it is safe to point at a tree whose campaigns are mid-write.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "monitor/monitor.hh"

namespace
{

const char *kUsage =
    "usage: compdiff_monitor [options] <session-root>...\n"
    "\n"
    "  --format=FMT        table (default), json, or prom\n"
    "  --watch[=SECS]      poll and re-render every SECS "
    "(default 2)\n"
    "  --stall-after=SECS  stalled-shard heartbeat age "
    "(default 30)\n"
    "  --dead-after=SECS   dead-shard heartbeat age "
    "(default 300)\n"
    "  --no-pid-check      skip the kill(pid,0) liveness probe\n"
    "  --stable            omit wall-clock-derived fields\n"
    "  --now=UNIX_SECS     reader clock override (testing)\n"
    "  --help              this text\n";

struct MonitorCli
{
    compdiff::monitor::MonitorOptions options;
    std::string format = "table";
    bool watch = false;
    double watchSecs = 2.0;
    std::vector<std::string> roots;
};

bool
matchFlag(const std::string &arg, const char *name,
          std::string *value)
{
    const std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) == 0) {
        *value = arg.substr(prefix.size());
        return true;
    }
    return false;
}

MonitorCli
parseArgs(int argc, char **argv)
{
    MonitorCli cli;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        std::string value;
        if (matchFlag(arg, "--format", &value)) {
            cli.format = value;
        } else if (arg == "--watch") {
            cli.watch = true;
        } else if (matchFlag(arg, "--watch", &value)) {
            cli.watch = true;
            cli.watchSecs = std::strtod(value.c_str(), nullptr);
            if (cli.watchSecs <= 0)
                cli.watchSecs = 2.0;
        } else if (matchFlag(arg, "--stall-after", &value)) {
            cli.options.health.stallAfterSecs =
                std::strtod(value.c_str(), nullptr);
        } else if (matchFlag(arg, "--dead-after", &value)) {
            cli.options.health.deadAfterSecs =
                std::strtod(value.c_str(), nullptr);
        } else if (arg == "--no-pid-check") {
            cli.options.health.checkPid = false;
        } else if (arg == "--stable") {
            cli.options.stable = true;
        } else if (matchFlag(arg, "--now", &value)) {
            cli.options.nowUnix =
                std::strtod(value.c_str(), nullptr);
        } else if (arg == "--help") {
            std::fputs(kUsage, stdout);
            std::exit(0);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option %s\n\n%s",
                         arg.c_str(), kUsage);
            std::exit(2);
        } else {
            cli.roots.push_back(arg);
        }
    }
    if (cli.roots.empty()) {
        std::fprintf(stderr, "no session root given\n\n%s",
                     kUsage);
        std::exit(2);
    }
    if (cli.format != "table" && cli.format != "json" &&
        cli.format != "prom") {
        std::fprintf(stderr, "unknown --format=%s\n\n%s",
                     cli.format.c_str(), kUsage);
        std::exit(2);
    }
    return cli;
}

/** One scan-and-render pass; returns the session count. */
std::size_t
renderOnce(const MonitorCli &cli)
{
    using namespace compdiff::monitor;
    std::vector<SessionView> sessions;
    for (const auto &root : cli.roots) {
        auto found = scanTree(root, cli.options);
        sessions.insert(sessions.end(),
                        std::make_move_iterator(found.begin()),
                        std::make_move_iterator(found.end()));
    }
    std::string out;
    if (cli.format == "json")
        out = renderJson(sessions, cli.options);
    else if (cli.format == "prom")
        out = renderProm(sessions, cli.options);
    else
        out = renderTable(sessions, cli.options);
    std::fputs(out.c_str(), stdout);
    if (!out.empty() && out.back() != '\n')
        std::fputc('\n', stdout);
    std::fflush(stdout);
    return sessions.size();
}

} // namespace

int
main(int argc, char **argv)
{
    const MonitorCli cli = parseArgs(argc, argv);
    if (!cli.watch)
        return renderOnce(cli) == 0 ? 1 : 0;
    for (;;) {
        // Home + clear-to-end keeps the snapshot flicker-free in a
        // terminal (full clears make short tables blink).
        std::fputs("\033[H\033[2J", stdout);
        renderOnce(cli);
        std::this_thread::sleep_for(std::chrono::duration<double>(
            cli.watchSecs));
    }
}
