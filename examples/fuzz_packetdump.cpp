/**
 * @file
 * CompDiff-AFL++ on a real-world-style target: fuzz the pktdump
 * packet analyzer (tcpdump stand-in), then triage the saved
 * divergences back to their root causes and show a minimized
 * reproducer for each, like the bug reports the paper filed.
 *
 * Build & run:  ./build/examples/fuzz_packetdump [execs]
 *                   [--stats-dir=DIR] [--trace-out=FILE]
 *                   [--session=DIR] [--resume] [--halt-after=N]
 *                   [--checkpoint-every=N] [--shards=N] [--jobs=N]
 *
 * --stats-dir writes AFL++-style fuzzer_stats/plot_data under
 * DIR/pktdump/; --trace-out writes Chrome-trace JSON of the whole
 * campaign (both enable the observability layer). --session runs
 * the campaign as a crash-safe session under DIR/pktdump/ —
 * interrupt it (or stop it early with --halt-after) and finish it
 * later with --resume; see DESIGN.md §10. --shards splits the
 * campaign into deterministic shards (part of the result identity);
 * --jobs only adds worker threads and never changes results.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "support/bytes.hh"
#include "targets/campaign.hh"
#include "targets/targets.hh"

int
main(int argc, char **argv)
{
    using namespace compdiff;

    const targets::TargetProgram *target =
        targets::findTarget("pktdump");
    if (!target) {
        std::fprintf(stderr, "pktdump target missing\n");
        return 1;
    }

    targets::CampaignOptions options;
    options.checkSanitizers = true;
    options.maxExecs = 12'000;
    std::string trace_out;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg.rfind("--stats-dir=", 0) == 0) {
            options.statsDir = arg.substr(std::strlen("--stats-dir="));
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            trace_out = arg.substr(std::strlen("--trace-out="));
        } else if (arg.rfind("--session=", 0) == 0) {
            options.sessionDir = arg.substr(std::strlen("--session="));
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (arg.rfind("--halt-after=", 0) == 0) {
            options.haltAfterExecs = static_cast<std::uint64_t>(
                std::atoll(arg.c_str() +
                           std::strlen("--halt-after=")));
        } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
            options.checkpointEvery = static_cast<std::uint64_t>(
                std::atoll(arg.c_str() +
                           std::strlen("--checkpoint-every=")));
        } else if (arg.rfind("--shards=", 0) == 0) {
            options.shards = static_cast<std::size_t>(
                std::atoll(arg.c_str() + std::strlen("--shards=")));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            options.jobs = static_cast<std::size_t>(
                std::atoll(arg.c_str() + std::strlen("--jobs=")));
        } else {
            options.maxExecs = static_cast<std::uint64_t>(
                std::atoll(arg.c_str()));
        }
    }
    if (!options.statsDir.empty() || !trace_out.empty())
        obs::setEnabled(true);

    std::printf("fuzzing %s (%s, v%s, %zu LoC) for %llu execs...\n\n",
                target->name.c_str(), target->inputType.c_str(),
                target->version.c_str(), target->linesOfCode(),
                static_cast<unsigned long long>(options.maxExecs));

    auto result = targets::runCampaign(*target, options);

    if (result.halted) {
        std::printf("session halted at a checkpoint after %llu "
                    "execs; rerun with --resume to finish\n",
                    static_cast<unsigned long long>(
                        result.stats.execs));
        return 0;
    }

    std::printf("executions      : %llu\n",
                static_cast<unsigned long long>(result.stats.execs));
    std::printf("corpus seeds    : %zu\n", result.stats.seeds);
    std::printf("coverage edges  : %zu\n", result.stats.edges);
    std::printf("unique diffs    : %zu\n", result.stats.diffs);
    std::printf("bugs recovered  : %zu of %zu planted\n\n",
                result.found.size(), target->bugs.size());

    for (const auto &finding : result.found) {
        std::printf("--- bug %d [%s] %s\n", finding.probeId,
                    targets::categoryColumn(finding.bug->category),
                    finding.bug->description.c_str());
        std::printf("    sanitizers: ASan=%d UBSan=%d MSan=%d\n",
                    finding.asanFires, finding.ubsanFires,
                    finding.msanFires);
        std::printf("    minimized reproducer (%zu bytes):\n%s",
                    finding.witness.size(),
                    support::hexDump(finding.witness, 4).c_str());
    }
    if (!trace_out.empty()) {
        obs::writeTextFile(
            trace_out,
            obs::TraceRecorder::global().chromeTraceJson());
        std::printf("\ntrace written to %s\n", trace_out.c_str());
    }
    return result.found.empty() ? 1 : 0;
}
