/**
 * @file
 * CompDiff-AFL++ on a real-world-style target: fuzz the pktdump
 * packet analyzer (tcpdump stand-in), then triage the saved
 * divergences back to their root causes and show a minimized
 * reproducer for each, like the bug reports the paper filed.
 *
 * Build & run:  ./build/examples/fuzz_packetdump [execs]
 */

#include <cstdio>
#include <cstdlib>

#include "support/bytes.hh"
#include "targets/campaign.hh"
#include "targets/targets.hh"

int
main(int argc, char **argv)
{
    using namespace compdiff;

    const targets::TargetProgram *target =
        targets::findTarget("pktdump");
    if (!target) {
        std::fprintf(stderr, "pktdump target missing\n");
        return 1;
    }

    targets::CampaignOptions options;
    options.maxExecs = argc > 1
                           ? static_cast<std::uint64_t>(
                                 std::atoll(argv[1]))
                           : 12'000;
    options.checkSanitizers = true;

    std::printf("fuzzing %s (%s, v%s, %zu LoC) for %llu execs...\n\n",
                target->name.c_str(), target->inputType.c_str(),
                target->version.c_str(), target->linesOfCode(),
                static_cast<unsigned long long>(options.maxExecs));

    auto result = targets::runCampaign(*target, options);

    std::printf("executions      : %llu\n",
                static_cast<unsigned long long>(result.stats.execs));
    std::printf("corpus seeds    : %zu\n", result.stats.seeds);
    std::printf("coverage edges  : %zu\n", result.stats.edges);
    std::printf("unique diffs    : %zu\n", result.stats.diffs);
    std::printf("bugs recovered  : %zu of %zu planted\n\n",
                result.found.size(), target->bugs.size());

    for (const auto &finding : result.found) {
        std::printf("--- bug %d [%s] %s\n", finding.probeId,
                    targets::categoryColumn(finding.bug->category),
                    finding.bug->description.c_str());
        std::printf("    sanitizers: ASan=%d UBSan=%d MSan=%d\n",
                    finding.asanFires, finding.ubsanFires,
                    finding.msanFires);
        std::printf("    minimized reproducer (%zu bytes):\n%s",
                    finding.witness.size(),
                    support::hexDump(finding.witness, 4).c_str());
    }
    return result.found.empty() ? 1 : 0;
}
