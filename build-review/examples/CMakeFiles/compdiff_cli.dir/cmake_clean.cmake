file(REMOVE_RECURSE
  "CMakeFiles/compdiff_cli.dir/compdiff_cli.cpp.o"
  "CMakeFiles/compdiff_cli.dir/compdiff_cli.cpp.o.d"
  "compdiff_cli"
  "compdiff_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compdiff_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
