# Empty dependencies file for compdiff_cli.
# This may be replaced when dependencies are built.
