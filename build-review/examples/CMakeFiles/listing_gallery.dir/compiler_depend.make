# Empty compiler generated dependencies file for listing_gallery.
# This may be replaced when dependencies are built.
