file(REMOVE_RECURSE
  "CMakeFiles/listing_gallery.dir/listing_gallery.cpp.o"
  "CMakeFiles/listing_gallery.dir/listing_gallery.cpp.o.d"
  "listing_gallery"
  "listing_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listing_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
