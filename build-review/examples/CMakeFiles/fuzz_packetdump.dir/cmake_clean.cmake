file(REMOVE_RECURSE
  "CMakeFiles/fuzz_packetdump.dir/fuzz_packetdump.cpp.o"
  "CMakeFiles/fuzz_packetdump.dir/fuzz_packetdump.cpp.o.d"
  "fuzz_packetdump"
  "fuzz_packetdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_packetdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
