# Empty compiler generated dependencies file for fuzz_packetdump.
# This may be replaced when dependencies are built.
