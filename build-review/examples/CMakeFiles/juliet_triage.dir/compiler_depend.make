# Empty compiler generated dependencies file for juliet_triage.
# This may be replaced when dependencies are built.
