file(REMOVE_RECURSE
  "CMakeFiles/juliet_triage.dir/juliet_triage.cpp.o"
  "CMakeFiles/juliet_triage.dir/juliet_triage.cpp.o.d"
  "juliet_triage"
  "juliet_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juliet_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
