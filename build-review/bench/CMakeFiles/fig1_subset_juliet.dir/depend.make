# Empty dependencies file for fig1_subset_juliet.
# This may be replaced when dependencies are built.
