
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_subset_juliet.cc" "bench/CMakeFiles/fig1_subset_juliet.dir/fig1_subset_juliet.cc.o" "gcc" "bench/CMakeFiles/fig1_subset_juliet.dir/fig1_subset_juliet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/juliet/CMakeFiles/compdiff_juliet.dir/DependInfo.cmake"
  "/root/repo/build-review/src/targets/CMakeFiles/compdiff_targets.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fuzz/CMakeFiles/compdiff_fuzz.dir/DependInfo.cmake"
  "/root/repo/build-review/src/compdiff/CMakeFiles/compdiff_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sanitizers/CMakeFiles/compdiff_sanitizers.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/compdiff_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vm/CMakeFiles/compdiff_vm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/compiler/CMakeFiles/compdiff_compiler.dir/DependInfo.cmake"
  "/root/repo/build-review/src/minic/CMakeFiles/compdiff_minic.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/compdiff_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/compdiff_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/bytecode/CMakeFiles/compdiff_bytecode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
