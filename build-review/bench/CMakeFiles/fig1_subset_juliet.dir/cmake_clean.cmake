file(REMOVE_RECURSE
  "CMakeFiles/fig1_subset_juliet.dir/fig1_subset_juliet.cc.o"
  "CMakeFiles/fig1_subset_juliet.dir/fig1_subset_juliet.cc.o.d"
  "fig1_subset_juliet"
  "fig1_subset_juliet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_subset_juliet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
