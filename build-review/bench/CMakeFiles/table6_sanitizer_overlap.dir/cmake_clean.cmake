file(REMOVE_RECURSE
  "CMakeFiles/table6_sanitizer_overlap.dir/table6_sanitizer_overlap.cc.o"
  "CMakeFiles/table6_sanitizer_overlap.dir/table6_sanitizer_overlap.cc.o.d"
  "table6_sanitizer_overlap"
  "table6_sanitizer_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_sanitizer_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
