# Empty dependencies file for table6_sanitizer_overlap.
# This may be replaced when dependencies are built.
