# Empty dependencies file for overhead_microbench.
# This may be replaced when dependencies are built.
