file(REMOVE_RECURSE
  "CMakeFiles/overhead_microbench.dir/overhead_microbench.cc.o"
  "CMakeFiles/overhead_microbench.dir/overhead_microbench.cc.o.d"
  "overhead_microbench"
  "overhead_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
