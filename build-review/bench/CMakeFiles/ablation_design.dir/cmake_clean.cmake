file(REMOVE_RECURSE
  "CMakeFiles/ablation_design.dir/ablation_design.cc.o"
  "CMakeFiles/ablation_design.dir/ablation_design.cc.o.d"
  "ablation_design"
  "ablation_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
