# Empty dependencies file for ablation_design.
# This may be replaced when dependencies are built.
