# Empty compiler generated dependencies file for table5_fuzz_bugs.
# This may be replaced when dependencies are built.
