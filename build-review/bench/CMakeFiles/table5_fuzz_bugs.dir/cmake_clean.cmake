file(REMOVE_RECURSE
  "CMakeFiles/table5_fuzz_bugs.dir/table5_fuzz_bugs.cc.o"
  "CMakeFiles/table5_fuzz_bugs.dir/table5_fuzz_bugs.cc.o.d"
  "table5_fuzz_bugs"
  "table5_fuzz_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_fuzz_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
