file(REMOVE_RECURSE
  "CMakeFiles/table3_juliet_detection.dir/table3_juliet_detection.cc.o"
  "CMakeFiles/table3_juliet_detection.dir/table3_juliet_detection.cc.o.d"
  "table3_juliet_detection"
  "table3_juliet_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_juliet_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
