# Empty compiler generated dependencies file for table3_juliet_detection.
# This may be replaced when dependencies are built.
