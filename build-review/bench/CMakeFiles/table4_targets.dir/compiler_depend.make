# Empty compiler generated dependencies file for table4_targets.
# This may be replaced when dependencies are built.
