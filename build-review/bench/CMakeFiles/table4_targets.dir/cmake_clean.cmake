file(REMOVE_RECURSE
  "CMakeFiles/table4_targets.dir/table4_targets.cc.o"
  "CMakeFiles/table4_targets.dir/table4_targets.cc.o.d"
  "table4_targets"
  "table4_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
