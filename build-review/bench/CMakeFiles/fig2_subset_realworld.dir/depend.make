# Empty dependencies file for fig2_subset_realworld.
# This may be replaced when dependencies are built.
