file(REMOVE_RECURSE
  "CMakeFiles/fig2_subset_realworld.dir/fig2_subset_realworld.cc.o"
  "CMakeFiles/fig2_subset_realworld.dir/fig2_subset_realworld.cc.o.d"
  "fig2_subset_realworld"
  "fig2_subset_realworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_subset_realworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
