# Empty compiler generated dependencies file for table2_cwe_overview.
# This may be replaced when dependencies are built.
