file(REMOVE_RECURSE
  "CMakeFiles/table2_cwe_overview.dir/table2_cwe_overview.cc.o"
  "CMakeFiles/table2_cwe_overview.dir/table2_cwe_overview.cc.o.d"
  "table2_cwe_overview"
  "table2_cwe_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cwe_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
