
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/engine.cc" "src/analysis/CMakeFiles/compdiff_analysis.dir/engine.cc.o" "gcc" "src/analysis/CMakeFiles/compdiff_analysis.dir/engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/minic/CMakeFiles/compdiff_minic.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/compdiff_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/compdiff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
