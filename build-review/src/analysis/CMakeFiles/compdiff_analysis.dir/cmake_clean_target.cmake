file(REMOVE_RECURSE
  "libcompdiff_analysis.a"
)
