file(REMOVE_RECURSE
  "CMakeFiles/compdiff_analysis.dir/engine.cc.o"
  "CMakeFiles/compdiff_analysis.dir/engine.cc.o.d"
  "libcompdiff_analysis.a"
  "libcompdiff_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compdiff_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
