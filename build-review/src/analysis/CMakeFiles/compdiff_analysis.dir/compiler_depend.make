# Empty compiler generated dependencies file for compdiff_analysis.
# This may be replaced when dependencies are built.
