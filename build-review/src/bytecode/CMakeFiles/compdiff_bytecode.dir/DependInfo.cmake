
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bytecode/insn.cc" "src/bytecode/CMakeFiles/compdiff_bytecode.dir/insn.cc.o" "gcc" "src/bytecode/CMakeFiles/compdiff_bytecode.dir/insn.cc.o.d"
  "/root/repo/src/bytecode/module.cc" "src/bytecode/CMakeFiles/compdiff_bytecode.dir/module.cc.o" "gcc" "src/bytecode/CMakeFiles/compdiff_bytecode.dir/module.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/compdiff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
