# Empty dependencies file for compdiff_bytecode.
# This may be replaced when dependencies are built.
