file(REMOVE_RECURSE
  "CMakeFiles/compdiff_bytecode.dir/insn.cc.o"
  "CMakeFiles/compdiff_bytecode.dir/insn.cc.o.d"
  "CMakeFiles/compdiff_bytecode.dir/module.cc.o"
  "CMakeFiles/compdiff_bytecode.dir/module.cc.o.d"
  "libcompdiff_bytecode.a"
  "libcompdiff_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compdiff_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
