file(REMOVE_RECURSE
  "libcompdiff_bytecode.a"
)
