file(REMOVE_RECURSE
  "libcompdiff_vm.a"
)
