# Empty dependencies file for compdiff_vm.
# This may be replaced when dependencies are built.
