file(REMOVE_RECURSE
  "CMakeFiles/compdiff_vm.dir/coverage.cc.o"
  "CMakeFiles/compdiff_vm.dir/coverage.cc.o.d"
  "CMakeFiles/compdiff_vm.dir/memory.cc.o"
  "CMakeFiles/compdiff_vm.dir/memory.cc.o.d"
  "CMakeFiles/compdiff_vm.dir/result.cc.o"
  "CMakeFiles/compdiff_vm.dir/result.cc.o.d"
  "CMakeFiles/compdiff_vm.dir/vm.cc.o"
  "CMakeFiles/compdiff_vm.dir/vm.cc.o.d"
  "libcompdiff_vm.a"
  "libcompdiff_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compdiff_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
