
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sanitizers/sanitizers.cc" "src/sanitizers/CMakeFiles/compdiff_sanitizers.dir/sanitizers.cc.o" "gcc" "src/sanitizers/CMakeFiles/compdiff_sanitizers.dir/sanitizers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/vm/CMakeFiles/compdiff_vm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/compiler/CMakeFiles/compdiff_compiler.dir/DependInfo.cmake"
  "/root/repo/build-review/src/minic/CMakeFiles/compdiff_minic.dir/DependInfo.cmake"
  "/root/repo/build-review/src/bytecode/CMakeFiles/compdiff_bytecode.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/compdiff_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/compdiff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
