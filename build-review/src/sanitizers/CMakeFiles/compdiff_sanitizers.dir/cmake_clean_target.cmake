file(REMOVE_RECURSE
  "libcompdiff_sanitizers.a"
)
