# Empty dependencies file for compdiff_sanitizers.
# This may be replaced when dependencies are built.
