file(REMOVE_RECURSE
  "CMakeFiles/compdiff_sanitizers.dir/sanitizers.cc.o"
  "CMakeFiles/compdiff_sanitizers.dir/sanitizers.cc.o.d"
  "libcompdiff_sanitizers.a"
  "libcompdiff_sanitizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compdiff_sanitizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
