# Empty dependencies file for compdiff_compiler.
# This may be replaced when dependencies are built.
