file(REMOVE_RECURSE
  "libcompdiff_compiler.a"
)
