file(REMOVE_RECURSE
  "CMakeFiles/compdiff_compiler.dir/cache.cc.o"
  "CMakeFiles/compdiff_compiler.dir/cache.cc.o.d"
  "CMakeFiles/compdiff_compiler.dir/compiler.cc.o"
  "CMakeFiles/compdiff_compiler.dir/compiler.cc.o.d"
  "CMakeFiles/compdiff_compiler.dir/config.cc.o"
  "CMakeFiles/compdiff_compiler.dir/config.cc.o.d"
  "CMakeFiles/compdiff_compiler.dir/lowering.cc.o"
  "CMakeFiles/compdiff_compiler.dir/lowering.cc.o.d"
  "CMakeFiles/compdiff_compiler.dir/passes.cc.o"
  "CMakeFiles/compdiff_compiler.dir/passes.cc.o.d"
  "libcompdiff_compiler.a"
  "libcompdiff_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compdiff_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
