# Empty compiler generated dependencies file for compdiff_fuzz.
# This may be replaced when dependencies are built.
