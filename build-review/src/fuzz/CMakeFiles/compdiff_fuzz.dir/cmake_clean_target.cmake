file(REMOVE_RECURSE
  "libcompdiff_fuzz.a"
)
