file(REMOVE_RECURSE
  "CMakeFiles/compdiff_fuzz.dir/fuzzer.cc.o"
  "CMakeFiles/compdiff_fuzz.dir/fuzzer.cc.o.d"
  "CMakeFiles/compdiff_fuzz.dir/mutator.cc.o"
  "CMakeFiles/compdiff_fuzz.dir/mutator.cc.o.d"
  "CMakeFiles/compdiff_fuzz.dir/sharded.cc.o"
  "CMakeFiles/compdiff_fuzz.dir/sharded.cc.o.d"
  "libcompdiff_fuzz.a"
  "libcompdiff_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compdiff_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
