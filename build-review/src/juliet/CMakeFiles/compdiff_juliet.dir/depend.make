# Empty dependencies file for compdiff_juliet.
# This may be replaced when dependencies are built.
