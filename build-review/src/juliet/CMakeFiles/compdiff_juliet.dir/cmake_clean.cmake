file(REMOVE_RECURSE
  "CMakeFiles/compdiff_juliet.dir/cases_common.cc.o"
  "CMakeFiles/compdiff_juliet.dir/cases_common.cc.o.d"
  "CMakeFiles/compdiff_juliet.dir/cases_memory.cc.o"
  "CMakeFiles/compdiff_juliet.dir/cases_memory.cc.o.d"
  "CMakeFiles/compdiff_juliet.dir/cases_other.cc.o"
  "CMakeFiles/compdiff_juliet.dir/cases_other.cc.o.d"
  "CMakeFiles/compdiff_juliet.dir/evaluate.cc.o"
  "CMakeFiles/compdiff_juliet.dir/evaluate.cc.o.d"
  "CMakeFiles/compdiff_juliet.dir/suite.cc.o"
  "CMakeFiles/compdiff_juliet.dir/suite.cc.o.d"
  "libcompdiff_juliet.a"
  "libcompdiff_juliet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compdiff_juliet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
