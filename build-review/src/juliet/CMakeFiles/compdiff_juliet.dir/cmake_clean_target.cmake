file(REMOVE_RECURSE
  "libcompdiff_juliet.a"
)
