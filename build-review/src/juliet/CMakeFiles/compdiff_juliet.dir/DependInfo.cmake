
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/juliet/cases_common.cc" "src/juliet/CMakeFiles/compdiff_juliet.dir/cases_common.cc.o" "gcc" "src/juliet/CMakeFiles/compdiff_juliet.dir/cases_common.cc.o.d"
  "/root/repo/src/juliet/cases_memory.cc" "src/juliet/CMakeFiles/compdiff_juliet.dir/cases_memory.cc.o" "gcc" "src/juliet/CMakeFiles/compdiff_juliet.dir/cases_memory.cc.o.d"
  "/root/repo/src/juliet/cases_other.cc" "src/juliet/CMakeFiles/compdiff_juliet.dir/cases_other.cc.o" "gcc" "src/juliet/CMakeFiles/compdiff_juliet.dir/cases_other.cc.o.d"
  "/root/repo/src/juliet/evaluate.cc" "src/juliet/CMakeFiles/compdiff_juliet.dir/evaluate.cc.o" "gcc" "src/juliet/CMakeFiles/compdiff_juliet.dir/evaluate.cc.o.d"
  "/root/repo/src/juliet/suite.cc" "src/juliet/CMakeFiles/compdiff_juliet.dir/suite.cc.o" "gcc" "src/juliet/CMakeFiles/compdiff_juliet.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/analysis/CMakeFiles/compdiff_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/compdiff/CMakeFiles/compdiff_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sanitizers/CMakeFiles/compdiff_sanitizers.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vm/CMakeFiles/compdiff_vm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/compiler/CMakeFiles/compdiff_compiler.dir/DependInfo.cmake"
  "/root/repo/build-review/src/minic/CMakeFiles/compdiff_minic.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/compdiff_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/bytecode/CMakeFiles/compdiff_bytecode.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/compdiff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
