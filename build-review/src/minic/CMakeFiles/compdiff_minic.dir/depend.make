# Empty dependencies file for compdiff_minic.
# This may be replaced when dependencies are built.
