
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minic/ast.cc" "src/minic/CMakeFiles/compdiff_minic.dir/ast.cc.o" "gcc" "src/minic/CMakeFiles/compdiff_minic.dir/ast.cc.o.d"
  "/root/repo/src/minic/lexer.cc" "src/minic/CMakeFiles/compdiff_minic.dir/lexer.cc.o" "gcc" "src/minic/CMakeFiles/compdiff_minic.dir/lexer.cc.o.d"
  "/root/repo/src/minic/parser.cc" "src/minic/CMakeFiles/compdiff_minic.dir/parser.cc.o" "gcc" "src/minic/CMakeFiles/compdiff_minic.dir/parser.cc.o.d"
  "/root/repo/src/minic/printer.cc" "src/minic/CMakeFiles/compdiff_minic.dir/printer.cc.o" "gcc" "src/minic/CMakeFiles/compdiff_minic.dir/printer.cc.o.d"
  "/root/repo/src/minic/sema.cc" "src/minic/CMakeFiles/compdiff_minic.dir/sema.cc.o" "gcc" "src/minic/CMakeFiles/compdiff_minic.dir/sema.cc.o.d"
  "/root/repo/src/minic/token.cc" "src/minic/CMakeFiles/compdiff_minic.dir/token.cc.o" "gcc" "src/minic/CMakeFiles/compdiff_minic.dir/token.cc.o.d"
  "/root/repo/src/minic/type.cc" "src/minic/CMakeFiles/compdiff_minic.dir/type.cc.o" "gcc" "src/minic/CMakeFiles/compdiff_minic.dir/type.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/compdiff_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/compdiff_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
