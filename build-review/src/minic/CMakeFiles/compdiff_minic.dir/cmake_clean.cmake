file(REMOVE_RECURSE
  "CMakeFiles/compdiff_minic.dir/ast.cc.o"
  "CMakeFiles/compdiff_minic.dir/ast.cc.o.d"
  "CMakeFiles/compdiff_minic.dir/lexer.cc.o"
  "CMakeFiles/compdiff_minic.dir/lexer.cc.o.d"
  "CMakeFiles/compdiff_minic.dir/parser.cc.o"
  "CMakeFiles/compdiff_minic.dir/parser.cc.o.d"
  "CMakeFiles/compdiff_minic.dir/printer.cc.o"
  "CMakeFiles/compdiff_minic.dir/printer.cc.o.d"
  "CMakeFiles/compdiff_minic.dir/sema.cc.o"
  "CMakeFiles/compdiff_minic.dir/sema.cc.o.d"
  "CMakeFiles/compdiff_minic.dir/token.cc.o"
  "CMakeFiles/compdiff_minic.dir/token.cc.o.d"
  "CMakeFiles/compdiff_minic.dir/type.cc.o"
  "CMakeFiles/compdiff_minic.dir/type.cc.o.d"
  "libcompdiff_minic.a"
  "libcompdiff_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compdiff_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
