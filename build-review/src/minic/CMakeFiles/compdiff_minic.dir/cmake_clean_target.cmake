file(REMOVE_RECURSE
  "libcompdiff_minic.a"
)
