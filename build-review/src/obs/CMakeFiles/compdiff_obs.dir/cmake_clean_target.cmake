file(REMOVE_RECURSE
  "libcompdiff_obs.a"
)
