file(REMOVE_RECURSE
  "CMakeFiles/compdiff_obs.dir/json.cc.o"
  "CMakeFiles/compdiff_obs.dir/json.cc.o.d"
  "CMakeFiles/compdiff_obs.dir/metrics.cc.o"
  "CMakeFiles/compdiff_obs.dir/metrics.cc.o.d"
  "CMakeFiles/compdiff_obs.dir/stats.cc.o"
  "CMakeFiles/compdiff_obs.dir/stats.cc.o.d"
  "CMakeFiles/compdiff_obs.dir/trace.cc.o"
  "CMakeFiles/compdiff_obs.dir/trace.cc.o.d"
  "libcompdiff_obs.a"
  "libcompdiff_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compdiff_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
