
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/json.cc" "src/obs/CMakeFiles/compdiff_obs.dir/json.cc.o" "gcc" "src/obs/CMakeFiles/compdiff_obs.dir/json.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/obs/CMakeFiles/compdiff_obs.dir/metrics.cc.o" "gcc" "src/obs/CMakeFiles/compdiff_obs.dir/metrics.cc.o.d"
  "/root/repo/src/obs/stats.cc" "src/obs/CMakeFiles/compdiff_obs.dir/stats.cc.o" "gcc" "src/obs/CMakeFiles/compdiff_obs.dir/stats.cc.o.d"
  "/root/repo/src/obs/trace.cc" "src/obs/CMakeFiles/compdiff_obs.dir/trace.cc.o" "gcc" "src/obs/CMakeFiles/compdiff_obs.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/compdiff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
