# Empty compiler generated dependencies file for compdiff_obs.
# This may be replaced when dependencies are built.
