# Empty compiler generated dependencies file for compdiff_support.
# This may be replaced when dependencies are built.
