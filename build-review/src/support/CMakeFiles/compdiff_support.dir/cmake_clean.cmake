file(REMOVE_RECURSE
  "CMakeFiles/compdiff_support.dir/bytes.cc.o"
  "CMakeFiles/compdiff_support.dir/bytes.cc.o.d"
  "CMakeFiles/compdiff_support.dir/diagnostics.cc.o"
  "CMakeFiles/compdiff_support.dir/diagnostics.cc.o.d"
  "CMakeFiles/compdiff_support.dir/hash.cc.o"
  "CMakeFiles/compdiff_support.dir/hash.cc.o.d"
  "CMakeFiles/compdiff_support.dir/logging.cc.o"
  "CMakeFiles/compdiff_support.dir/logging.cc.o.d"
  "CMakeFiles/compdiff_support.dir/rng.cc.o"
  "CMakeFiles/compdiff_support.dir/rng.cc.o.d"
  "CMakeFiles/compdiff_support.dir/strings.cc.o"
  "CMakeFiles/compdiff_support.dir/strings.cc.o.d"
  "CMakeFiles/compdiff_support.dir/table.cc.o"
  "CMakeFiles/compdiff_support.dir/table.cc.o.d"
  "CMakeFiles/compdiff_support.dir/thread_pool.cc.o"
  "CMakeFiles/compdiff_support.dir/thread_pool.cc.o.d"
  "libcompdiff_support.a"
  "libcompdiff_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compdiff_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
