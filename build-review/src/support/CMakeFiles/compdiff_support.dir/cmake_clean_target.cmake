file(REMOVE_RECURSE
  "libcompdiff_support.a"
)
