
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/bytes.cc" "src/support/CMakeFiles/compdiff_support.dir/bytes.cc.o" "gcc" "src/support/CMakeFiles/compdiff_support.dir/bytes.cc.o.d"
  "/root/repo/src/support/diagnostics.cc" "src/support/CMakeFiles/compdiff_support.dir/diagnostics.cc.o" "gcc" "src/support/CMakeFiles/compdiff_support.dir/diagnostics.cc.o.d"
  "/root/repo/src/support/hash.cc" "src/support/CMakeFiles/compdiff_support.dir/hash.cc.o" "gcc" "src/support/CMakeFiles/compdiff_support.dir/hash.cc.o.d"
  "/root/repo/src/support/logging.cc" "src/support/CMakeFiles/compdiff_support.dir/logging.cc.o" "gcc" "src/support/CMakeFiles/compdiff_support.dir/logging.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/support/CMakeFiles/compdiff_support.dir/rng.cc.o" "gcc" "src/support/CMakeFiles/compdiff_support.dir/rng.cc.o.d"
  "/root/repo/src/support/strings.cc" "src/support/CMakeFiles/compdiff_support.dir/strings.cc.o" "gcc" "src/support/CMakeFiles/compdiff_support.dir/strings.cc.o.d"
  "/root/repo/src/support/table.cc" "src/support/CMakeFiles/compdiff_support.dir/table.cc.o" "gcc" "src/support/CMakeFiles/compdiff_support.dir/table.cc.o.d"
  "/root/repo/src/support/thread_pool.cc" "src/support/CMakeFiles/compdiff_support.dir/thread_pool.cc.o" "gcc" "src/support/CMakeFiles/compdiff_support.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
