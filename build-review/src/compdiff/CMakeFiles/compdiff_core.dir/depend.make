# Empty dependencies file for compdiff_core.
# This may be replaced when dependencies are built.
