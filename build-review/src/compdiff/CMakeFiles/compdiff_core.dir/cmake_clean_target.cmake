file(REMOVE_RECURSE
  "libcompdiff_core.a"
)
