
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compdiff/engine.cc" "src/compdiff/CMakeFiles/compdiff_core.dir/engine.cc.o" "gcc" "src/compdiff/CMakeFiles/compdiff_core.dir/engine.cc.o.d"
  "/root/repo/src/compdiff/exec_service.cc" "src/compdiff/CMakeFiles/compdiff_core.dir/exec_service.cc.o" "gcc" "src/compdiff/CMakeFiles/compdiff_core.dir/exec_service.cc.o.d"
  "/root/repo/src/compdiff/localize.cc" "src/compdiff/CMakeFiles/compdiff_core.dir/localize.cc.o" "gcc" "src/compdiff/CMakeFiles/compdiff_core.dir/localize.cc.o.d"
  "/root/repo/src/compdiff/normalizer.cc" "src/compdiff/CMakeFiles/compdiff_core.dir/normalizer.cc.o" "gcc" "src/compdiff/CMakeFiles/compdiff_core.dir/normalizer.cc.o.d"
  "/root/repo/src/compdiff/subset.cc" "src/compdiff/CMakeFiles/compdiff_core.dir/subset.cc.o" "gcc" "src/compdiff/CMakeFiles/compdiff_core.dir/subset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/vm/CMakeFiles/compdiff_vm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/compiler/CMakeFiles/compdiff_compiler.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/compdiff_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/minic/CMakeFiles/compdiff_minic.dir/DependInfo.cmake"
  "/root/repo/build-review/src/bytecode/CMakeFiles/compdiff_bytecode.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/compdiff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
