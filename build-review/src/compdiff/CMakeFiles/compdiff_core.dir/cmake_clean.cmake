file(REMOVE_RECURSE
  "CMakeFiles/compdiff_core.dir/engine.cc.o"
  "CMakeFiles/compdiff_core.dir/engine.cc.o.d"
  "CMakeFiles/compdiff_core.dir/exec_service.cc.o"
  "CMakeFiles/compdiff_core.dir/exec_service.cc.o.d"
  "CMakeFiles/compdiff_core.dir/localize.cc.o"
  "CMakeFiles/compdiff_core.dir/localize.cc.o.d"
  "CMakeFiles/compdiff_core.dir/normalizer.cc.o"
  "CMakeFiles/compdiff_core.dir/normalizer.cc.o.d"
  "CMakeFiles/compdiff_core.dir/subset.cc.o"
  "CMakeFiles/compdiff_core.dir/subset.cc.o.d"
  "libcompdiff_core.a"
  "libcompdiff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compdiff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
