file(REMOVE_RECURSE
  "libcompdiff_targets.a"
)
