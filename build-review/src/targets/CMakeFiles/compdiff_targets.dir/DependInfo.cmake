
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/targets/campaign.cc" "src/targets/CMakeFiles/compdiff_targets.dir/campaign.cc.o" "gcc" "src/targets/CMakeFiles/compdiff_targets.dir/campaign.cc.o.d"
  "/root/repo/src/targets/registry.cc" "src/targets/CMakeFiles/compdiff_targets.dir/registry.cc.o" "gcc" "src/targets/CMakeFiles/compdiff_targets.dir/registry.cc.o.d"
  "/root/repo/src/targets/t_binary.cc" "src/targets/CMakeFiles/compdiff_targets.dir/t_binary.cc.o" "gcc" "src/targets/CMakeFiles/compdiff_targets.dir/t_binary.cc.o.d"
  "/root/repo/src/targets/t_lang.cc" "src/targets/CMakeFiles/compdiff_targets.dir/t_lang.cc.o" "gcc" "src/targets/CMakeFiles/compdiff_targets.dir/t_lang.cc.o.d"
  "/root/repo/src/targets/t_media.cc" "src/targets/CMakeFiles/compdiff_targets.dir/t_media.cc.o" "gcc" "src/targets/CMakeFiles/compdiff_targets.dir/t_media.cc.o.d"
  "/root/repo/src/targets/t_network.cc" "src/targets/CMakeFiles/compdiff_targets.dir/t_network.cc.o" "gcc" "src/targets/CMakeFiles/compdiff_targets.dir/t_network.cc.o.d"
  "/root/repo/src/targets/t_tools.cc" "src/targets/CMakeFiles/compdiff_targets.dir/t_tools.cc.o" "gcc" "src/targets/CMakeFiles/compdiff_targets.dir/t_tools.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/compdiff/CMakeFiles/compdiff_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fuzz/CMakeFiles/compdiff_fuzz.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/compdiff_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sanitizers/CMakeFiles/compdiff_sanitizers.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vm/CMakeFiles/compdiff_vm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/compiler/CMakeFiles/compdiff_compiler.dir/DependInfo.cmake"
  "/root/repo/build-review/src/bytecode/CMakeFiles/compdiff_bytecode.dir/DependInfo.cmake"
  "/root/repo/build-review/src/minic/CMakeFiles/compdiff_minic.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/compdiff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
