file(REMOVE_RECURSE
  "CMakeFiles/compdiff_targets.dir/campaign.cc.o"
  "CMakeFiles/compdiff_targets.dir/campaign.cc.o.d"
  "CMakeFiles/compdiff_targets.dir/registry.cc.o"
  "CMakeFiles/compdiff_targets.dir/registry.cc.o.d"
  "CMakeFiles/compdiff_targets.dir/t_binary.cc.o"
  "CMakeFiles/compdiff_targets.dir/t_binary.cc.o.d"
  "CMakeFiles/compdiff_targets.dir/t_lang.cc.o"
  "CMakeFiles/compdiff_targets.dir/t_lang.cc.o.d"
  "CMakeFiles/compdiff_targets.dir/t_media.cc.o"
  "CMakeFiles/compdiff_targets.dir/t_media.cc.o.d"
  "CMakeFiles/compdiff_targets.dir/t_network.cc.o"
  "CMakeFiles/compdiff_targets.dir/t_network.cc.o.d"
  "CMakeFiles/compdiff_targets.dir/t_tools.cc.o"
  "CMakeFiles/compdiff_targets.dir/t_tools.cc.o.d"
  "libcompdiff_targets.a"
  "libcompdiff_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compdiff_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
