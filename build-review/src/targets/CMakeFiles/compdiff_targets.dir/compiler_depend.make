# Empty compiler generated dependencies file for compdiff_targets.
# This may be replaced when dependencies are built.
