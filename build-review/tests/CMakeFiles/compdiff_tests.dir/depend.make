# Empty dependencies file for compdiff_tests.
# This may be replaced when dependencies are built.
