
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/compdiff_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_compdiff_core.cc" "tests/CMakeFiles/compdiff_tests.dir/test_compdiff_core.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_compdiff_core.cc.o.d"
  "/root/repo/tests/test_compiler_units.cc" "tests/CMakeFiles/compdiff_tests.dir/test_compiler_units.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_compiler_units.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/compdiff_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_juliet.cc" "tests/CMakeFiles/compdiff_tests.dir/test_juliet.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_juliet.cc.o.d"
  "/root/repo/tests/test_localize.cc" "tests/CMakeFiles/compdiff_tests.dir/test_localize.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_localize.cc.o.d"
  "/root/repo/tests/test_minic.cc" "tests/CMakeFiles/compdiff_tests.dir/test_minic.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_minic.cc.o.d"
  "/root/repo/tests/test_obs.cc" "tests/CMakeFiles/compdiff_tests.dir/test_obs.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_obs.cc.o.d"
  "/root/repo/tests/test_parallel.cc" "tests/CMakeFiles/compdiff_tests.dir/test_parallel.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_parallel.cc.o.d"
  "/root/repo/tests/test_printer.cc" "tests/CMakeFiles/compdiff_tests.dir/test_printer.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_printer.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/compdiff_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_sanitizers.cc" "tests/CMakeFiles/compdiff_tests.dir/test_sanitizers.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_sanitizers.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/compdiff_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/test_targets.cc" "tests/CMakeFiles/compdiff_tests.dir/test_targets.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_targets.cc.o.d"
  "/root/repo/tests/test_thread_pool.cc" "tests/CMakeFiles/compdiff_tests.dir/test_thread_pool.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_thread_pool.cc.o.d"
  "/root/repo/tests/test_unstable.cc" "tests/CMakeFiles/compdiff_tests.dir/test_unstable.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_unstable.cc.o.d"
  "/root/repo/tests/test_vm_basic.cc" "tests/CMakeFiles/compdiff_tests.dir/test_vm_basic.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_vm_basic.cc.o.d"
  "/root/repo/tests/test_vm_memory.cc" "tests/CMakeFiles/compdiff_tests.dir/test_vm_memory.cc.o" "gcc" "tests/CMakeFiles/compdiff_tests.dir/test_vm_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/analysis/CMakeFiles/compdiff_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/juliet/CMakeFiles/compdiff_juliet.dir/DependInfo.cmake"
  "/root/repo/build-review/src/targets/CMakeFiles/compdiff_targets.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fuzz/CMakeFiles/compdiff_fuzz.dir/DependInfo.cmake"
  "/root/repo/build-review/src/compdiff/CMakeFiles/compdiff_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sanitizers/CMakeFiles/compdiff_sanitizers.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vm/CMakeFiles/compdiff_vm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/compiler/CMakeFiles/compdiff_compiler.dir/DependInfo.cmake"
  "/root/repo/build-review/src/minic/CMakeFiles/compdiff_minic.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/compdiff_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/compdiff_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/bytecode/CMakeFiles/compdiff_bytecode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
