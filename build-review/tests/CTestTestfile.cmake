# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/compdiff_tests[1]_include.cmake")
add_test(obs_smoke "/root/repo/scripts/check.sh" "--smoke" "/root/repo/build-review/examples/compdiff_cli")
set_tests_properties(obs_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;43;add_test;/root/repo/tests/CMakeLists.txt;0;")
